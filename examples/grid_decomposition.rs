//! Domain decomposition of a 2-D load grid with hotspots, rendered.
//!
//! ```text
//! cargo run --release --example grid_decomposition
//! ```
//!
//! Models the paper's domain-decomposition application [12]: a
//! rectangular domain whose per-cell load is a flat background plus a few
//! strong hotspots (refined mesh regions, congested layout areas). The
//! example partitions the domain with HF and BA, prints the resulting
//! rectangle map as ASCII art, and compares the load balance.

use gb_problems::grid::Grid;
use good_bisectors::prelude::*;

fn render_map(
    grid_shape: (usize, usize),
    parts: &Partition<gb_problems::grid::GridProblem>,
) -> String {
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    let (rows, cols) = grid_shape;
    // Downsample to at most 32x64 characters.
    let (vr, vc) = (rows.min(24), cols.min(64));
    let mut map = vec![vec![b'?'; vc]; vr];
    for (i, piece) in parts.pieces().iter().enumerate() {
        let (r0, c0, r1, c1) = piece.rect();
        let glyph = GLYPHS[i % GLYPHS.len()];
        #[allow(clippy::needless_range_loop)] // (r, c) index map and grid together
        for r in 0..vr {
            for c in 0..vc {
                let rr = r * rows / vr;
                let cc = c * cols / vc;
                if rr >= r0 && rr < r1 && cc >= c0 && cc < c1 {
                    map[r][c] = glyph;
                }
            }
        }
    }
    map.into_iter()
        .map(|row| String::from_utf8(row).expect("ascii"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let (rows, cols) = (96, 128);
    let grid = Grid::hotspots(rows, cols, 4, 99);
    let n = 24;
    println!(
        "grid {rows}x{cols}, 4 hotspots, total load {:.1}, {} processors\n",
        grid.total_load(),
        n
    );

    let hf_part = hf(grid.root_problem(), n);
    let ba_part = ba(grid.root_problem(), n);

    println!("HF decomposition (ratio {:.3}):", hf_part.ratio());
    println!("{}\n", render_map((rows, cols), &hf_part));
    println!("BA decomposition (ratio {:.3}):", ba_part.ratio());
    println!("{}\n", render_map((rows, cols), &ba_part));

    // Per-processor load bars for HF.
    println!("per-processor load (HF):");
    let ideal = hf_part.ideal_weight();
    let mut weights = hf_part.weights();
    weights.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
    for (i, w) in weights.iter().enumerate() {
        let bar = "#".repeat((w / ideal * 20.0).round() as usize);
        println!("  P{i:<3} {w:8.1} {bar}");
    }
    println!("  (20 '#' = the ideal load {ideal:.1})");

    assert!(
        hf_part.ratio() <= ba_part.ratio() + 0.75,
        "HF should be comparable or better"
    );
}
