//! Distributing a heavy-tailed task list: the paper's random-pivot model
//! end to end, including the θ trade-off of BA-HF.
//!
//! ```text
//! cargo run --release --example task_queue
//! ```
//!
//! A scheduler holds 100 000 tasks with heavy-tailed costs (the irregular
//! workloads dynamic load balancing exists for) and must hand each of 48
//! workers a contiguous run of the task order. Bisection = split a run at
//! a random pivot — the example the paper gives for its `α̂ ~ U[l, u]`
//! stochastic model. The example compares HF / BA-HF(θ) / BA and shows
//! how θ moves BA-HF between the two extremes.

use gb_problems::task_list::TaskList;
use good_bisectors::prelude::*;

fn main() {
    let tasks = TaskList::heavy_tailed(100_000, 77);
    let n = 48;
    let root = tasks.root_problem(1);
    let total = root.weight();
    println!(
        "{} tasks, total cost {:.0}, {} workers, ideal per-worker load {:.1}\n",
        tasks.len(),
        total,
        n,
        total / n as f64
    );

    // Empirical alpha of random-pivot splitting on this instance.
    let alpha = gb_problems::empirical_alpha(&root, n).expect("divisible");
    println!("empirical alpha of random-pivot bisection: {alpha:.4}\n");

    let hf_part = hf(root.clone(), n);
    println!("HF      ratio {:.3}", hf_part.ratio());
    for theta in [0.25, 1.0, 4.0] {
        let part = ba_hf(root.clone(), n, alpha.max(0.05), theta);
        println!("BA-HF   ratio {:.3}   (theta = {theta})", part.ratio());
    }
    let ba_part = ba(root.clone(), n);
    println!("BA      ratio {:.3}", ba_part.ratio());

    // The balanced loads, as a histogram of piece sizes (HF).
    println!("\nHF per-worker loads (sorted):");
    let mut ws = hf_part.sorted_weights();
    ws.reverse();
    let ideal = hf_part.ideal_weight();
    for chunk in ws.chunks(12) {
        let row: Vec<String> = chunk.iter().map(|w| format!("{:5.0}", w)).collect();
        println!("  {}", row.join(" "));
    }
    println!("  (ideal: {ideal:.0})");

    // Every task is assigned to exactly one worker.
    let mut covered = vec![false; tasks.len()];
    for piece in hf_part.pieces() {
        for t in piece.range() {
            assert!(!covered[t], "task {t} assigned twice");
            covered[t] = true;
        }
    }
    assert!(covered.iter().all(|&c| c));
    println!("\nall {} tasks assigned exactly once", tasks.len());
}
