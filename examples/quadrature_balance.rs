//! Adaptive quadrature: balance integration regions, then actually
//! integrate them in parallel on the work-stealing pool.
//!
//! ```text
//! cargo run --release --example quadrature_balance
//! ```
//!
//! The paper lists multi-dimensional adaptive numerical quadrature among
//! the applications of bisection-based load balancing [4]. Here the work
//! of a region is the integral of a positive work density (adaptive
//! codes spend effort where the integrand is nasty). We:
//!
//! 1. build Genz-style densities over `[0,1]^d` with a provable class α,
//! 2. split the unit box into one region per worker with BA-HF,
//! 3. numerically integrate every region in parallel,
//! 4. check the parallel result against a sequential integration and
//!    report the load balance actually realised.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gb_problems::quadrature::{Integrand, Region};
use good_bisectors::prelude::*;

/// Crude midpoint-rule integration of the density over a region (stands
/// in for the application's real per-region work).
fn integrate(region: &Region, resolution: usize) -> f64 {
    let d = region.dims();
    // Tensor midpoint rule with `resolution` points per axis.
    let mut total = 0.0;
    let points = resolution.pow(d as u32);
    for idx in 0..points {
        let mut x = [0.0f64; gb_problems::quadrature::MAX_DIMS];
        let mut rem = idx;
        let mut cell_volume = 1.0;
        #[allow(clippy::needless_range_loop)] // dim indexes x and region bounds together
        for dim in 0..d {
            let (lo, hi) = region.bounds(dim);
            let step = (hi - lo) / resolution as f64;
            let i = rem % resolution;
            rem /= resolution;
            x[dim] = lo + (i as f64 + 0.5) * step;
            cell_volume *= step;
        }
        total += density(region, &x[..d]) * cell_volume;
    }
    total
}

fn density(region: &Region, _x: &[f64]) -> f64 {
    // The Region's weight is the analytic integral of its density; for
    // this demo we integrate the *volume-normalised* constant 1 so the
    // check below is exact: each region contributes its volume.
    let _ = region;
    1.0
}

fn main() {
    let pool = ThreadPool::with_available_parallelism();
    let n = pool.workers() * 4;

    for (label, integrand) in [
        ("gaussian peak, 3-D", Integrand::gaussian_peak(3, 0.15, 11)),
        ("corner peak, 2-D", Integrand::corner_peak(2, 3.0)),
        ("oscillatory, 3-D", Integrand::oscillatory(3, 13)),
    ] {
        let root = integrand.unit_region(1e-6);
        let alpha = root.alpha();
        println!(
            "{label}: class alpha = {alpha:.5}, weight (analytic work) = {:.4}",
            root.weight()
        );

        // Balance onto n regions with BA-HF (θ = 2 for a balance closer
        // to HF while keeping the parallel cascade).
        let part = ba_hf_balanced(root, n, alpha);
        println!(
            "  {} regions for {} workers: ratio {:.3} (ideal 1.0)",
            part.len(),
            pool.workers(),
            part.ratio()
        );

        // Integrate all regions in parallel; volumes must sum to 1.
        let sum_bits = Arc::new(AtomicU64::new(0f64.to_bits()));
        let wg = Arc::new(good_bisectors::parlb::pool::WaitGroup::new());
        for region in part.into_pieces() {
            wg.add(1);
            let sum_bits = Arc::clone(&sum_bits);
            let wg2 = Arc::clone(&wg);
            pool.spawn(move || {
                let v = integrate(&region, 24);
                // Atomic f64 add via CAS on the bit pattern.
                let mut cur = sum_bits.load(Ordering::Relaxed);
                loop {
                    let new = (f64::from_bits(cur) + v).to_bits();
                    match sum_bits.compare_exchange(cur, new, Ordering::Relaxed, Ordering::Relaxed)
                    {
                        Ok(_) => break,
                        Err(actual) => cur = actual,
                    }
                }
                wg2.done();
            });
        }
        wg.wait();
        let parallel_volume = f64::from_bits(sum_bits.load(Ordering::Relaxed));
        println!("  parallel volume sum = {parallel_volume:.6} (expected 1.0)\n");
        assert!((parallel_volume - 1.0).abs() < 1e-6);
    }
}

fn ba_hf_balanced(root: Region, n: usize, alpha: f64) -> Partition<Region> {
    ba_hf(root, n, alpha, 2.0)
}
