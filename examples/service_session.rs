//! A complete gb-service session in one process: start the daemon, run a
//! few balance requests across algorithms and problem classes, show the
//! cache doing its job, read the stats, shut down gracefully.
//!
//! ```text
//! cargo run --release --example service_session
//! ```

use gb_service::client::Client;
use gb_service::proto::{Algorithm, BalanceRequest, Request, Response};
use gb_service::server::{Server, ServerConfig};
use gb_service::spec::ProblemSpec;

fn main() -> std::io::Result<()> {
    let server = Server::start(ServerConfig::default())?;
    println!("server on {}\n", server.local_addr());
    let mut client = Client::connect(server.local_addr())?;

    let jobs: Vec<(&str, Algorithm, usize, ProblemSpec)> = vec![
        (
            "synthetic, paper's stochastic model",
            Algorithm::BaHf,
            64,
            ProblemSpec::Synthetic {
                weight: 1.0,
                lo: 0.25,
                hi: 0.5,
                seed: 7,
            },
        ),
        (
            "adaptive FE-tree",
            Algorithm::Ba,
            32,
            ProblemSpec::FeTree {
                refinements: 2000,
                bias: 0.8,
                seed: 11,
            },
        ),
        (
            "2-D load grid with hotspots",
            Algorithm::Phf,
            16,
            ProblemSpec::Grid {
                rows: 64,
                cols: 64,
                hotspots: 3,
                seed: 3,
            },
        ),
        (
            "adaptive quadrature (Genz Gaussian peak)",
            Algorithm::Hf,
            24,
            ProblemSpec::Quadrature {
                dims: 3,
                sharpness: 10.0,
                min_width: 0.01,
                seed: 5,
            },
        ),
    ];

    for (label, algorithm, n, problem) in &jobs {
        let request = Request::Balance(BalanceRequest {
            id: None,
            algorithm: *algorithm,
            n: *n,
            theta: 1.0,
            deadline_ms: Some(5_000),
            want_pieces: false,
            problem: problem.clone(),
        });
        match client.call(&request)? {
            Response::Ok(ok) => println!(
                "{label}\n  {} n={}: ratio {:.4} (bound {:.2}, alpha {:.3}) in {} us{}",
                algorithm.name(),
                n,
                ok.ratio,
                ok.bound,
                ok.alpha,
                ok.micros,
                if ok.cached { " [cache]" } else { "" },
            ),
            other => println!("{label}: unexpected reply {other:?}"),
        }
    }

    // Re-issue the first request: identical spec => served from cache.
    let (label, algorithm, n, problem) = &jobs[0];
    let request = Request::Balance(BalanceRequest {
        id: None,
        algorithm: *algorithm,
        n: *n,
        theta: 1.0,
        deadline_ms: Some(5_000),
        want_pieces: false,
        problem: problem.clone(),
    });
    if let Response::Ok(ok) = client.call(&request)? {
        println!(
            "\nrepeat of \"{label}\": cached = {} ({} us)",
            ok.cached, ok.micros
        );
    }

    if let Response::Stats(stats) = client.call(&Request::Stats)? {
        let cache = stats.get("cache").expect("cache stats");
        println!(
            "\ncache: {} hits / {} misses (hit rate {:.0}%)",
            cache.get("hits").and_then(|v| v.as_u64()).unwrap_or(0),
            cache.get("misses").and_then(|v| v.as_u64()).unwrap_or(0),
            cache
                .get("hit_rate")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
                * 100.0,
        );
        let p99 = stats
            .get("latency")
            .and_then(|l| l.get("overall"))
            .and_then(|o| o.get("p99_us"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        println!("p99 latency: {p99} us");
    }

    server.shutdown();
    println!("\nserver drained and stopped");
    Ok(())
}
