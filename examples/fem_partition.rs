//! FEM substructuring: partition an adaptive FE-tree across processors.
//!
//! ```text
//! cargo run --release --example fem_partition
//! ```
//!
//! The paper's motivating application: a parallel finite-element solver
//! performs adaptive recursive substructuring, producing an *unbalanced*
//! binary FE-tree whose subtrees must be distributed over the processors.
//! This example generates such a tree, measures its empirical bisector
//! quality α̂, partitions it with HF and BA, and prints per-processor
//! loads plus the speedup bound implied by the achieved balance.

use gb_problems::empirical_alpha;
use gb_problems::fe_tree::FeTree;
use good_bisectors::prelude::*;

fn main() {
    let refinements = 4000;
    let n = 32;

    for (label, bias) in [
        ("moderately adaptive (bias 0.5)", 0.5),
        ("strongly adaptive (bias 0.9)", 0.9),
    ] {
        let tree = FeTree::adaptive(refinements, bias, 7);
        let root = tree.root_problem();
        println!(
            "FE-tree, {label}: {} nodes, total cost {:.1}",
            tree.len(),
            tree.total_cost()
        );

        // How good are this class's bisectors in practice?
        let alpha = empirical_alpha(&root, n).expect("tree is divisible");
        println!("  empirical alpha over a {n}-way HF run: {alpha:.3}");

        for (name, part) in [("HF", hf(root.clone(), n)), ("BA", ba(root.clone(), n))] {
            let ratio = part.ratio();
            // With max piece weight L and total W, the parallel solve time
            // is ~L, versus W sequentially: speedup = W / L = N / ratio.
            let speedup = n as f64 / ratio;
            println!(
                "  {name}: {count} fragments, ratio {ratio:.3}, implied speedup {speedup:.1}x of {n}",
                count = part.len()
            );
            // Show the five heaviest fragments.
            let mut weights = part.sorted_weights();
            weights.reverse();
            let head: Vec<String> = weights.iter().take(5).map(|w| format!("{w:.1}")).collect();
            println!("      heaviest fragments: {} ...", head.join(", "));
            // Sanity: fragments tile the tree.
            let covered: u32 = part.pieces().iter().map(|p| p.node_count()).sum();
            assert_eq!(covered as usize, tree.len());
        }
        println!();
    }

    // The degenerate caterpillar still balances: the best-edge cut can
    // split anywhere along the spine.
    let caterpillar = FeTree::caterpillar(2000, 3);
    let part = hf(caterpillar.root_problem(), 16);
    println!(
        "caterpillar tree ({} nodes): HF ratio {:.3} on 16 processors",
        caterpillar.len(),
        part.ratio()
    );
}
