//! Quickstart: balance one problem with all three algorithms and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the paper's core loop: take a problem with α-bisectors,
//! split it onto N processors with HF / BA / BA-HF, inspect the achieved
//! ratio against the ideal `w(p)/N` and the worst-case guarantees, then
//! re-run HF as PHF on the simulated parallel machine and check both the
//! Theorem 3 equality and the O(log N) model time.

use good_bisectors::prelude::*;

fn main() {
    // The paper's stochastic model: every bisection splits at a fraction
    // drawn (deterministically from a seed) uniformly from [0.1, 0.5].
    let (lo, hi) = (0.1, 0.5);
    let problem = SyntheticProblem::new(1.0, lo, hi, 2024);
    let n = 64;

    println!("problem: weight 1.0, alpha-hat ~ U[{lo}, {hi}], N = {n}\n");

    // --- the three algorithms --------------------------------------------
    let hf_part = hf(problem, n);
    let ba_part = ba(problem, n);
    let bahf_part = ba_hf(problem, n, lo, 1.0);

    println!("algorithm   ratio    worst-case bound");
    println!(
        "HF        {:7.3}    {:7.3}",
        hf_part.ratio(),
        hf_upper_bound(lo, n)
    );
    println!(
        "BA-HF     {:7.3}    {:7.3}   (theta = 1.0)",
        bahf_part.ratio(),
        bahf_upper_bound(lo, 1.0, n)
    );
    println!(
        "BA        {:7.3}    {:7.3}",
        ba_part.ratio(),
        ba_upper_bound(lo, n)
    );

    assert!(hf_part.ratio() <= bahf_part.ratio() + 1e-9);
    assert!(bahf_part.ratio() <= ba_part.ratio() + 1e-9);
    println!("\nordering HF <= BA-HF <= BA reproduced (the paper's headline result)");

    // --- the bisection tree ----------------------------------------------
    let (_, tree) = hf_traced(problem, 8);
    println!("\nHF bisection tree for N = 8 (weights):");
    print!("{}", tree.render_ascii(10));

    // --- PHF on the simulated machine -------------------------------------
    let mut machine = Machine::with_paper_costs(n);
    let (phf_part, report) = phf(&mut machine, problem, n, lo);
    assert!(phf_part.same_weights_as(&hf_part));
    println!("\nPHF on the simulated machine:");
    println!("  partition identical to HF : yes (Theorem 3)");
    println!("  model time                : {} units", machine.makespan());
    println!("  sequential HF would need  : {} units", 2 * (n - 1));
    println!("  phase-2 iterations        : {}", report.phase2_iterations);
    println!(
        "  global operations         : {}",
        machine.metrics().global_communication()
    );

    // --- BA with real threads ---------------------------------------------
    let pool = ThreadPool::with_available_parallelism();
    let par = good_bisectors::parlb::par_ba(&pool, problem, n);
    assert!(par.same_weights_as(&ba_part));
    println!(
        "\npar_ba on {} worker threads: identical to sequential BA",
        pool.workers()
    );
}
