//! What the idealised machine model hides: the same balancing run on
//! five interconnect topologies.
//!
//! ```text
//! cargo run --release --example topology_compare
//! ```
//!
//! §2 of the paper assumes `O(log N)` collectives, noting that realistic
//! architectures simulate the idealised model "with at most logarithmic
//! slowdown". This example re-runs PHF and BA on complete / hypercube /
//! mesh / ring / tree machines and prints the slowdown factors — showing
//! that the claim holds on the hypercube, and what happens on
//! diameter-bound networks where it does not.

use gb_pram::cost::CostModel;
use gb_pram::topology::Topology;
use good_bisectors::parlb::ba_machine::ba_on_machine;
use good_bisectors::prelude::*;

fn main() {
    let n = 1 << 12;
    let alpha = 0.1;
    let p = SyntheticProblem::new(1.0, alpha, 0.5, 7);

    println!("N = {n} processors, alpha-hat ~ U[0.1, 0.5]\n");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "topology", "PHF time", "BA time", "PHF slowdn", "BA slowdn", "diameter"
    );

    let mut ideal: Option<(u64, u64)> = None;
    for topology in Topology::ALL {
        let mut m_phf = Machine::with_topology(n, CostModel::paper(), topology);
        let (part, _) = phf(&mut m_phf, p, n, alpha);
        let mut m_ba = Machine::with_topology(n, CostModel::paper(), topology);
        let ba_part = ba_on_machine(&mut m_ba, p, n);

        let (t_phf, t_ba) = (m_phf.makespan(), m_ba.makespan());
        let (i_phf, i_ba) = *ideal.get_or_insert((t_phf, t_ba));
        println!(
            "{:<12} {:>10} {:>10} {:>11.1}x {:>11.1}x {:>9}",
            topology.name(),
            t_phf,
            t_ba,
            t_phf as f64 / i_phf as f64,
            t_ba as f64 / i_ba as f64,
            topology.diameter(n),
        );

        // The partition itself never depends on the wires.
        assert_eq!(part.len(), n);
        assert_eq!(ba_part.len(), n);
    }

    println!(
        "\nsequential HF needs {} units on any topology (all work on P0);",
        2 * (n - 1)
    );
    println!("on the ring even PHF exceeds that — the paper's idealised model matters.");
}
