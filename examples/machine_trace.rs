//! Watch the parallel algorithms run: a full event trace of PHF and BA on
//! a small simulated machine.
//!
//! ```text
//! cargo run --release --example machine_trace
//! ```
//!
//! Prints, time-stamped, every bisection, send, collective and barrier
//! that PHF (Figure 2) and BA perform on an 8-processor machine — the
//! closest thing to stepping through the paper's pseudocode with a
//! debugger. Note how BA's trace contains *no* global events at all,
//! while PHF's phase structure (cascade → barrier → synchronised rounds)
//! is clearly visible.

use good_bisectors::parlb::ba_machine::ba_on_machine;
use good_bisectors::prelude::*;

fn main() {
    let n = 8;
    let alpha = 0.3;
    let p = SyntheticProblem::new(1.0, alpha, 0.5, 5);

    println!("=== PHF on {n} processors (alpha = {alpha}) ===");
    let mut machine = Machine::with_paper_costs(n);
    machine.enable_trace();
    let (part, report) = phf(&mut machine, p, n, alpha);
    print!("{}", machine.trace().expect("tracing on").render());
    println!(
        "makespan {}   bisections {}   sends {}   collectives {}   barriers {}",
        machine.makespan(),
        machine.metrics().bisections,
        machine.metrics().sends,
        machine.metrics().global_ops,
        machine.metrics().barriers,
    );
    println!(
        "threshold {:.4}, cascade bisections {}, cleanup rounds {}, phase-2 iterations {}",
        report.threshold,
        report.cascade_bisections,
        report.cleanup_rounds,
        report.phase2_iterations
    );
    println!("pieces: {:?}\n", rounded(&part.sorted_weights()));

    println!("=== BA on {n} processors (no global communication) ===");
    let mut machine = Machine::with_paper_costs(n);
    machine.enable_trace();
    let part = ba_on_machine(&mut machine, p, n);
    print!("{}", machine.trace().expect("tracing on").render());
    println!(
        "makespan {}   bisections {}   sends {}   global ops {}",
        machine.makespan(),
        machine.metrics().bisections,
        machine.metrics().sends,
        machine.metrics().global_communication(),
    );
    println!("pieces: {:?}", rounded(&part.sorted_weights()));

    assert_eq!(machine.metrics().global_communication(), 0);
}

fn rounded(ws: &[f64]) -> Vec<f64> {
    ws.iter().map(|w| (w * 1e4).round() / 1e4).collect()
}
