//! # good-bisectors — facade crate
//!
//! A production-quality Rust reproduction of
//!
//! > S. Bischof, R. Ebner, T. Erlebach.
//! > *Parallel Load Balancing for Problems with Good Bisectors.*
//! > IPPS/SPDP 1999.
//!
//! This crate re-exports the whole workspace under one roof so that
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! * [`core`] — the α-bisector model, bisection trees, the sequential
//!   algorithms HF / BA / BA-HF and the worst-case bounds of
//!   Theorems 2, 7 and 8;
//! * [`problems`] — concrete problem classes: the paper's stochastic model,
//!   FE-trees from recursive substructuring, adaptive-quadrature regions,
//!   2-D load grids and task lists;
//! * [`pram`] — a deterministic discrete-event simulator of the paper's
//!   PRAM-like machine model (unit-cost bisection and send, `Θ(log N)`
//!   collectives);
//! * [`parlb`] — the parallel algorithms: PHF / BA / BA-HF on the simulated
//!   machine, plus a work-stealing fork-join pool for real-thread BA;
//! * [`simstudy`] — the simulation-study harness that regenerates every
//!   table and figure of the paper's evaluation section.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use good_bisectors::prelude::*;
//!
//! // The paper's stochastic model: every bisection splits at a fraction
//! // drawn uniformly from [0.1, 0.5], i.i.d. (seeded, so reproducible).
//! let problem = SyntheticProblem::new(1.0, 0.1, 0.5, 42);
//!
//! // Balance it onto 64 processors with the three algorithms.
//! let hf = hf(problem.clone(), 64);
//! let ba = ba(problem.clone(), 64);
//! let bahf = ba_hf(problem, 64, 0.1, 1.0);
//!
//! // HF balances best, BA worst — the paper's headline simulation result.
//! assert!(hf.ratio() <= bahf.ratio() + 1e-9);
//! assert!(bahf.ratio() <= ba.ratio() + 1e-9);
//! ```

pub use gb_core as core;
pub use gb_parlb as parlb;
pub use gb_pram as pram;
pub use gb_problems as problems;
pub use gb_simstudy as simstudy;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use gb_core::ba::{ba, ba_traced, ba_with_ranges, split_processors};
    pub use gb_core::bahf::{ba_hf, ba_hf_auto, ba_hf_traced};
    pub use gb_core::bounds::{
        ba_upper_bound, bahf_upper_bound, hf_upper_bound, r_ba, r_bahf, r_hf,
    };
    pub use gb_core::hf::{hf, hf_traced};
    pub use gb_core::partition::Partition;
    pub use gb_core::problem::{AlphaBisectable, Bisectable};
    pub use gb_core::tree::{BisectionTree, NodeId};
    pub use gb_parlb::par_ba::{par_ba, par_ba_hf};
    pub use gb_parlb::par_phf::par_phf;
    pub use gb_parlb::par_process::{balance_and_process, Balancer};
    pub use gb_parlb::phf::phf;
    pub use gb_parlb::pool::ThreadPool;
    pub use gb_pram::machine::Machine;
    pub use gb_pram::topology::Topology;
    pub use gb_problems::synthetic::SyntheticProblem;
}
