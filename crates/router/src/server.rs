//! The routing tier: accept loop, proxy path, health prober, rollup.
//!
//! Threading model: one accept thread (nonblocking listener polled
//! against the shutdown flag), one handler thread per client
//! connection, one health-prober thread. Handlers serve their
//! connection's frames sequentially, so per-connection reply order is
//! trivially preserved; a hedged request briefly spawns two racer
//! threads (primary continuation + hedge attempt) joined through a
//! channel.
//!
//! Failure handling has an active and a passive half sharing one
//! per-upstream consecutive-failure counter: the prober pings every
//! upstream each `health_interval`, and every data-path exchange that
//! errors (connect refused, reset, EOF, hard timeout) counts too. At
//! `fail_threshold` consecutive failures the upstream is marked dead in
//! the [`FailoverRing`] — its vnode arcs re-home onto survivors — and
//! its pool is flushed. A later successful probe (or any successful
//! exchange) marks it alive again, restoring the exact pre-death
//! mapping.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use gb_rebal::{EwmaTracker, RebalanceCounters, RebalanceSettings, RebalanceSnapshot, VnodeLoad};
use gb_service::cache::CacheKey;
use gb_service::fault::{IoShim, Passthrough, ShimStream};
use gb_service::metrics::Histogram;
use gb_service::proto::{
    binary_reply_id, json_reply_id, BalanceRequest, Codec, ErrorCode, Frame, FrameError,
    FrameReader, Json, Request, Response, WireCodec, BIN_HDR, MAGIC, MAX_FRAME,
};
use gb_service::route::{FailoverRing, DEFAULT_VNODES};

use crate::pool::{PooledConn, UpstreamPool, UPSTREAM_CONN_BASE};

/// Failover attempts (distinct upstreams tried) per request.
const MAX_ATTEMPTS: usize = 4;

/// Configuration for [`RouterServer::start`].
#[derive(Clone)]
pub struct RouterConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Upstream `gb-serve` addresses; ring position = list index.
    pub upstreams: Vec<SocketAddr>,
    /// Virtual nodes per upstream on the ring (0 = [`DEFAULT_VNODES`]).
    pub vnodes: usize,
    /// Hedge delay: if the owning upstream has not replied within this,
    /// race a second attempt on another backend. `None` disables
    /// hedging.
    pub hedge_delay: Option<Duration>,
    /// Per-request budget: total time a proxied request may spend
    /// across all attempts before the client gets a `timeout` error.
    pub reply_timeout: Duration,
    /// Dial timeout for upstream connections.
    pub connect_timeout: Duration,
    /// Period of the active health prober.
    pub health_interval: Duration,
    /// Budget for one health probe (connect + ping round trip).
    pub probe_timeout: Duration,
    /// Consecutive failures (probe or data-path) before an upstream is
    /// declared dead.
    pub fail_threshold: u32,
    /// How often blocked client-connection reads wake to poll the
    /// shutdown flag.
    pub poll_interval: Duration,
    /// Forward a client `shutdown` frame to every alive upstream before
    /// draining (the whole-fleet stop switch).
    pub forward_shutdown: bool,
    /// Idle connections kept per upstream pool.
    pub max_pool_idle: usize,
    /// Self-balancing vnode placement (`gb-rebal`): when set, a tick
    /// thread periodically re-partitions the vnode set across alive
    /// upstreams with HF over the router-observed per-vnode load and
    /// swaps the ring's explicit assignment atomically between
    /// requests. `None` keeps the static hash placement.
    pub rebalance: Option<RebalanceSettings>,
    /// Fault-injection seam for client-side and upstream-side sockets
    /// (probes run unshimmed so scripted upstream faults cannot blind
    /// the health checker that is supposed to catch them).
    pub shim: Arc<dyn IoShim>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            upstreams: Vec::new(),
            vnodes: 0,
            hedge_delay: None,
            reply_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(1),
            health_interval: Duration::from_millis(250),
            probe_timeout: Duration::from_millis(500),
            fail_threshold: 3,
            poll_interval: Duration::from_millis(100),
            forward_shutdown: true,
            max_pool_idle: 8,
            rebalance: None,
            shim: Arc::new(Passthrough),
        }
    }
}

impl std::fmt::Debug for RouterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterConfig")
            .field("addr", &self.addr)
            .field("upstreams", &self.upstreams)
            .field("vnodes", &self.vnodes)
            .field("hedge_delay", &self.hedge_delay)
            .field("fail_threshold", &self.fail_threshold)
            .field("rebalance", &self.rebalance)
            .finish_non_exhaustive()
    }
}

/// Per-upstream live state.
struct Upstream {
    id: u32,
    pool: UpstreamPool,
    /// Mirror of the ring's alive bit, readable without the ring lock.
    alive: AtomicBool,
    consecutive_failures: AtomicU32,
    inflight: AtomicI64,
    requests: AtomicU64,
    errors: AtomicU64,
    hedge_wins: AtomicU64,
    latency: Histogram,
}

/// Router-wide counters (all monotone).
#[derive(Default)]
struct Counters {
    proxied: AtomicU64,
    hedges_sent: AtomicU64,
    hedges_won: AtomicU64,
    failovers: AtomicU64,
    recoveries: AtomicU64,
    retries: AtomicU64,
    /// Idle pooled connections found closed by the upstream and redialed
    /// transparently (not charged against the failure threshold).
    stale_retries: AtomicU64,
    bad_frames: AtomicU64,
    no_upstream: AtomicU64,
    probes_ok: AtomicU64,
    probes_failed: AtomicU64,
}

struct Shared {
    config: RouterConfig,
    ring: RwLock<FailoverRing>,
    upstreams: Vec<Upstream>,
    counters: Counters,
    /// Per-vnode load observed at the proxy point. The router cannot
    /// reuse upstream-reported vnode stats — each upstream shards over
    /// its *own* vnode space, disjoint from the router's ring over
    /// upstreams — so the proxy path is the one place this ring's
    /// vnodes are visible.
    vnode_load: VnodeLoad,
    rebal: RebalanceCounters,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    /// One failed exchange (or probe) against `id`; crossing the
    /// threshold re-homes its vnodes onto survivors.
    fn mark_failure(&self, id: u32) {
        let up = &self.upstreams[id as usize];
        up.errors.fetch_add(1, Ordering::Relaxed);
        let fails = up.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if fails >= self.config.fail_threshold {
            self.declare_dead(id);
        }
    }

    /// One successful exchange (or probe) against `id`; a dead upstream
    /// answering is immediately revived.
    fn mark_success(&self, id: u32) {
        let up = &self.upstreams[id as usize];
        up.consecutive_failures.store(0, Ordering::Relaxed);
        if !up.alive.load(Ordering::Relaxed) {
            self.declare_alive(id);
        }
    }

    fn declare_dead(&self, id: u32) {
        let changed = self.ring.write().unwrap().mark_dead(id);
        if changed {
            let up = &self.upstreams[id as usize];
            up.alive.store(false, Ordering::Relaxed);
            up.pool.clear();
            self.counters.failovers.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "gb-router: upstream {} ({}) dead; vnodes re-homed onto survivors",
                id,
                up.pool.addr()
            );
        }
    }

    fn declare_alive(&self, id: u32) {
        let changed = self.ring.write().unwrap().mark_alive(id);
        if changed {
            let up = &self.upstreams[id as usize];
            up.alive.store(true, Ordering::Relaxed);
            up.consecutive_failures.store(0, Ordering::Relaxed);
            self.counters.recoveries.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "gb-router: upstream {} ({}) recovered; vnodes re-homed back",
                id,
                up.pool.addr()
            );
        }
    }
}

/// RAII in-flight counter for one upstream, safe to move across the
/// hedge racer threads.
struct InflightGuard {
    shared: Arc<Shared>,
    id: u32,
}

impl InflightGuard {
    fn new(shared: &Arc<Shared>, id: u32) -> InflightGuard {
        shared.upstreams[id as usize]
            .inflight
            .fetch_add(1, Ordering::Relaxed);
        InflightGuard {
            shared: Arc::clone(shared),
            id,
        }
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.shared.upstreams[self.id as usize]
            .inflight
            .fetch_sub(1, Ordering::Relaxed);
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// A complete error-reply frame in the client's codec.
fn error_frame(codec: WireCodec, id: Option<u64>, code: ErrorCode, message: &str) -> Vec<u8> {
    let mut out = Vec::new();
    codec.encode_response(
        &Response::Error {
            id,
            code,
            message: message.into(),
        },
        &mut out,
    );
    out
}

/// A complete reply frame in the given codec.
fn response_frame(codec: WireCodec, resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    codec.encode_response(resp, &mut out);
    out
}

/// The `id` field of a framed reply, sniffing the codec from the first
/// byte — the router relays frames verbatim, so correlation must read
/// whichever encoding the upstream answered in.
fn reply_id(reply: &[u8]) -> Option<u64> {
    if reply.first() == Some(&MAGIC) {
        binary_reply_id(reply.get(BIN_HDR..)?)
    } else {
        json_reply_id(std::str::from_utf8(reply).ok()?.trim_end())
    }
}

/// Books a clean reply: correlates it by id, records latency and
/// success, and repools the connection.
fn settle_ok(
    shared: &Arc<Shared>,
    id: u32,
    started: Instant,
    conn: PooledConn,
    reply: Vec<u8>,
    want_id: Option<u64>,
) -> io::Result<Vec<u8>> {
    if let Some(want) = want_id {
        if reply_id(&reply) != Some(want) {
            // A reply for some other request means the pooled stream
            // lost frame sync; never repool it, never forward it.
            shared.mark_failure(id);
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "upstream reply id mismatch",
            ));
        }
    }
    let up = &shared.upstreams[id as usize];
    up.latency.record(started.elapsed());
    shared.mark_success(id);
    up.pool.publish(conn);
    Ok(reply)
}

/// Proxies one balance frame (pre-framed bytes, relayed verbatim):
/// route by key, fail over across distinct upstreams on send-side
/// errors, hedge on reply-side tail latency. Router-generated errors go
/// out in the client's codec.
fn proxy_balance(
    shared: &Arc<Shared>,
    frame: &[u8],
    key: u64,
    req_id: Option<u64>,
    codec: WireCodec,
) -> Vec<u8> {
    let deadline = Instant::now() + shared.config.reply_timeout;
    let mut tried: Vec<u32> = Vec::new();
    let mut last_err: Option<io::Error> = None;
    while tried.len() < MAX_ATTEMPTS {
        let target = shared.ring.read().unwrap().route_excluding(key, &tried);
        let Some(id) = target else { break };
        if !tried.is_empty() {
            shared.counters.retries.fetch_add(1, Ordering::Relaxed);
        }
        tried.push(id);
        match attempt_on(shared, id, frame, key, req_id, deadline, &tried) {
            Ok(reply) => return reply,
            Err(e) => last_err = Some(e),
        }
        if Instant::now() >= deadline {
            break;
        }
    }
    match last_err {
        Some(e) if is_timeout(&e) => error_frame(
            codec,
            req_id,
            ErrorCode::Timeout,
            "upstream did not reply within the router's budget",
        ),
        Some(e) => error_frame(
            codec,
            req_id,
            ErrorCode::Internal,
            &format!("upstream failed: {e}"),
        ),
        None => {
            shared.counters.no_upstream.fetch_add(1, Ordering::Relaxed);
            error_frame(codec, req_id, ErrorCode::Internal, "no alive upstream")
        }
    }
}

/// Whether an exchange error looks like the upstream closed the
/// connection before (or instead of) answering — exactly what a pooled
/// connection exhibits when the upstream restarted or swept it while it
/// sat idle.
fn is_stale_close(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

/// One attempt against upstream `id`: send, then wait — either to the
/// full deadline, or only to the hedge delay before racing a second
/// backend. A connection reused from the idle pool that fails like a
/// stale close is retried exactly once on a fresh dial before anything
/// is charged against the failure threshold: the upstream restarting is
/// not the upstream being down.
fn attempt_on(
    shared: &Arc<Shared>,
    id: u32,
    frame: &[u8],
    key: u64,
    req_id: Option<u64>,
    deadline: Instant,
    tried: &[u32],
) -> io::Result<Vec<u8>> {
    let up = &shared.upstreams[id as usize];
    up.requests.fetch_add(1, Ordering::Relaxed);
    let guard = InflightGuard::new(shared, id);
    let started = Instant::now();
    let (mut conn, mut reused) = match up.pool.checkout_tracked() {
        Ok(pair) => pair,
        Err(e) => {
            shared.mark_failure(id);
            return Err(e);
        }
    };
    loop {
        let exchange: io::Result<Vec<u8>> = match conn.send_frame(frame) {
            Err(e) => Err(e),
            Ok(()) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                // Hedging applies only when a distinct alive backend
                // exists and the hedge delay actually precedes the
                // deadline.
                let hedge_plan = shared.config.hedge_delay.and_then(|delay| {
                    if delay >= remaining {
                        return None;
                    }
                    shared
                        .ring
                        .read()
                        .unwrap()
                        .route_excluding(key, tried)
                        .map(|hedge_id| (delay, hedge_id))
                });
                let first_wait = hedge_plan.map_or(remaining, |(delay, _)| delay);
                match conn.read_reply(first_wait.max(Duration::from_millis(1))) {
                    Ok(reply) => return settle_ok(shared, id, started, conn, reply, req_id),
                    Err(e) if is_timeout(&e) => {
                        if let Some((_, hedge_id)) = hedge_plan {
                            return hedged_race(
                                shared, id, hedge_id, guard, conn, frame, req_id, deadline, started,
                            );
                        }
                        // Hard timeout: the upstream accepted the request
                        // but never answered within budget.
                        shared.mark_failure(id);
                        return Err(e);
                    }
                    Err(e) => Err(e),
                }
            }
        };
        let e = exchange.unwrap_err();
        if reused && is_stale_close(&e) {
            match up.pool.dial() {
                Ok(fresh) => {
                    shared
                        .counters
                        .stale_retries
                        .fetch_add(1, Ordering::Relaxed);
                    conn = fresh;
                    reused = false;
                    continue;
                }
                Err(dial_err) => {
                    // Could not even dial: that is a real failure.
                    shared.mark_failure(id);
                    return Err(dial_err);
                }
            }
        }
        shared.mark_failure(id);
        return Err(e);
    }
}

/// Races the primary's continuation against a fresh attempt on
/// `hedge_id`; first clean reply wins. The loser finishes (or fails) on
/// its own thread and books its outcome itself.
#[allow(clippy::too_many_arguments)]
fn hedged_race(
    shared: &Arc<Shared>,
    primary: u32,
    hedge_id: u32,
    primary_guard: InflightGuard,
    primary_conn: PooledConn,
    frame: &[u8],
    req_id: Option<u64>,
    deadline: Instant,
    primary_started: Instant,
) -> io::Result<Vec<u8>> {
    shared.counters.hedges_sent.fetch_add(1, Ordering::Relaxed);
    let floor = Duration::from_millis(1);
    let (tx, rx) = mpsc::channel::<(bool, io::Result<Vec<u8>>)>();
    // Primary continuation: keep waiting for the original reply.
    {
        let tx = tx.clone();
        let shared = Arc::clone(shared);
        let mut conn = primary_conn;
        thread::spawn(move || {
            let _guard = primary_guard;
            let remaining = deadline
                .saturating_duration_since(Instant::now())
                .max(floor);
            let outcome = match conn.read_reply(remaining) {
                Ok(reply) => settle_ok(&shared, primary, primary_started, conn, reply, req_id),
                Err(e) => {
                    shared.mark_failure(primary);
                    Err(e)
                }
            };
            let _ = tx.send((false, outcome));
        });
    }
    // Hedge attempt on the backend that would own the key next.
    {
        let shared = Arc::clone(shared);
        let frame = frame.to_vec();
        thread::spawn(move || {
            let up = &shared.upstreams[hedge_id as usize];
            up.requests.fetch_add(1, Ordering::Relaxed);
            let _guard = InflightGuard::new(&shared, hedge_id);
            let started = Instant::now();
            let remaining = deadline
                .saturating_duration_since(Instant::now())
                .max(floor);
            let outcome = match up.pool.checkout() {
                Ok(mut conn) => match conn.call(&frame, remaining) {
                    Ok(reply) => settle_ok(&shared, hedge_id, started, conn, reply, req_id),
                    Err(e) => {
                        shared.mark_failure(hedge_id);
                        Err(e)
                    }
                },
                Err(e) => {
                    shared.mark_failure(hedge_id);
                    Err(e)
                }
            };
            let _ = tx.send((true, outcome));
        });
    }
    // Both senders are owned by the racer threads; rx.iter() ends when
    // the last one hangs up.
    let mut last_err: Option<io::Error> = None;
    for (from_hedge, outcome) in rx.iter() {
        match outcome {
            Ok(reply) => {
                if from_hedge {
                    shared.counters.hedges_won.fetch_add(1, Ordering::Relaxed);
                    shared.upstreams[hedge_id as usize]
                        .hedge_wins
                        .fetch_add(1, Ordering::Relaxed);
                }
                return Ok(reply);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("hedge race produced no outcome")))
}

// ---------------------------------------------------------------------------
// Stats rollup
// ---------------------------------------------------------------------------

/// Fetches an upstream's own stats object over a pooled connection.
fn fetch_upstream_stats(shared: &Arc<Shared>, id: u32) -> Option<Json> {
    let up = &shared.upstreams[id as usize];
    if !up.alive.load(Ordering::Relaxed) {
        return None;
    }
    let timeout = shared.config.probe_timeout.max(Duration::from_millis(250));
    let mut conn = up.pool.checkout().ok()?;
    let mut frame = Request::Stats.encode().into_bytes();
    frame.push(b'\n');
    let reply = conn.call(&frame, timeout).ok()?;
    let reply = std::str::from_utf8(&reply).ok()?;
    let json = Json::parse(reply.trim_end()).ok()?;
    let stats = json.get("stats")?.clone();
    up.pool.publish(conn);
    Some(stats)
}

/// Tick-loop bookkeeping for the `stats` rollup — the same shape
/// `gb-serve` emits under `stats.rebal`, so `loadgen --skew-bench`
/// reads either tier identically.
fn rebal_json(shared: &Arc<Shared>) -> Json {
    let settings = shared.config.rebalance.as_ref();
    let snap = shared.rebal.snapshot();
    Json::Obj(vec![
        (
            "enabled".into(),
            Json::Bool(settings.is_some() && shared.upstreams.len() > 1),
        ),
        (
            "vnode_count".into(),
            Json::Int(shared.ring.read().unwrap().vnode_count() as i64),
        ),
        (
            "interval_ms".into(),
            Json::Int(settings.map_or(0, |s| s.interval.as_millis() as i64)),
        ),
        (
            "trigger".into(),
            Json::Num(settings.map_or(0.0, |s| s.trigger)),
        ),
        (
            "move_budget".into(),
            Json::Int(settings.map_or(0, |s| s.move_budget as i64)),
        ),
        ("ticks".into(), Json::Int(snap.ticks as i64)),
        ("skipped".into(), Json::Int(snap.skipped as i64)),
        ("moved".into(), Json::Int(snap.moved as i64)),
        (
            "max_tick_moves".into(),
            Json::Int(snap.max_tick_moves as i64),
        ),
        ("version".into(), Json::Int(snap.version as i64)),
        ("imbalance_before".into(), Json::Num(snap.imbalance_before)),
        ("imbalance_after".into(), Json::Num(snap.imbalance_after)),
        ("alpha".into(), Json::Num(snap.alpha)),
        ("bound".into(), Json::Num(snap.bound)),
    ])
}

fn stats_rollup(shared: &Arc<Shared>) -> Json {
    let alive_now = shared.ring.read().unwrap().alive_count();
    let mut upstream_list = Vec::with_capacity(shared.upstreams.len());
    let mut loads: Vec<f64> = Vec::new();
    for up in &shared.upstreams {
        let alive = up.alive.load(Ordering::Relaxed);
        let nested = fetch_upstream_stats(shared, up.id);
        let depth = nested
            .as_ref()
            .and_then(|s| s.get("queue")?.get("depth")?.as_f64())
            .unwrap_or(0.0);
        let upstream_inflight = nested
            .as_ref()
            .and_then(|s| s.get("connections")?.get("inflight")?.as_f64())
            .unwrap_or(0.0);
        let upstream_requests = nested
            .as_ref()
            .and_then(|s| s.get("requests")?.get("total")?.as_u64());
        if alive {
            // Load gauge per upstream: queued work plus everything the
            // router itself has in flight there (covers requests still
            // on the wire).
            loads.push(
                depth + upstream_inflight + up.inflight.load(Ordering::Relaxed).max(0) as f64,
            );
        }
        let mut entry = vec![
            ("id".into(), Json::Int(up.id as i64)),
            ("addr".into(), Json::Str(up.pool.addr().to_string())),
            ("alive".into(), Json::Bool(alive)),
            (
                "consecutive_failures".into(),
                Json::Int(up.consecutive_failures.load(Ordering::Relaxed) as i64),
            ),
            (
                "requests".into(),
                Json::Int(up.requests.load(Ordering::Relaxed) as i64),
            ),
            (
                "errors".into(),
                Json::Int(up.errors.load(Ordering::Relaxed) as i64),
            ),
            (
                "hedge_wins".into(),
                Json::Int(up.hedge_wins.load(Ordering::Relaxed) as i64),
            ),
            (
                "inflight".into(),
                Json::Int(up.inflight.load(Ordering::Relaxed)),
            ),
            ("pool_idle".into(), Json::Int(up.pool.idle_count() as i64)),
            ("latency".into(), up.latency.to_json()),
            ("queue_depth".into(), Json::Num(depth)),
            ("upstream_inflight".into(), Json::Num(upstream_inflight)),
        ];
        if let Some(total) = upstream_requests {
            entry.push(("upstream_requests".into(), Json::Int(total as i64)));
        }
        upstream_list.push(Json::Obj(entry));
    }
    let (max, mean) = if loads.is_empty() {
        (0.0, 0.0)
    } else {
        let max = loads.iter().cloned().fold(0.0f64, f64::max);
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        (max, mean)
    };
    let ratio = if mean > 0.0 { max / mean } else { 1.0 };
    let c = &shared.counters;
    let router = Json::Obj(vec![
        (
            "uptime_ms".into(),
            Json::Int(shared.started.elapsed().as_millis() as i64),
        ),
        (
            "upstream_count".into(),
            Json::Int(shared.upstreams.len() as i64),
        ),
        ("alive".into(), Json::Int(alive_now as i64)),
        (
            "vnodes".into(),
            Json::Int(shared.ring.read().unwrap().vnodes() as i64),
        ),
        (
            "proxied".into(),
            Json::Int(c.proxied.load(Ordering::Relaxed) as i64),
        ),
        (
            "hedges_sent".into(),
            Json::Int(c.hedges_sent.load(Ordering::Relaxed) as i64),
        ),
        (
            "hedges_won".into(),
            Json::Int(c.hedges_won.load(Ordering::Relaxed) as i64),
        ),
        (
            "failovers".into(),
            Json::Int(c.failovers.load(Ordering::Relaxed) as i64),
        ),
        (
            "recoveries".into(),
            Json::Int(c.recoveries.load(Ordering::Relaxed) as i64),
        ),
        (
            "retries".into(),
            Json::Int(c.retries.load(Ordering::Relaxed) as i64),
        ),
        (
            "stale_retries".into(),
            Json::Int(c.stale_retries.load(Ordering::Relaxed) as i64),
        ),
        (
            "bad_frames".into(),
            Json::Int(c.bad_frames.load(Ordering::Relaxed) as i64),
        ),
        (
            "no_upstream".into(),
            Json::Int(c.no_upstream.load(Ordering::Relaxed) as i64),
        ),
        (
            "probes_ok".into(),
            Json::Int(c.probes_ok.load(Ordering::Relaxed) as i64),
        ),
        (
            "probes_failed".into(),
            Json::Int(c.probes_failed.load(Ordering::Relaxed) as i64),
        ),
        (
            "imbalance".into(),
            Json::Obj(vec![
                ("max".into(), Json::Num(max)),
                ("mean".into(), Json::Num(mean)),
                ("ratio".into(), Json::Num(ratio)),
            ]),
        ),
        ("rebal".into(), rebal_json(shared)),
    ]);
    Json::Obj(vec![
        ("router".into(), router),
        ("upstreams".into(), Json::Arr(upstream_list)),
    ])
}

// ---------------------------------------------------------------------------
// Client connections
// ---------------------------------------------------------------------------

/// Routes one balance request: derives the key, relays the pre-framed
/// request bytes verbatim, and charges the round trip to the vnode.
fn proxy_and_record(
    shared: &Arc<Shared>,
    frame: &[u8],
    req: &BalanceRequest,
    codec: WireCodec,
) -> Vec<u8> {
    shared.counters.proxied.fetch_add(1, Ordering::Relaxed);
    let key = CacheKey::new(req.problem.fingerprint(), req.algorithm, req.n, req.theta).mix();
    let vnode = shared.ring.read().unwrap().vnode_of(key);
    let started = Instant::now();
    let reply = proxy_balance(shared, frame, key, req.id, codec);
    // Charge the full proxy round trip (queue + compute + wire) to the
    // vnode: it is the cost a move would relocate.
    let micros = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
    shared.vnode_load.record(vnode, micros);
    reply
}

/// Handles one decoded text frame; returns the framed reply bytes and
/// whether the connection should stop after it (shutdown acknowledged).
fn handle_line(shared: &Arc<Shared>, line: &str) -> (Vec<u8>, bool) {
    let codec = WireCodec::Json;
    if line.len() > MAX_FRAME {
        shared.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
        return (
            error_frame(codec, None, ErrorCode::BadRequest, "frame too long"),
            false,
        );
    }
    let json = match Json::parse(line) {
        Ok(json) => json,
        Err(e) => {
            shared.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
            return (
                error_frame(
                    codec,
                    None,
                    ErrorCode::BadRequest,
                    &format!("bad frame: {e}"),
                ),
                false,
            );
        }
    };
    let id = json.get("id").and_then(Json::as_u64);
    match Request::from_json(&json) {
        Ok(Request::Ping) => (response_frame(codec, &Response::Pong), false),
        Ok(Request::Stats) => (
            response_frame(codec, &Response::Stats(stats_rollup(shared))),
            false,
        ),
        Ok(Request::Shutdown) => {
            // Ack first (the frame is answered even while draining),
            // then stop: flag flips before the reply is written, and
            // forwarding happens in the caller after the ack.
            shared.shutdown.store(true, Ordering::SeqCst);
            (response_frame(codec, &Response::Pong), true)
        }
        Ok(Request::Balance(req)) => {
            // Relay the client's own line, newline restored — the body
            // is never re-encoded on the way upstream.
            let mut frame = Vec::with_capacity(line.len() + 1);
            frame.extend_from_slice(line.as_bytes());
            frame.push(b'\n');
            (proxy_and_record(shared, &frame, &req, codec), false)
        }
        Err(e) => {
            shared.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
            (
                error_frame(codec, id, ErrorCode::BadRequest, &e.message),
                false,
            )
        }
    }
}

/// Handles one binary frame payload; same contract as [`handle_line`].
fn handle_binary(shared: &Arc<Shared>, payload: &[u8]) -> (Vec<u8>, bool) {
    let codec = WireCodec::Binary;
    match codec.decode_request(payload) {
        Ok(Request::Ping) => (response_frame(codec, &Response::Pong), false),
        Ok(Request::Stats) => (
            response_frame(codec, &Response::Stats(stats_rollup(shared))),
            false,
        ),
        Ok(Request::Shutdown) => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (response_frame(codec, &Response::Pong), true)
        }
        Ok(Request::Balance(req)) => {
            // Re-attach the length prefix around the untouched payload;
            // the body bytes are relayed verbatim.
            let mut frame = Vec::with_capacity(BIN_HDR + payload.len());
            frame.push(MAGIC);
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(payload);
            (proxy_and_record(shared, &frame, &req, codec), false)
        }
        Err(e) => {
            shared.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
            (
                error_frame(codec, None, ErrorCode::BadRequest, &e.message),
                false,
            )
        }
    }
}

/// Forwards `shutdown` to every alive upstream, waiting briefly for
/// each ack.
fn forward_shutdown(shared: &Arc<Shared>) {
    for up in &shared.upstreams {
        if !up.alive.load(Ordering::Relaxed) {
            continue;
        }
        if let Ok(mut conn) = up.pool.checkout() {
            let mut frame = Request::Shutdown.encode().into_bytes();
            frame.push(b'\n');
            let _ = conn.call(
                &frame,
                shared.config.probe_timeout.max(Duration::from_millis(250)),
            );
            // The upstream is going down; never repool.
        }
    }
}

fn serve_client(shared: Arc<Shared>, stream: TcpStream, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_write_timeout(Some(shared.config.reply_timeout));
    let shim = Arc::clone(&shared.config.shim);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut frames = FrameReader::new(ShimStream::new(read_half, Arc::clone(&shim), conn_id));
    let mut writer = ShimStream::new(stream, shim, conn_id);
    // Replies arrive here as complete wire frames (newline or length
    // prefix included), so each one leaves as a single write.
    let mut write_reply = |reply: &[u8]| -> bool { writer.write_all(reply).is_ok() };
    loop {
        match frames.poll_line() {
            Ok(Frame::Line(line)) => {
                let (reply, stop) = handle_line(&shared, &line);
                let wrote = write_reply(&reply);
                if stop {
                    if shared.config.forward_shutdown {
                        forward_shutdown(&shared);
                    }
                    break;
                }
                if !wrote {
                    break;
                }
            }
            Ok(Frame::Binary(payload)) => {
                let (reply, stop) = handle_binary(&shared, &payload);
                let wrote = write_reply(&reply);
                if stop {
                    if shared.config.forward_shutdown {
                        forward_shutdown(&shared);
                    }
                    break;
                }
                if !wrote {
                    break;
                }
            }
            Ok(Frame::Pending) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Ok(Frame::Eof) => break,
            Err(FrameError::TooLong) => {
                shared.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                if !write_reply(&error_frame(
                    frames.codec(),
                    None,
                    ErrorCode::BadRequest,
                    "frame too long",
                )) {
                    break;
                }
            }
            Err(FrameError::NotUtf8) => {
                shared.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                if !write_reply(&error_frame(
                    frames.codec(),
                    None,
                    ErrorCode::BadRequest,
                    "frame is not valid UTF-8",
                )) {
                    break;
                }
            }
            Err(FrameError::Corrupt) => {
                // The reader resyncs to the next plausible boundary; the
                // connection itself survives.
                shared.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                if !write_reply(&error_frame(
                    frames.codec(),
                    None,
                    ErrorCode::BadRequest,
                    "binary frame length is corrupt",
                )) {
                    break;
                }
            }
            Err(FrameError::Torn) => {
                shared.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(FrameError::Io(_)) => break,
        }
    }
}

// ---------------------------------------------------------------------------
// Rebalance tick
// ---------------------------------------------------------------------------

/// Periodic self-balancing tick: observe per-vnode load, plan an HF
/// assignment over the alive upstreams, and swap it into the ring under
/// the write lock (atomic between requests — routing reads take the
/// read lock per frame).
fn rebalance_loop(shared: &Arc<Shared>, settings: &RebalanceSettings) {
    let vnodes = shared.ring.read().unwrap().vnode_count();
    let mut tracker = EwmaTracker::new(vnodes, settings.decay);
    let step = settings
        .interval
        .min(Duration::from_millis(20))
        .max(Duration::from_millis(1));
    loop {
        let wake = Instant::now() + settings.interval;
        while Instant::now() < wake {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(step.min(wake.saturating_duration_since(Instant::now())));
        }
        tracker.observe(&shared.vnode_load);
        let (current, alive) = {
            let ring = shared.ring.read().unwrap();
            let current = match ring.assignment() {
                Some(owners) => owners.to_vec(),
                None => ring.default_owners(),
            };
            (current, ring.alive_ids())
        };
        // A dead upstream is excluded from the plan; its vnodes are
        // orphans and re-home as forced moves, exempt from the budget.
        let plan = gb_rebal::plan(
            &tracker.weights(),
            &current,
            &alive,
            settings.trigger,
            settings.move_budget,
        );
        shared.rebal.record_tick(&plan);
        if !plan.skipped && !plan.moves.is_empty() {
            shared
                .ring
                .write()
                .unwrap()
                .set_assignment(Some(plan.owners));
        }
    }
}

// ---------------------------------------------------------------------------
// Health prober
// ---------------------------------------------------------------------------

/// One unshimmed connect + ping round trip against `addr`.
fn probe(addr: SocketAddr, timeout: Duration) -> bool {
    let Ok(sock) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    if sock.set_nodelay(true).is_err()
        || sock.set_read_timeout(Some(timeout)).is_err()
        || sock.set_write_timeout(Some(timeout)).is_err()
    {
        return false;
    }
    let Ok(read_half) = sock.try_clone() else {
        return false;
    };
    let mut writer = sock;
    let mut frame = Request::Ping.encode();
    frame.push('\n');
    if writer.write_all(frame.as_bytes()).is_err() {
        return false;
    }
    let mut reply = String::new();
    let mut reader = BufReader::new(read_half);
    match (&mut reader)
        .take(2 * MAX_FRAME as u64)
        .read_line(&mut reply)
    {
        Ok(n) if n > 0 => matches!(Response::decode(reply.trim_end()), Ok(Response::Pong)),
        _ => false,
    }
}

fn health_loop(shared: Arc<Shared>) {
    let tick = shared
        .config
        .poll_interval
        .min(Duration::from_millis(25))
        .max(Duration::from_millis(1));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        for up in &shared.upstreams {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if probe(up.pool.addr(), shared.config.probe_timeout) {
                shared.counters.probes_ok.fetch_add(1, Ordering::Relaxed);
                shared.mark_success(up.id);
            } else {
                shared
                    .counters
                    .probes_failed
                    .fetch_add(1, Ordering::Relaxed);
                shared.mark_failure(up.id);
            }
        }
        // Sleep out the interval in small ticks so shutdown stays snappy.
        let wake = Instant::now() + shared.config.health_interval;
        while Instant::now() < wake {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(tick.min(wake.saturating_duration_since(Instant::now())));
        }
    }
}

// ---------------------------------------------------------------------------
// The server handle
// ---------------------------------------------------------------------------

/// A running router: accept loop + health prober, stopped by
/// [`shutdown`](RouterServer::shutdown), a client `shutdown` frame, or
/// drop.
pub struct RouterServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
    rebal: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for RouterServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterServer")
            .field("local_addr", &self.local_addr)
            .field("upstreams", &self.shared.upstreams.len())
            .finish_non_exhaustive()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let idle = shared
        .config
        .poll_interval
        .min(Duration::from_millis(20))
        .max(Duration::from_millis(1));
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_conn: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = next_conn;
                next_conn += 1;
                if !shared.config.shim.allow_accept(conn_id) {
                    drop(stream);
                    continue;
                }
                let shared = Arc::clone(&shared);
                handlers.push(thread::spawn(move || serve_client(shared, stream, conn_id)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(idle);
            }
            Err(_) => thread::sleep(idle),
        }
        handlers.retain(|h| !h.is_finished());
    }
    // Drain: handlers observe the flag at their next poll tick and
    // finish their in-flight frame first.
    for handle in handlers {
        let _ = handle.join();
    }
}

impl RouterServer {
    /// Binds the listener and spawns the accept and health threads.
    /// Fails fast on an empty upstream list.
    pub fn start(config: RouterConfig) -> io::Result<RouterServer> {
        if config.upstreams.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one upstream",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let vnodes = if config.vnodes == 0 {
            DEFAULT_VNODES
        } else {
            config.vnodes
        };
        let upstreams = config
            .upstreams
            .iter()
            .enumerate()
            .map(|(i, &addr)| Upstream {
                id: i as u32,
                pool: UpstreamPool::new(
                    addr,
                    UPSTREAM_CONN_BASE + i as u64,
                    Arc::clone(&config.shim),
                    config.connect_timeout,
                    config.reply_timeout,
                    config.max_pool_idle,
                ),
                alive: AtomicBool::new(true),
                consecutive_failures: AtomicU32::new(0),
                inflight: AtomicI64::new(0),
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                hedge_wins: AtomicU64::new(0),
                latency: Histogram::new(),
            })
            .collect();
        let ring = FailoverRing::new(config.upstreams.len(), vnodes);
        let vnode_count = ring.vnode_count();
        let shared = Arc::new(Shared {
            ring: RwLock::new(ring),
            upstreams,
            counters: Counters::default(),
            vnode_load: VnodeLoad::new(vnode_count),
            rebal: RebalanceCounters::new(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            config,
        });
        let health = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("gb-router-health".into())
                .spawn(move || health_loop(shared))?
        };
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("gb-router-accept".into())
                .spawn(move || accept_loop(listener, shared))?
        };
        // With a single upstream every assignment is the trivial one;
        // skip the tick thread entirely.
        let rebal = match &shared.config.rebalance {
            Some(settings) if shared.upstreams.len() > 1 => {
                let shared = Arc::clone(&shared);
                let settings = settings.clone();
                Some(
                    thread::Builder::new()
                        .name("gb-router-rebal".into())
                        .spawn(move || rebalance_loop(&shared, &settings))?,
                )
            }
            _ => None,
        };
        Ok(RouterServer {
            shared,
            local_addr,
            accept: Some(accept),
            health: Some(health),
            rebal,
        })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests shutdown without blocking; threads drain on their next
    /// poll tick.
    pub fn trigger_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the accept loop (and every handler) plus the prober.
    pub fn join(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.health.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.rebal.take() {
            let _ = handle.join();
        }
    }

    /// Graceful stop: trigger + join.
    pub fn shutdown(mut self) {
        self.trigger_shutdown();
        self.join();
    }

    /// The live stats rollup (same object the `stats` op returns).
    pub fn stats_json(&self) -> Json {
        stats_rollup(&self.shared)
    }

    /// Currently-alive upstream ids, for tests asserting failover.
    pub fn alive_ids(&self) -> Vec<u32> {
        self.shared.ring.read().unwrap().alive_ids()
    }

    /// `(hedges_sent, hedges_won)` so far.
    pub fn hedge_counters(&self) -> (u64, u64) {
        (
            self.shared.counters.hedges_sent.load(Ordering::Relaxed),
            self.shared.counters.hedges_won.load(Ordering::Relaxed),
        )
    }

    /// Stale pooled connections transparently redialed so far.
    pub fn stale_retry_count(&self) -> u64 {
        self.shared.counters.stale_retries.load(Ordering::Relaxed)
    }

    /// `(failovers, recoveries)` so far.
    pub fn failover_counters(&self) -> (u64, u64) {
        (
            self.shared.counters.failovers.load(Ordering::Relaxed),
            self.shared.counters.recoveries.load(Ordering::Relaxed),
        )
    }

    /// The rebalance tick bookkeeping, for tests and benches.
    pub fn rebalance_snapshot(&self) -> RebalanceSnapshot {
        self.shared.rebal.snapshot()
    }

    /// The current explicit vnode assignment, if a rebalance tick has
    /// applied one (`None` means hash-default placement).
    pub fn assignment(&self) -> Option<Vec<u32>> {
        self.shared
            .ring
            .read()
            .unwrap()
            .assignment()
            .map(|owners| owners.to_vec())
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.trigger_shutdown();
        self.join();
    }
}
