//! Pooled persistent connections to a single upstream.
//!
//! Each upstream gets an [`UpstreamPool`]: checked-out connections are
//! used for exactly one request/response exchange and published back
//! when the reply arrived cleanly. A [`PooledConn`] survives read
//! timeouts mid-reply — the partial line stays buffered, so a hedged
//! request can keep waiting on the primary after its hedge fired —
//! but any connection whose exchange ended in an error is dropped, not
//! repooled, so a desynchronised stream can never serve a stale reply
//! to a later request.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gb_service::fault::{IoShim, ShimStream};
use gb_service::proto::MAX_FRAME;

/// Shim connection-id base for upstream-side sockets. Client
/// connections use their accept order (`0, 1, 2, ...`) exactly like the
/// server; every pooled or probe connection to upstream `i` uses
/// `UPSTREAM_CONN_BASE + i`, so a scripted shim can fault the
/// router→upstream link without touching client traffic.
pub const UPSTREAM_CONN_BASE: u64 = 1 << 32;

/// One persistent connection to an upstream, owned by whoever checked
/// it out of the pool.
pub struct PooledConn {
    /// Raw handle kept for timeout changes (`set_read_timeout`).
    sock: TcpStream,
    writer: ShimStream,
    reader: BufReader<ShimStream>,
    /// Bytes of a reply line that arrived before a read timeout; the
    /// next [`read_reply`](PooledConn::read_reply) resumes from here.
    partial: String,
    /// Scratch buffer so a frame and its newline go out as ONE write —
    /// two writes under `TCP_NODELAY` are two segments, and the second
    /// can cost the receiver an extra wakeup per request.
    out: String,
    /// Last timeout applied to the socket; skips the `setsockopt` pair
    /// on the hot path when the deadline has not changed.
    read_timeout: Option<Duration>,
}

impl std::fmt::Debug for PooledConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledConn")
            .field("sock", &self.sock)
            .field("partial_len", &self.partial.len())
            .finish_non_exhaustive()
    }
}

impl PooledConn {
    fn connect(
        addr: SocketAddr,
        connect_timeout: Duration,
        write_timeout: Duration,
        shim: &Arc<dyn IoShim>,
        conn_id: u64,
    ) -> io::Result<PooledConn> {
        let sock = TcpStream::connect_timeout(&addr, connect_timeout)?;
        sock.set_nodelay(true)?;
        sock.set_write_timeout(Some(write_timeout))?;
        let writer = ShimStream::new(sock.try_clone()?, Arc::clone(shim), conn_id);
        let reader = BufReader::new(ShimStream::new(
            sock.try_clone()?,
            Arc::clone(shim),
            conn_id,
        ));
        Ok(PooledConn {
            sock,
            writer,
            reader,
            partial: String::new(),
            out: String::new(),
            read_timeout: None,
        })
    }

    /// Whether a reply line is partially buffered (the previous read
    /// timed out mid-frame). Such a connection must finish its read
    /// before it can carry another request.
    pub fn has_partial(&self) -> bool {
        !self.partial.is_empty()
    }

    /// Writes one frame (newline appended) as a single write.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.out.clear();
        self.out.push_str(line);
        self.out.push('\n');
        self.writer.write_all(self.out.as_bytes())
    }

    /// Reads one reply line, waiting at most `timeout`.
    ///
    /// A `WouldBlock`/`TimedOut` error means the reply has not arrived
    /// yet; any bytes that did arrive stay buffered and a later call
    /// resumes the same line. Every other error (EOF, reset, an
    /// oversized or torn frame) means the connection is unusable.
    pub fn read_reply(&mut self, timeout: Duration) -> io::Result<String> {
        let timeout = timeout.max(Duration::from_millis(1));
        if self.read_timeout != Some(timeout) {
            self.sock.set_read_timeout(Some(timeout))?;
            self.read_timeout = Some(timeout);
        }
        loop {
            // take() bounds a single line; repeated resumed reads of one
            // endless line are cut off by the same limit below.
            let read = (&mut self.reader)
                .take(2 * MAX_FRAME as u64)
                .read_line(&mut self.partial);
            match read {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "upstream closed the connection",
                    ))
                }
                Ok(_) => {
                    if self.partial.ends_with('\n') && self.partial.len() <= 2 * MAX_FRAME {
                        let mut line = std::mem::take(&mut self.partial);
                        while line.ends_with('\n') || line.ends_with('\r') {
                            line.pop();
                        }
                        return Ok(line);
                    }
                    // read_line returned without a newline: EOF mid-line
                    // or the take() limit was hit — either way the
                    // stream is out of frame sync.
                    self.partial.clear();
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "upstream reply torn or oversized",
                    ));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(e);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// One full request/response exchange.
    pub fn call(&mut self, line: &str, timeout: Duration) -> io::Result<String> {
        self.send_line(line)?;
        self.read_reply(timeout)
    }
}

/// A bounded pool of idle [`PooledConn`]s to one upstream address.
pub struct UpstreamPool {
    addr: SocketAddr,
    conn_id: u64,
    shim: Arc<dyn IoShim>,
    connect_timeout: Duration,
    write_timeout: Duration,
    max_idle: usize,
    idle: Mutex<Vec<PooledConn>>,
}

impl std::fmt::Debug for UpstreamPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpstreamPool")
            .field("addr", &self.addr)
            .field("conn_id", &self.conn_id)
            .field("idle", &self.idle_count())
            .finish_non_exhaustive()
    }
}

impl UpstreamPool {
    /// A pool for `addr`, wrapping every socket in `shim` under
    /// `conn_id` (see [`UPSTREAM_CONN_BASE`]).
    pub fn new(
        addr: SocketAddr,
        conn_id: u64,
        shim: Arc<dyn IoShim>,
        connect_timeout: Duration,
        write_timeout: Duration,
        max_idle: usize,
    ) -> UpstreamPool {
        UpstreamPool {
            addr,
            conn_id,
            shim,
            connect_timeout,
            write_timeout,
            max_idle: max_idle.max(1),
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The upstream's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Takes an idle connection, or dials a fresh one.
    pub fn checkout(&self) -> io::Result<PooledConn> {
        if let Some(conn) = self.idle.lock().unwrap().pop() {
            return Ok(conn);
        }
        PooledConn::connect(
            self.addr,
            self.connect_timeout,
            self.write_timeout,
            &self.shim,
            self.conn_id,
        )
    }

    /// Returns a connection after a clean exchange. Connections with a
    /// partial reply pending are dropped (out of frame sync), as are
    /// any beyond the idle cap.
    pub fn publish(&self, conn: PooledConn) {
        if conn.has_partial() {
            return;
        }
        let mut idle = self.idle.lock().unwrap();
        if idle.len() < self.max_idle {
            idle.push(conn);
        }
    }

    /// Drops every idle connection (the upstream was declared dead).
    pub fn clear(&self) {
        self.idle.lock().unwrap().clear();
    }

    /// Number of idle pooled connections.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_service::fault::Passthrough;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;
    use std::thread;

    fn shim() -> Arc<dyn IoShim> {
        Arc::new(Passthrough)
    }

    /// An echo server that answers each line with `ok:<line>`, optionally
    /// splitting one reply around a pause to exercise partial reads.
    fn echo_server(pause_on: Option<&'static str>, pause: Duration) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        if reader.read_line(&mut line).unwrap_or(0) == 0 {
                            return;
                        }
                        let body = line.trim_end();
                        let reply = format!("ok:{body}\n");
                        if Some(body) == pause_on {
                            let (a, b) = reply.split_at(reply.len() / 2);
                            writer.write_all(a.as_bytes()).unwrap();
                            writer.flush().unwrap();
                            thread::sleep(pause);
                            writer.write_all(b.as_bytes()).unwrap();
                        } else {
                            writer.write_all(reply.as_bytes()).unwrap();
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn pool_reuses_published_connections() {
        let addr = echo_server(None, Duration::ZERO);
        let pool = UpstreamPool::new(
            addr,
            UPSTREAM_CONN_BASE,
            shim(),
            Duration::from_secs(1),
            Duration::from_secs(1),
            4,
        );
        let mut conn = pool.checkout().unwrap();
        assert_eq!(
            conn.call("hello", Duration::from_secs(1)).unwrap(),
            "ok:hello"
        );
        pool.publish(conn);
        assert_eq!(pool.idle_count(), 1);
        let mut again = pool.checkout().unwrap();
        assert_eq!(pool.idle_count(), 0, "checkout must drain the idle list");
        assert_eq!(
            again.call("world", Duration::from_secs(1)).unwrap(),
            "ok:world"
        );
        pool.publish(again);
        pool.clear();
        assert_eq!(pool.idle_count(), 0);
    }

    #[test]
    fn read_reply_resumes_a_partial_line_after_timeout() {
        let addr = echo_server(Some("slow"), Duration::from_millis(80));
        let pool = UpstreamPool::new(
            addr,
            UPSTREAM_CONN_BASE,
            shim(),
            Duration::from_secs(1),
            Duration::from_secs(1),
            4,
        );
        let mut conn = pool.checkout().unwrap();
        conn.send_line("slow").unwrap();
        // The first half of the reply arrives, then the server pauses
        // past our timeout: the read must report a timeout and keep the
        // prefix buffered.
        let err = conn.read_reply(Duration::from_millis(25)).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "expected a timeout, got {err:?}"
        );
        assert!(conn.has_partial(), "the reply prefix must stay buffered");
        // Resuming with a generous timeout completes the same line.
        assert_eq!(conn.read_reply(Duration::from_secs(1)).unwrap(), "ok:slow");
        assert!(!conn.has_partial());
        // A connection that timed out mid-reply must not be repooled
        // while desynchronised.
        conn.send_line("slow").unwrap();
        let _ = conn.read_reply(Duration::from_millis(25)).unwrap_err();
        assert!(conn.has_partial());
        pool.publish(conn);
        assert_eq!(pool.idle_count(), 0, "partial conns are dropped");
    }

    #[test]
    fn checkout_fails_fast_on_a_dead_address() {
        // Bind-then-drop reserves a port with no listener behind it.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let pool = UpstreamPool::new(
            addr,
            UPSTREAM_CONN_BASE,
            shim(),
            Duration::from_millis(200),
            Duration::from_secs(1),
            4,
        );
        assert!(pool.checkout().is_err());
    }
}
