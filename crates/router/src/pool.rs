//! Pooled persistent connections to a single upstream.
//!
//! Each upstream gets an [`UpstreamPool`]: checked-out connections are
//! used for exactly one request/response exchange and published back
//! when the reply arrived cleanly. The pool is codec-agnostic: frames
//! move through it as raw bytes — a JSON line with its newline, or a
//! length-prefixed binary frame — so proxying never re-parses or copies
//! a body. A [`PooledConn`] survives read timeouts mid-reply — the
//! partial frame stays buffered, so a hedged request can keep waiting
//! on the primary after its hedge fired — but any connection whose
//! exchange ended in an error is dropped, not repooled, so a
//! desynchronised stream can never serve a stale reply to a later
//! request.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use gb_service::fault::{IoShim, ShimStream};
use gb_service::proto::{BIN_HDR, MAGIC, MAX_FRAME};

/// Shim connection-id base for upstream-side sockets. Client
/// connections use their accept order (`0, 1, 2, ...`) exactly like the
/// server; every pooled or probe connection to upstream `i` uses
/// `UPSTREAM_CONN_BASE + i`, so a scripted shim can fault the
/// router→upstream link without touching client traffic.
pub const UPSTREAM_CONN_BASE: u64 = 1 << 32;

/// Where one buffered reply frame ends, sniffing the first byte for the
/// codec. `Ok(Some(end))` when `buf[..end]` is a complete frame
/// (newline included for JSON, header included for binary), `Ok(None)`
/// when more bytes are needed, `Err` when the declared binary length is
/// corrupt — the stream can never resync inside a request/response
/// exchange, so the connection must be dropped.
fn frame_end(buf: &[u8]) -> io::Result<Option<usize>> {
    match buf.first() {
        None => Ok(None),
        Some(&MAGIC) => {
            if buf.len() < BIN_HDR {
                return Ok(None);
            }
            let len = u32::from_le_bytes(buf[1..BIN_HDR].try_into().unwrap()) as usize;
            if len > MAX_FRAME {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "upstream binary frame length is corrupt",
                ));
            }
            if buf.len() >= BIN_HDR + len {
                Ok(Some(BIN_HDR + len))
            } else {
                Ok(None)
            }
        }
        _ => Ok(buf.iter().position(|&b| b == b'\n').map(|p| p + 1)),
    }
}

/// One persistent connection to an upstream, owned by whoever checked
/// it out of the pool.
pub struct PooledConn {
    /// Raw handle kept for timeout changes (`set_read_timeout`).
    sock: TcpStream,
    writer: ShimStream,
    reader: ShimStream,
    /// Bytes of a reply frame that arrived before a read timeout; the
    /// next [`read_reply`](PooledConn::read_reply) resumes from here.
    partial: Vec<u8>,
    /// Last timeout applied to the socket; skips the `setsockopt` pair
    /// on the hot path when the deadline has not changed.
    read_timeout: Option<Duration>,
}

impl std::fmt::Debug for PooledConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledConn")
            .field("sock", &self.sock)
            .field("partial_len", &self.partial.len())
            .finish_non_exhaustive()
    }
}

impl PooledConn {
    fn connect(
        addr: SocketAddr,
        connect_timeout: Duration,
        write_timeout: Duration,
        shim: &Arc<dyn IoShim>,
        conn_id: u64,
    ) -> io::Result<PooledConn> {
        let sock = TcpStream::connect_timeout(&addr, connect_timeout)?;
        sock.set_nodelay(true)?;
        sock.set_write_timeout(Some(write_timeout))?;
        let writer = ShimStream::new(sock.try_clone()?, Arc::clone(shim), conn_id);
        let reader = ShimStream::new(sock.try_clone()?, Arc::clone(shim), conn_id);
        Ok(PooledConn {
            sock,
            writer,
            reader,
            partial: Vec::new(),
            read_timeout: None,
        })
    }

    /// Whether a reply frame is partially buffered (the previous read
    /// timed out mid-frame). Such a connection must finish its read
    /// before it can carry another request.
    pub fn has_partial(&self) -> bool {
        !self.partial.is_empty()
    }

    /// Writes one complete pre-framed request (newline or length prefix
    /// already included) as a single write.
    pub fn send_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        self.writer.write_all(frame)
    }

    /// Reads one complete reply frame, waiting at most `timeout`, and
    /// returns it verbatim — framing included — so the caller can relay
    /// it without re-encoding.
    ///
    /// A `WouldBlock`/`TimedOut` error means the reply has not arrived
    /// yet; any bytes that did arrive stay buffered and a later call
    /// resumes the same frame. Every other error (EOF, reset, a corrupt
    /// length, an oversized or torn frame) means the connection is
    /// unusable.
    pub fn read_reply(&mut self, timeout: Duration) -> io::Result<Vec<u8>> {
        let timeout = timeout.max(Duration::from_millis(1));
        if self.read_timeout != Some(timeout) {
            self.sock.set_read_timeout(Some(timeout))?;
            self.read_timeout = Some(timeout);
        }
        let mut chunk = [0u8; 4096];
        loop {
            match frame_end(&self.partial) {
                Ok(Some(end)) if end == self.partial.len() => {
                    return Ok(std::mem::take(&mut self.partial));
                }
                Ok(Some(_)) => {
                    // Bytes beyond one reply on a one-request-in-flight
                    // stream: frame sync is gone.
                    self.partial.clear();
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "upstream reply overran its frame",
                    ));
                }
                Ok(None) => {}
                Err(e) => {
                    self.partial.clear();
                    return Err(e);
                }
            }
            if self.partial.len() > BIN_HDR + MAX_FRAME {
                self.partial.clear();
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "upstream reply torn or oversized",
                ));
            }
            match self.reader.read(&mut chunk) {
                Ok(0) => {
                    self.partial.clear();
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "upstream closed the connection",
                    ));
                }
                Ok(k) => self.partial.extend_from_slice(&chunk[..k]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(e);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// One full request/response exchange over pre-framed bytes.
    pub fn call(&mut self, frame: &[u8], timeout: Duration) -> io::Result<Vec<u8>> {
        self.send_frame(frame)?;
        self.read_reply(timeout)
    }
}

/// A bounded pool of idle [`PooledConn`]s to one upstream address.
pub struct UpstreamPool {
    addr: SocketAddr,
    conn_id: u64,
    shim: Arc<dyn IoShim>,
    connect_timeout: Duration,
    write_timeout: Duration,
    max_idle: usize,
    idle: Mutex<Vec<PooledConn>>,
}

impl std::fmt::Debug for UpstreamPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpstreamPool")
            .field("addr", &self.addr)
            .field("conn_id", &self.conn_id)
            .field("idle", &self.idle_count())
            .finish_non_exhaustive()
    }
}

impl UpstreamPool {
    /// A pool for `addr`, wrapping every socket in `shim` under
    /// `conn_id` (see [`UPSTREAM_CONN_BASE`]).
    pub fn new(
        addr: SocketAddr,
        conn_id: u64,
        shim: Arc<dyn IoShim>,
        connect_timeout: Duration,
        write_timeout: Duration,
        max_idle: usize,
    ) -> UpstreamPool {
        UpstreamPool {
            addr,
            conn_id,
            shim,
            connect_timeout,
            write_timeout,
            max_idle: max_idle.max(1),
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The upstream's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The idle list, recovering from a poisoned lock. A handler thread
    /// that panics while holding the lock must not cascade the panic
    /// into every later checkout on this upstream; the inner state may
    /// be half-updated, so the list is cleared — dropping idle sockets
    /// is always safe, they are redialed on demand.
    fn idle_guard(&self) -> MutexGuard<'_, Vec<PooledConn>> {
        self.idle.lock().unwrap_or_else(|poisoned| {
            // Un-poison so recovery happens exactly once, not on every
            // later lock.
            self.idle.clear_poison();
            let mut guard = poisoned.into_inner();
            guard.clear();
            guard
        })
    }

    /// Takes an idle connection, or dials a fresh one.
    pub fn checkout(&self) -> io::Result<PooledConn> {
        self.checkout_tracked().map(|(conn, _)| conn)
    }

    /// Like [`checkout`](Self::checkout), also reporting whether the
    /// connection came from the idle list. A reused connection may have
    /// been closed by the upstream while it sat idle (restart, idle
    /// sweep) — the caller should retry such a failure once on a fresh
    /// dial before counting it against the failure threshold.
    pub fn checkout_tracked(&self) -> io::Result<(PooledConn, bool)> {
        if let Some(conn) = self.idle_guard().pop() {
            return Ok((conn, true));
        }
        self.dial().map(|conn| (conn, false))
    }

    /// Dials a fresh connection, bypassing the idle list.
    pub fn dial(&self) -> io::Result<PooledConn> {
        PooledConn::connect(
            self.addr,
            self.connect_timeout,
            self.write_timeout,
            &self.shim,
            self.conn_id,
        )
    }

    /// Returns a connection after a clean exchange. Connections with a
    /// partial reply pending are dropped (out of frame sync), as are
    /// any beyond the idle cap.
    pub fn publish(&self, conn: PooledConn) {
        if conn.has_partial() {
            return;
        }
        let mut idle = self.idle_guard();
        if idle.len() < self.max_idle {
            idle.push(conn);
        }
    }

    /// Drops every idle connection (the upstream was declared dead).
    pub fn clear(&self) {
        self.idle_guard().clear();
    }

    /// Number of idle pooled connections.
    pub fn idle_count(&self) -> usize {
        self.idle_guard().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_service::fault::Passthrough;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;
    use std::thread;

    fn shim() -> Arc<dyn IoShim> {
        Arc::new(Passthrough)
    }

    fn line(s: &str) -> Vec<u8> {
        format!("{s}\n").into_bytes()
    }

    /// An echo server that answers each line with `ok:<line>`, optionally
    /// splitting one reply around a pause to exercise partial reads.
    fn echo_server(pause_on: Option<&'static str>, pause: Duration) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        if reader.read_line(&mut line).unwrap_or(0) == 0 {
                            return;
                        }
                        let body = line.trim_end();
                        let reply = format!("ok:{body}\n");
                        if Some(body) == pause_on {
                            let (a, b) = reply.split_at(reply.len() / 2);
                            writer.write_all(a.as_bytes()).unwrap();
                            writer.flush().unwrap();
                            thread::sleep(pause);
                            writer.write_all(b.as_bytes()).unwrap();
                        } else {
                            writer.write_all(reply.as_bytes()).unwrap();
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn pool_reuses_published_connections() {
        let addr = echo_server(None, Duration::ZERO);
        let pool = UpstreamPool::new(
            addr,
            UPSTREAM_CONN_BASE,
            shim(),
            Duration::from_secs(1),
            Duration::from_secs(1),
            4,
        );
        let (mut conn, reused) = pool.checkout_tracked().unwrap();
        assert!(!reused, "first checkout dials fresh");
        assert_eq!(
            conn.call(&line("hello"), Duration::from_secs(1)).unwrap(),
            line("ok:hello")
        );
        pool.publish(conn);
        assert_eq!(pool.idle_count(), 1);
        let (mut again, reused) = pool.checkout_tracked().unwrap();
        assert!(reused, "second checkout reuses the idle conn");
        assert_eq!(pool.idle_count(), 0, "checkout must drain the idle list");
        assert_eq!(
            again.call(&line("world"), Duration::from_secs(1)).unwrap(),
            line("ok:world")
        );
        pool.publish(again);
        pool.clear();
        assert_eq!(pool.idle_count(), 0);
    }

    #[test]
    fn read_reply_resumes_a_partial_line_after_timeout() {
        let addr = echo_server(Some("slow"), Duration::from_millis(80));
        let pool = UpstreamPool::new(
            addr,
            UPSTREAM_CONN_BASE,
            shim(),
            Duration::from_secs(1),
            Duration::from_secs(1),
            4,
        );
        let mut conn = pool.checkout().unwrap();
        conn.send_frame(&line("slow")).unwrap();
        // The first half of the reply arrives, then the server pauses
        // past our timeout: the read must report a timeout and keep the
        // prefix buffered.
        let err = conn.read_reply(Duration::from_millis(25)).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "expected a timeout, got {err:?}"
        );
        assert!(conn.has_partial(), "the reply prefix must stay buffered");
        // Resuming with a generous timeout completes the same frame.
        assert_eq!(
            conn.read_reply(Duration::from_secs(1)).unwrap(),
            line("ok:slow")
        );
        assert!(!conn.has_partial());
        // A connection that timed out mid-reply must not be repooled
        // while desynchronised.
        conn.send_frame(&line("slow")).unwrap();
        let _ = conn.read_reply(Duration::from_millis(25)).unwrap_err();
        assert!(conn.has_partial());
        pool.publish(conn);
        assert_eq!(pool.idle_count(), 0, "partial conns are dropped");
    }

    #[test]
    fn binary_frames_round_trip_verbatim() {
        // A raw byte-echo upstream: whatever frame arrives goes back
        // unchanged, preserving its length prefix.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                thread::spawn(move || {
                    let mut buf = [0u8; 4096];
                    loop {
                        match stream.read(&mut buf) {
                            Ok(0) | Err(_) => return,
                            Ok(k) => {
                                if stream.write_all(&buf[..k]).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });
        let pool = UpstreamPool::new(
            addr,
            UPSTREAM_CONN_BASE,
            shim(),
            Duration::from_secs(1),
            Duration::from_secs(1),
            4,
        );
        let mut conn = pool.checkout().unwrap();
        // Payload contains a newline and a MAGIC byte: the sniffing
        // reader must still frame by the length prefix alone.
        let payload = [0x03, b'\n', MAGIC, 0x00];
        let mut frame = vec![MAGIC];
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert_eq!(
            conn.call(&frame, Duration::from_secs(1)).unwrap(),
            frame,
            "binary reply must come back framing-intact"
        );
        // And a corrupt declared length kills the exchange cleanly.
        let mut corrupt = vec![MAGIC];
        corrupt.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = conn.call(&corrupt, Duration::from_secs(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(!conn.has_partial(), "corrupt stream must not stay buffered");
    }

    #[test]
    fn checkout_fails_fast_on_a_dead_address() {
        // Bind-then-drop reserves a port with no listener behind it.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let pool = UpstreamPool::new(
            addr,
            UPSTREAM_CONN_BASE,
            shim(),
            Duration::from_millis(200),
            Duration::from_secs(1),
            4,
        );
        assert!(pool.checkout().is_err());
    }

    #[test]
    fn poisoned_idle_lock_recovers_instead_of_cascading() {
        let addr = echo_server(None, Duration::ZERO);
        let pool = Arc::new(UpstreamPool::new(
            addr,
            UPSTREAM_CONN_BASE,
            shim(),
            Duration::from_secs(1),
            Duration::from_secs(1),
            4,
        ));
        let mut conn = pool.checkout().unwrap();
        assert_eq!(
            conn.call(&line("a"), Duration::from_secs(1)).unwrap(),
            line("ok:a")
        );
        pool.publish(conn);
        assert_eq!(pool.idle_count(), 1);
        // Poison the lock: a panic on a thread that holds the guard.
        let poisoner = Arc::clone(&pool);
        let _ = thread::spawn(move || {
            let _guard = poisoner.idle.lock().unwrap();
            panic!("poison the idle lock");
        })
        .join();
        assert!(
            pool.idle.is_poisoned(),
            "the lock must actually be poisoned"
        );
        // Every pool entry point recovers: the half-updated idle list is
        // cleared once, then normal service resumes.
        assert_eq!(pool.idle_count(), 0, "recovery clears the idle list");
        let (mut fresh, reused) = pool.checkout_tracked().unwrap();
        assert!(!reused, "post-poison checkout dials fresh");
        assert_eq!(
            fresh.call(&line("b"), Duration::from_secs(1)).unwrap(),
            line("ok:b")
        );
        pool.publish(fresh);
        assert_eq!(pool.idle_count(), 1, "publish works after recovery");
        pool.clear();
    }
}
