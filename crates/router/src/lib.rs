//! # gb-router — a cross-process routing tier for `gb-serve` fleets
//!
//! The paper's BA recursion splits the processor range `[i, j]`
//! proportionally to load and recurses; PR 5 did that *inside* one
//! process with sharded backends. This crate lifts the same structure
//! across processes: a thin TCP tier that owns the consistent-hash
//! vnode ring ([`gb_service::route`]) and proxies the existing
//! newline-delimited-JSON protocol, unchanged, to N upstream `gb-serve`
//! processes over pooled persistent connections. Each request frame is
//! parsed exactly once — to validate it and extract the routing key
//! (the same [`CacheKey::mix`](gb_service::cache::CacheKey::mix)
//! fingerprint the upstreams shard by) — and the original bytes are
//! forwarded verbatim.
//!
//! What the tier adds on top of plain proxying:
//!
//! * **Health checks** — a prober thread pings every upstream each
//!   `health_interval`, and the data path counts consecutive failures
//!   per upstream; `fail_threshold` of either kind declares it dead
//!   ([`server`]).
//! * **Monotone vnode failover** — a dead upstream's vnode arcs re-home
//!   onto survivors via [`FailoverRing`](gb_service::route::FailoverRing);
//!   survivors' assignments never move, and recovery restores the exact
//!   pre-death mapping, so a bounced backend gets its keys (and its
//!   warm cache) back.
//! * **Hedged retries** — if the owning upstream has not replied within
//!   `hedge_delay`, the router races a second attempt on the backend
//!   that would own the key if the primary were dead, takes the first
//!   answer, and correlates replies by request id (`hedges_sent` /
//!   `hedges_won` counters).
//! * **Self-balancing placement** — with [`RouterConfig::rebalance`]
//!   set, a tick thread measures per-vnode load at the proxy point and
//!   periodically re-partitions the vnode set across alive upstreams
//!   with HF ([`gb_rebal`]), swapping the ring's explicit assignment
//!   atomically between requests; hysteresis (imbalance trigger +
//!   per-tick move budget) keeps cache-cold churn bounded.
//! * **Stats rollup** — the router's own `stats` op aggregates
//!   per-upstream depth, in-flight count, latency histogram and health,
//!   plus the max/mean load-imbalance gauge across alive upstreams.
//!
//! Upstream-side sockets run through the same [`IoShim`]
//! (gb_service::fault::IoShim) seam as the server's, so the chaos suite
//! scripts router-to-upstream faults with the same vocabulary.
//!
//! ```no_run
//! use gb_router::{RouterConfig, RouterServer};
//!
//! let config = RouterConfig {
//!     upstreams: vec!["127.0.0.1:7001".parse().unwrap(),
//!                     "127.0.0.1:7002".parse().unwrap()],
//!     ..RouterConfig::default()
//! };
//! let router = RouterServer::start(config)?;
//! println!("routing on {}", router.local_addr());
//! router.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod server;

pub use gb_rebal::{RebalanceSettings, RebalanceSnapshot};
pub use pool::{PooledConn, UpstreamPool, UPSTREAM_CONN_BASE};
pub use server::{RouterConfig, RouterServer};
