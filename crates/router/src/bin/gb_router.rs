//! `gb-router` — run the cross-process routing tier.
//!
//! ```text
//! gb-router --upstream HOST:PORT [--upstream HOST:PORT ...]
//!           [--addr HOST:PORT] [--vnodes V] [--hedge-ms MS]
//!           [--reply-timeout-ms MS] [--connect-timeout-ms MS]
//!           [--health-interval-ms MS] [--probe-timeout-ms MS]
//!           [--fail-threshold K] [--poll-interval-ms MS]
//!           [--pool-idle N] [--no-forward-shutdown]
//!           [--rebalance-ms MS] [--rebalance-trigger R]
//!           [--rebalance-budget B] [--wait-upstreams-ms MS]
//! ```
//!
//! Prints the bound address on stdout (useful with `--addr
//! 127.0.0.1:0`) and routes until a client sends a `shutdown` frame —
//! which, unless `--no-forward-shutdown`, is forwarded to every alive
//! upstream so one frame stops the whole fleet.
//!
//! `--rebalance-ms MS` turns on self-balancing vnode placement: a tick
//! thread re-partitions the ring's vnodes across alive upstreams with
//! HF over the load the router itself observed, swapping assignments
//! atomically between requests. `--rebalance-trigger R` (default 1.15)
//! and `--rebalance-budget B` (default 16) bound when and how much a
//! tick may move.
//!
//! `--wait-upstreams-ms MS` blocks startup until every upstream answers
//! a connect (with capped exponential backoff between attempts), so a
//! launcher can start the fleet and the router in one shot without
//! ordering races.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use gb_router::{RebalanceSettings, RouterConfig, RouterServer};
use gb_service::client::{Backoff, Client};

fn usage() -> ! {
    eprintln!(
        "usage: gb-router --upstream HOST:PORT [--upstream HOST:PORT ...] \
         [--addr HOST:PORT] [--vnodes V] [--hedge-ms MS] \
         [--reply-timeout-ms MS] [--connect-timeout-ms MS] \
         [--health-interval-ms MS] [--probe-timeout-ms MS] \
         [--fail-threshold K] [--poll-interval-ms MS] [--pool-idle N] \
         [--no-forward-shutdown] [--rebalance-ms MS] [--rebalance-trigger R] \
         [--rebalance-budget B] [--wait-upstreams-ms MS]"
    );
    std::process::exit(2);
}

fn parse_usize(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects an integer, got {text:?}");
        usage()
    })
}

fn parse_addr(text: &str, flag: &str) -> SocketAddr {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects HOST:PORT, got {text:?}");
        usage()
    })
}

fn parse_args() -> (RouterConfig, Duration) {
    let mut config = RouterConfig {
        addr: "127.0.0.1:7130".into(),
        ..RouterConfig::default()
    };
    let mut wait_upstreams = Duration::ZERO;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--upstream" => config
                .upstreams
                .push(parse_addr(&value("--upstream"), "--upstream")),
            "--upstreams" => {
                // Comma-separated convenience form.
                for part in value("--upstreams").split(',') {
                    let part = part.trim();
                    if !part.is_empty() {
                        config.upstreams.push(parse_addr(part, "--upstreams"));
                    }
                }
            }
            "--vnodes" => config.vnodes = parse_usize(&value("--vnodes"), "--vnodes"),
            "--hedge-ms" => {
                let ms = parse_usize(&value("--hedge-ms"), "--hedge-ms") as u64;
                config.hedge_delay = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--reply-timeout-ms" => {
                config.reply_timeout = Duration::from_millis(parse_usize(
                    &value("--reply-timeout-ms"),
                    "--reply-timeout-ms",
                ) as u64)
            }
            "--connect-timeout-ms" => {
                config.connect_timeout = Duration::from_millis(parse_usize(
                    &value("--connect-timeout-ms"),
                    "--connect-timeout-ms",
                ) as u64)
            }
            "--health-interval-ms" => {
                config.health_interval = Duration::from_millis(parse_usize(
                    &value("--health-interval-ms"),
                    "--health-interval-ms",
                ) as u64)
            }
            "--probe-timeout-ms" => {
                config.probe_timeout = Duration::from_millis(parse_usize(
                    &value("--probe-timeout-ms"),
                    "--probe-timeout-ms",
                ) as u64)
            }
            "--fail-threshold" => {
                config.fail_threshold =
                    parse_usize(&value("--fail-threshold"), "--fail-threshold").max(1) as u32
            }
            "--poll-interval-ms" => {
                config.poll_interval = Duration::from_millis(parse_usize(
                    &value("--poll-interval-ms"),
                    "--poll-interval-ms",
                ) as u64)
            }
            "--pool-idle" => {
                config.max_pool_idle = parse_usize(&value("--pool-idle"), "--pool-idle")
            }
            "--no-forward-shutdown" => config.forward_shutdown = false,
            "--rebalance-ms" => {
                let ms = parse_usize(&value("--rebalance-ms"), "--rebalance-ms") as u64;
                config
                    .rebalance
                    .get_or_insert_with(RebalanceSettings::default)
                    .interval = Duration::from_millis(ms.max(1));
            }
            "--rebalance-trigger" => {
                let text = value("--rebalance-trigger");
                let trigger: f64 = text.parse().unwrap_or_else(|_| {
                    eprintln!("--rebalance-trigger expects a number, got {text:?}");
                    usage()
                });
                match &mut config.rebalance {
                    Some(rebalance) => rebalance.trigger = trigger.max(1.0),
                    None => {
                        eprintln!("--rebalance-trigger requires --rebalance-ms first");
                        usage()
                    }
                }
            }
            "--rebalance-budget" => {
                let budget = parse_usize(&value("--rebalance-budget"), "--rebalance-budget");
                match &mut config.rebalance {
                    Some(rebalance) => rebalance.move_budget = budget,
                    None => {
                        eprintln!("--rebalance-budget requires --rebalance-ms first");
                        usage()
                    }
                }
            }
            "--wait-upstreams-ms" => {
                wait_upstreams = Duration::from_millis(parse_usize(
                    &value("--wait-upstreams-ms"),
                    "--wait-upstreams-ms",
                ) as u64)
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if config.upstreams.is_empty() {
        eprintln!("gb-router: at least one --upstream is required");
        usage()
    }
    (config, wait_upstreams)
}

fn main() -> ExitCode {
    let (config, wait_upstreams) = parse_args();
    if !wait_upstreams.is_zero() {
        for (i, &addr) in config.upstreams.iter().enumerate() {
            let mut backoff = Backoff::with_seed(i as u64);
            if let Err(e) = Client::connect_retry(
                addr,
                Some(config.probe_timeout),
                Some(config.probe_timeout),
                wait_upstreams,
                &mut backoff,
            ) {
                eprintln!("gb-router: upstream {i} ({addr}) never came up: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let upstream_count = config.upstreams.len();
    let hedge = config.hedge_delay;
    let mut router = match RouterServer::start(config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gb-router: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "gb-router listening on {} -> {} upstreams (hedge {})",
        router.local_addr(),
        upstream_count,
        match hedge {
            Some(d) => format!("{}ms", d.as_millis()),
            None => "off".into(),
        }
    );
    // Route until a client sends a `shutdown` frame; join() drains the
    // accept loop, every handler and the prober before returning.
    router.join();
    println!("gb-router: drained and stopped");
    ExitCode::SUCCESS
}
