//! End-to-end router tests against in-process `gb-service` upstreams:
//! proxy round trips, stats rollup, failover + recovery re-homing, and
//! hedged tail-latency retries against a deliberately stalled upstream.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gb_router::{RebalanceSettings, RouterConfig, RouterServer};
use gb_service::cache::CacheKey;
use gb_service::fault::ScriptedShim;
use gb_service::proto::{Algorithm, BalanceRequest, Json, Request, Response};
use gb_service::route::Router;
use gb_service::server::{Server, ServerConfig, Tuning};
use gb_service::spec::ProblemSpec;
use gb_service::Client;

const VNODES: usize = 32;

fn spec(seed: u64) -> ProblemSpec {
    ProblemSpec::Synthetic {
        weight: 1.0,
        lo: 0.25,
        hi: 0.5,
        seed,
    }
}

fn balance(id: u64, seed: u64) -> Request {
    Request::Balance(BalanceRequest {
        id: Some(id),
        algorithm: Algorithm::Hf,
        n: 8,
        theta: 1.0,
        deadline_ms: None,
        want_pieces: false,
        problem: spec(seed),
    })
}

/// The routing key the router derives for [`balance`]`(_, seed)`.
fn key_for(seed: u64) -> u64 {
    CacheKey::new(spec(seed).fingerprint(), Algorithm::Hf, 8, 1.0).mix()
}

/// Seeds whose keys the full 2-upstream ring assigns to `owner`.
fn seeds_owned_by(owner: u32, count: usize) -> Vec<u64> {
    let ring = Router::new(2, VNODES);
    (0u64..)
        .filter(|&s| ring.route(key_for(s)) == owner)
        .take(count)
        .collect()
}

fn start_upstream(addr: &str) -> Server {
    Server::start(ServerConfig {
        addr: addr.into(),
        workers: 2,
        pool_threads: 2,
        ..ServerConfig::default()
    })
    .expect("upstream start")
}

fn start_stalled_upstream(stall: Duration) -> Server {
    let shim = ScriptedShim::new();
    shim.stall_workers(stall);
    Server::start_tuned(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            pool_threads: 2,
            ..ServerConfig::default()
        },
        Tuning {
            shim: Arc::new(shim),
            ..Tuning::default()
        },
    )
    .expect("stalled upstream start")
}

fn router_over(upstreams: &[&Server], tweak: impl FnOnce(&mut RouterConfig)) -> RouterServer {
    let mut config = RouterConfig {
        upstreams: upstreams.iter().map(|s| s.local_addr()).collect(),
        vnodes: VNODES,
        health_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(250),
        fail_threshold: 2,
        reply_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(20),
        ..RouterConfig::default()
    };
    tweak(&mut config);
    RouterServer::start(config).expect("router start")
}

fn expect_ok(resp: Response, id: u64) {
    match resp {
        Response::Ok(ok) => assert_eq!(ok.id, Some(id), "reply correlated to the wrong request"),
        other => panic!("expected ok for id {id}, got {other:?}"),
    }
}

fn await_alive(router: &RouterServer, want: &[u32], budget: Duration) {
    let deadline = Instant::now() + budget;
    loop {
        if router.alive_ids() == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "alive set never became {want:?}, still {:?}",
            router.alive_ids()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn proxies_the_protocol_unchanged_and_rolls_up_stats() {
    let a = start_upstream("127.0.0.1:0");
    let b = start_upstream("127.0.0.1:0");
    let router = router_over(&[&a, &b], |_| {});
    let mut client = Client::connect(router.local_addr()).unwrap();

    assert!(matches!(
        client.call(&Request::Ping).unwrap(),
        Response::Pong
    ));
    for (i, seed) in (0u64..40).enumerate() {
        expect_ok(client.call(&balance(i as u64, seed)).unwrap(), i as u64);
    }
    // A second pass hits the upstreams' caches through the same router
    // path (same key → same upstream, by construction).
    for (i, seed) in (0u64..40).enumerate() {
        expect_ok(client.call(&balance(i as u64, seed)).unwrap(), i as u64);
    }

    let stats = match client.call(&Request::Stats).unwrap() {
        Response::Stats(stats) => stats,
        other => panic!("expected stats, got {other:?}"),
    };
    let r = stats.get("router").expect("router section");
    assert_eq!(r.get("upstream_count").unwrap().as_u64(), Some(2));
    assert_eq!(r.get("alive").unwrap().as_u64(), Some(2));
    assert_eq!(r.get("proxied").unwrap().as_u64(), Some(80));
    let imbalance = r.get("imbalance").expect("imbalance gauge");
    assert!(imbalance.get("max").is_some());
    assert!(imbalance.get("mean").is_some());
    assert!(imbalance.get("ratio").is_some());
    match stats.get("upstreams") {
        Some(Json::Arr(list)) => {
            assert_eq!(list.len(), 2);
            let requests: u64 = list
                .iter()
                .map(|u| u.get("requests").and_then(|v| v.as_u64()).unwrap())
                .sum();
            assert!(requests >= 80, "both upstreams must have carried traffic");
            for u in list {
                assert_eq!(u.get("alive").and_then(Json::as_bool), Some(true));
                assert!(u.get("latency").is_some());
            }
        }
        other => panic!("expected upstreams array, got {other:?}"),
    }

    // Malformed frames are answered locally, not proxied.
    match client.call_raw("{not json").unwrap() {
        Response::Error { code, .. } => {
            assert_eq!(code, gb_service::proto::ErrorCode::BadRequest)
        }
        other => panic!("expected bad_request, got {other:?}"),
    }

    router.shutdown();
    a.shutdown();
    b.shutdown();
}

#[test]
fn failover_rehomes_and_recovery_rehomes_back() {
    let a = start_upstream("127.0.0.1:0");
    let b = start_upstream("127.0.0.1:0");
    let b_addr = b.local_addr();
    let router = router_over(&[&a, &b], |c| c.forward_shutdown = false);
    let mut client = Client::connect(router.local_addr()).unwrap();

    let b_seeds = seeds_owned_by(1, 12);
    for (i, &seed) in b_seeds.iter().enumerate() {
        expect_ok(client.call(&balance(i as u64, seed)).unwrap(), i as u64);
    }

    // Kill B. New requests for B's keys must still succeed (in-request
    // failover retries on A), and the prober must re-home B's vnodes
    // within the health-check interval.
    b.shutdown();
    for (i, &seed) in b_seeds.iter().enumerate() {
        let id = 100 + i as u64;
        expect_ok(client.call(&balance(id, seed + 1_000_000)).unwrap(), id);
    }
    await_alive(&router, &[0], Duration::from_secs(5));
    let (failovers, _) = router.failover_counters();
    assert!(failovers >= 1);

    // Revive B on the exact same port: the prober must mark it alive
    // and the ring must restore the pre-death mapping.
    let b2 = start_upstream(&b_addr.to_string());
    await_alive(&router, &[0, 1], Duration::from_secs(5));
    let (_, recoveries) = router.failover_counters();
    assert!(recoveries >= 1);
    for (i, &seed) in b_seeds.iter().enumerate() {
        let id = 200 + i as u64;
        expect_ok(client.call(&balance(id, seed + 2_000_000)).unwrap(), id);
    }

    router.shutdown();
    a.shutdown();
    b2.shutdown();
}

#[test]
fn hedging_caps_tail_latency_from_a_stalled_upstream() {
    let stall = Duration::from_millis(150);
    let a = start_stalled_upstream(stall);
    let b = start_upstream("127.0.0.1:0");
    let router = router_over(&[&a, &b], |c| {
        c.hedge_delay = Some(Duration::from_millis(15));
        // A slow upstream must stay alive for this scenario: probes are
        // control frames and skip the stalled worker path anyway.
        c.fail_threshold = 50;
    });
    let mut client = Client::connect(router.local_addr()).unwrap();

    // Unique seeds owned by the stalled upstream, so every request is a
    // cache miss that would block ~150 ms without hedging.
    let seeds = seeds_owned_by(0, 6);
    for (i, &seed) in seeds.iter().enumerate() {
        let started = Instant::now();
        expect_ok(client.call(&balance(i as u64, seed)).unwrap(), i as u64);
        let elapsed = started.elapsed();
        assert!(
            elapsed < stall,
            "request {i} took {elapsed:?}; hedging should beat the {stall:?} stall"
        );
    }
    let (sent, won) = router.hedge_counters();
    assert!(sent >= seeds.len() as u64, "every request should hedge");
    assert!(won >= 1, "the clean upstream should win at least one race");

    router.shutdown();
    a.shutdown();
    b.shutdown();
}

#[test]
fn restarting_an_upstream_under_pooled_traffic_does_not_trip_failover() {
    let a = start_upstream("127.0.0.1:0");
    let a_addr = a.local_addr();
    let router = router_over(&[&a], |c| {
        // The sharpest possible threshold: a single charged failure
        // kills the upstream. The stale-idle retry must keep the
        // restart invisible even then. A long health interval keeps the
        // prober from racing the restart window.
        c.fail_threshold = 1;
        c.health_interval = Duration::from_secs(30);
        c.forward_shutdown = false;
    });
    let mut client = Client::connect(router.local_addr()).unwrap();

    // Pooled traffic: these exchanges park idle connections to A.
    for (i, seed) in (0u64..6).enumerate() {
        expect_ok(client.call(&balance(i as u64, seed)).unwrap(), i as u64);
    }

    // Restart A on the exact same port. Every pooled connection is now
    // stale: the upstream closed them when it went down.
    a.shutdown();
    let a2 = start_upstream(&a_addr.to_string());

    // Traffic resumes immediately. Each stale checkout must be retried
    // once on a fresh dial instead of being charged to the threshold.
    for (i, seed) in (0u64..6).enumerate() {
        let id = 100 + i as u64;
        expect_ok(client.call(&balance(id, seed + 500_000)).unwrap(), id);
    }
    assert_eq!(
        router.failover_counters(),
        (0, 0),
        "a restart must not trip failover"
    );
    assert_eq!(router.alive_ids(), vec![0]);
    assert!(
        router.stale_retry_count() >= 1,
        "at least one stale pooled conn should have been redialed"
    );

    router.shutdown();
    a2.shutdown();
}

#[test]
fn binary_frames_proxy_through_the_router_unchanged() {
    let a = start_upstream("127.0.0.1:0");
    let b = start_upstream("127.0.0.1:0");
    let router = router_over(&[&a, &b], |_| {});
    let mut client = Client::connect(router.local_addr()).unwrap();
    client.set_codec(gb_service::proto::WireCodec::Binary);

    assert!(matches!(
        client.call(&Request::Ping).unwrap(),
        Response::Pong
    ));
    // Cold pass then hot pass: the second must come back cached, which
    // proves the binary reply bytes round-trip the relay intact.
    for (i, seed) in (0u64..20).enumerate() {
        match client.call(&balance(i as u64, seed)).unwrap() {
            Response::Ok(ok) => {
                assert_eq!(ok.id, Some(i as u64));
                assert!(!ok.cached, "first pass must miss");
            }
            other => panic!("expected ok, got {other:?}"),
        }
    }
    for (i, seed) in (0u64..20).enumerate() {
        match client.call(&balance(i as u64, seed)).unwrap() {
            Response::Ok(ok) => {
                assert_eq!(ok.id, Some(i as u64));
                assert!(ok.cached, "second pass must hit the upstream cache");
            }
            other => panic!("expected ok, got {other:?}"),
        }
    }
    // The same connection can drop back to JSON mid-stream; the stats
    // rollup arrives as a binary frame when asked in binary.
    let stats = match client.call(&Request::Stats).unwrap() {
        Response::Stats(stats) => stats,
        other => panic!("expected stats, got {other:?}"),
    };
    let r = stats.get("router").expect("router section");
    assert_eq!(r.get("proxied").unwrap().as_u64(), Some(40));
    client.set_codec(gb_service::proto::WireCodec::Json);
    assert!(matches!(
        client.call(&Request::Ping).unwrap(),
        Response::Pong
    ));

    router.shutdown();
    a.shutdown();
    b.shutdown();
}

#[test]
fn shutdown_frame_drains_router_and_forwards_to_upstreams() {
    let a = start_upstream("127.0.0.1:0");
    let b = start_upstream("127.0.0.1:0");
    let router = router_over(&[&a, &b], |_| {});
    let router_addr = router.local_addr();

    let mut client = Client::connect(router_addr).unwrap();
    expect_ok(client.call(&balance(1, 7)).unwrap(), 1);
    assert!(matches!(
        client.call(&Request::Shutdown).unwrap(),
        Response::Pong
    ));

    // The router drains...
    router.shutdown();
    // ...and the upstreams got the forwarded shutdown: join() only
    // returns once a server has fully stopped.
    a.join();
    b.join();
    assert!(
        Client::connect(router_addr).is_err()
            || Client::connect(router_addr)
                .and_then(|mut c| c.call(&Request::Ping))
                .is_err(),
        "router must stop accepting after drain"
    );
}

#[test]
fn rebalance_ticks_exclude_dead_upstreams_and_revival_restores_candidacy() {
    let a = start_upstream("127.0.0.1:0");
    let b = start_upstream("127.0.0.1:0");
    let b_addr = b.local_addr();
    let router = router_over(&[&a, &b], |c| {
        c.forward_shutdown = false;
        // trigger 1.0: every tick plans, so the loop is exercised even
        // under near-uniform load.
        c.rebalance = Some(RebalanceSettings {
            interval: Duration::from_millis(60),
            trigger: 1.0,
            move_budget: usize::MAX,
            decay: 0.5,
        });
    });
    let mut client = Client::connect(router.local_addr()).unwrap();

    // Skewed traffic: hammer a handful of keys so the tick loop sees a
    // lopsided vnode histogram worth acting on.
    for round in 0u64..4 {
        for seed in 0u64..6 {
            let id = round * 10 + seed;
            expect_ok(client.call(&balance(id, seed)).unwrap(), id);
        }
    }
    let tick_deadline = Instant::now() + Duration::from_secs(5);
    while router.rebalance_snapshot().ticks < 2 {
        assert!(
            Instant::now() < tick_deadline,
            "rebalance loop never ticked: {:?}",
            router.rebalance_snapshot()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Kill B mid-rebalance. Requests keep succeeding (per-request
    // fallback + prober re-homing), and once the prober declares B
    // dead, the next applied assignment must target A exclusively.
    b.shutdown();
    for seed in 0u64..6 {
        let id = 100 + seed;
        expect_ok(client.call(&balance(id, seed + 1_000_000)).unwrap(), id);
    }
    await_alive(&router, &[0], Duration::from_secs(5));
    let assign_deadline = Instant::now() + Duration::from_secs(5);
    loop {
        // Keep the load histogram moving so ticks have fresh deltas.
        expect_ok(client.call(&balance(999, 42)).unwrap(), 999);
        if let Some(owners) = router.assignment() {
            if router.alive_ids() == [0] && owners.iter().all(|&o| o == 0) {
                break;
            }
        }
        assert!(
            Instant::now() < assign_deadline,
            "assignment never drained off the dead upstream: {:?}",
            router.assignment()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Revive B on the same port: once alive again it must regain
    // vnodes — a later tick spreads the assignment back over both.
    let b2 = start_upstream(&b_addr.to_string());
    await_alive(&router, &[0, 1], Duration::from_secs(5));
    let spread_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        for seed in 0u64..6 {
            let id = 200 + seed;
            expect_ok(client.call(&balance(id, seed + 2_000_000)).unwrap(), id);
        }
        if let Some(owners) = router.assignment() {
            if owners.contains(&1) {
                break;
            }
        }
        assert!(
            Instant::now() < spread_deadline,
            "revived upstream never regained vnodes: {:?}",
            router.assignment()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let snap = router.rebalance_snapshot();
    assert!(snap.ticks >= 2, "tick loop wedged: {snap:?}");
    assert!(snap.version >= 1, "no assignment ever applied: {snap:?}");

    router.shutdown();
    a.shutdown();
    b2.shutdown();
}
