//! Multi-dimensional adaptive quadrature regions.
//!
//! The paper lists "multi-dimensional adaptive numerical quadrature" \[4\]
//! among the applications of bisection-based load balancing. We model the
//! work of integrating a region as the integral of a positive, separable
//! **work density** over the region: adaptive quadrature spends effort
//! where the integrand is large or ill-behaved, so the density plays the
//! role of a cost surface. Because every factor of the density has a
//! closed-form antiderivative, region weights are *analytic integrals* —
//! additive under splitting by construction (up to floating-point
//! rounding).
//!
//! A [`Region`] is an axis-aligned box; bisection halves the widest
//! dimension at its midpoint. The class has a provable α:
//! if `g_min`/`g_max` are the density extremes over the root box, every
//! midpoint split of every subregion gives each half at least
//! `g_min/(2·g_max)` of the weight ([`Integrand::alpha_bound`]), since
//! each half has exactly half the volume. The bound only tightens on
//! subregions, so it is a genuine class-level α in the sense of
//! Definition 1.

use std::sync::Arc;

use gb_core::problem::{AlphaBisectable, Bisectable};
use gb_core::rng::Xoshiro256StarStar;

/// Maximum number of dimensions supported (keeps [`Region`] `Copy`-cheap).
pub const MAX_DIMS: usize = 6;

/// One separable factor `g(x)` of a work density `Π_d g_d(x_d)`.
///
/// All factors are strictly positive on `[0, 1]` for valid parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Factor {
    /// `g(x) = exp(c·x)` — exponential concentration towards one face.
    Exp {
        /// Growth rate.
        c: f64,
    },
    /// `g(x) = 1 / ((x − peak)² + s²)` — a peak at `peak` of sharpness `1/s`.
    Peak {
        /// Peak location.
        peak: f64,
        /// Peak width (must be positive).
        s: f64,
    },
    /// `g(x) = 1 + b·sin(ω·x + φ)` — oscillatory density, `|b| < 1`.
    Oscillatory {
        /// Amplitude, `|b| < 1` keeps the density positive.
        b: f64,
        /// Angular frequency.
        omega: f64,
        /// Phase.
        phi: f64,
    },
    /// `g(x) = (x + a)^k` — polynomial growth, `a > 0`, `k ≥ 0`.
    Power {
        /// Offset (must be positive).
        a: f64,
        /// Exponent.
        k: i32,
    },
}

impl Factor {
    /// The exact integral `∫_lo^hi g(x) dx`.
    pub fn integral(&self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        match *self {
            Factor::Exp { c } => {
                if c.abs() < 1e-12 {
                    hi - lo
                } else {
                    ((c * hi).exp() - (c * lo).exp()) / c
                }
            }
            Factor::Peak { peak, s } => (((hi - peak) / s).atan() - ((lo - peak) / s).atan()) / s,
            Factor::Oscillatory { b, omega, phi } => {
                if omega.abs() < 1e-12 {
                    (hi - lo) * (1.0 + b * phi.sin())
                } else {
                    (hi - lo) - (b / omega) * ((omega * hi + phi).cos() - (omega * lo + phi).cos())
                }
            }
            Factor::Power { a, k } => {
                let kk = k as f64 + 1.0;
                ((hi + a).powi(k + 1) - (lo + a).powi(k + 1)) / kk
            }
        }
    }

    /// The pointwise value `g(x)`.
    pub fn value(&self, x: f64) -> f64 {
        match *self {
            Factor::Exp { c } => (c * x).exp(),
            Factor::Peak { peak, s } => 1.0 / ((x - peak).powi(2) + s * s),
            Factor::Oscillatory { b, omega, phi } => 1.0 + b * (omega * x + phi).sin(),
            Factor::Power { a, k } => (x + a).powi(k),
        }
    }

    /// Bounds `(min, max)` of `g` over `[lo, hi]`.
    pub fn min_max(&self, lo: f64, hi: f64) -> (f64, f64) {
        match *self {
            Factor::Exp { .. } | Factor::Power { .. } => {
                // Monotone: extremes at the endpoints.
                let a = self.value(lo);
                let b = self.value(hi);
                (a.min(b), a.max(b))
            }
            Factor::Peak { peak, s: _ } => {
                let mut min = self.value(lo).min(self.value(hi));
                let mut max = self.value(lo).max(self.value(hi));
                if (lo..=hi).contains(&peak) {
                    max = max.max(self.value(peak));
                }
                // Minimum of a unimodal peak is at an endpoint.
                min = min.min(self.value(lo)).min(self.value(hi));
                (min, max)
            }
            Factor::Oscillatory { b, omega, phi } => {
                let mut min = self.value(lo).min(self.value(hi));
                let mut max = self.value(lo).max(self.value(hi));
                if omega.abs() > 1e-12 {
                    // Interior extrema where sin(ωx+φ) = ±1.
                    let half_pi = std::f64::consts::FRAC_PI_2;
                    let k_lo = ((omega * lo + phi - half_pi) / std::f64::consts::PI).ceil() as i64;
                    let k_hi = ((omega * hi + phi - half_pi) / std::f64::consts::PI).floor() as i64;
                    if k_hi >= k_lo {
                        // Both +1 and −1 are attained if at least two
                        // critical points fall inside; otherwise one of them.
                        for k in k_lo..=k_hi.min(k_lo + 1) {
                            let x = (half_pi + k as f64 * std::f64::consts::PI - phi) / omega;
                            let v = self.value(x);
                            min = min.min(v);
                            max = max.max(v);
                        }
                    }
                } else {
                    let v = 1.0 + b * phi.sin();
                    min = min.min(v);
                    max = max.max(v);
                }
                (min, max)
            }
        }
    }

    /// Validates that the factor is strictly positive on `[0, 1]`.
    fn validate(&self) {
        match *self {
            Factor::Exp { c } => assert!(c.is_finite(), "Exp c must be finite"),
            Factor::Peak { peak, s } => {
                assert!(s.is_finite() && s > 0.0, "Peak s must be positive");
                assert!(peak.is_finite());
            }
            Factor::Oscillatory { b, omega, phi } => {
                assert!(b.abs() < 1.0, "Oscillatory needs |b| < 1, got {b}");
                assert!(omega.is_finite() && phi.is_finite());
            }
            Factor::Power { a, k } => {
                assert!(a > 0.0 && a.is_finite(), "Power a must be positive");
                assert!(k >= 0, "Power k must be non-negative");
            }
        }
    }
}

/// A separable positive work density `Π_d g_d(x_d)` over `[0, 1]^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct Integrand {
    factors: Vec<Factor>,
}

impl Integrand {
    /// Creates an integrand from one factor per dimension.
    ///
    /// # Panics
    /// Panics if there are no factors, more than [`MAX_DIMS`], or a factor
    /// has invalid parameters.
    pub fn new(factors: Vec<Factor>) -> Arc<Self> {
        assert!(
            !factors.is_empty() && factors.len() <= MAX_DIMS,
            "need 1..={MAX_DIMS} factors"
        );
        for f in &factors {
            f.validate();
        }
        Arc::new(Self { factors })
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.factors.len()
    }

    /// Genz-style "Gaussian peak": a sharp peak at a random interior point
    /// in each dimension.
    pub fn gaussian_peak(dims: usize, sharpness: f64, seed: u64) -> Arc<Self> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        Self::new(
            (0..dims)
                .map(|_| Factor::Peak {
                    peak: rng.range_f64(0.2, 0.8),
                    s: sharpness,
                })
                .collect(),
        )
    }

    /// Genz-style "corner peak": density concentrated at the origin corner.
    pub fn corner_peak(dims: usize, strength: f64) -> Arc<Self> {
        Self::new((0..dims).map(|_| Factor::Exp { c: -strength }).collect())
    }

    /// Genz-style "oscillatory": positive oscillation in every dimension.
    pub fn oscillatory(dims: usize, seed: u64) -> Arc<Self> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        Self::new(
            (0..dims)
                .map(|_| Factor::Oscillatory {
                    b: rng.range_f64(0.3, 0.8),
                    omega: rng.range_f64(4.0, 12.0),
                    phi: rng.range_f64(0.0, std::f64::consts::TAU),
                })
                .collect(),
        )
    }

    /// The class α on a given box: `g_min / (2·g_max)` where `g_min`,
    /// `g_max` bound the density over the box (see module docs). Clamped
    /// to `(0, 1/2]`.
    pub fn alpha_bound(&self, lo: &[f64], hi: &[f64]) -> f64 {
        let mut gmin = 1.0f64;
        let mut gmax = 1.0f64;
        for (d, f) in self.factors.iter().enumerate() {
            let (mn, mx) = f.min_max(lo[d], hi[d]);
            gmin *= mn;
            gmax *= mx;
        }
        (gmin / (2.0 * gmax)).min(0.5)
    }

    /// Wraps the unit box `[0, 1]^d` into the root problem, atomic below
    /// width `min_width`.
    pub fn unit_region(self: &Arc<Self>, min_width: f64) -> Region {
        let d = self.dims();
        let mut lo = [0.0; MAX_DIMS];
        let mut hi = [0.0; MAX_DIMS];
        for i in 0..d {
            lo[i] = 0.0;
            hi[i] = 1.0;
        }
        let alpha = self.alpha_bound(&lo[..d], &hi[..d]);
        Region {
            integrand: Arc::clone(self),
            lo,
            hi,
            alpha,
            min_width,
        }
    }
}

/// An axis-aligned box with an attached work density; the problem type of
/// the quadrature class.
#[derive(Debug, Clone)]
pub struct Region {
    integrand: Arc<Integrand>,
    lo: [f64; MAX_DIMS],
    hi: [f64; MAX_DIMS],
    /// Class α, computed once on the root box (valid for all subregions).
    alpha: f64,
    min_width: f64,
}

impl Region {
    /// The box bounds of dimension `d`.
    pub fn bounds(&self, d: usize) -> (f64, f64) {
        assert!(d < self.integrand.dims());
        (self.lo[d], self.hi[d])
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.integrand.dims()
    }

    /// The dimension the next bisection will split (widest; ties lowest).
    pub fn widest_dim(&self) -> usize {
        let d = self.integrand.dims();
        let mut best = 0;
        let mut best_w = self.hi[0] - self.lo[0];
        for i in 1..d {
            let w = self.hi[i] - self.lo[i];
            if w > best_w {
                best_w = w;
                best = i;
            }
        }
        best
    }

    /// Volume of the box.
    pub fn volume(&self) -> f64 {
        (0..self.dims()).map(|d| self.hi[d] - self.lo[d]).product()
    }
}

impl PartialEq for Region {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.integrand, &other.integrand) && self.lo == other.lo && self.hi == other.hi
    }
}

impl Bisectable for Region {
    fn weight(&self) -> f64 {
        let mut w = 1.0;
        for (d, f) in self.integrand.factors.iter().enumerate() {
            w *= f.integral(self.lo[d], self.hi[d]);
        }
        w
    }

    fn bisect(&self) -> (Self, Self) {
        debug_assert!(self.can_bisect());
        let d = self.widest_dim();
        let mid = 0.5 * (self.lo[d] + self.hi[d]);
        let mut a = self.clone();
        let mut b = self.clone();
        a.hi[d] = mid;
        b.lo[d] = mid;
        (a, b)
    }

    fn can_bisect(&self) -> bool {
        let d = self.widest_dim();
        self.hi[d] - self.lo[d] > self.min_width
    }
}

impl AlphaBisectable for Region {
    fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_core::bounds::hf_upper_bound;
    use gb_core::hf::{hf, hf_traced};
    use gb_core::problem::validate_bisection;

    fn numeric_integral(f: &Factor, lo: f64, hi: f64) -> f64 {
        // Simpson's rule with many panels, for cross-checking.
        let n = 4000;
        let h = (hi - lo) / n as f64;
        let mut s = f.value(lo) + f.value(hi);
        for i in 1..n {
            let x = lo + i as f64 * h;
            s += if i % 2 == 1 { 4.0 } else { 2.0 } * f.value(x);
        }
        s * h / 3.0
    }

    #[test]
    fn factor_integrals_match_numeric() {
        let factors = [
            Factor::Exp { c: 2.5 },
            Factor::Exp { c: -1.0 },
            Factor::Exp { c: 0.0 },
            Factor::Peak { peak: 0.3, s: 0.05 },
            Factor::Oscillatory {
                b: 0.7,
                omega: 9.0,
                phi: 1.0,
            },
            Factor::Power { a: 0.5, k: 3 },
        ];
        for f in &factors {
            let exact = f.integral(0.1, 0.9);
            let approx = numeric_integral(f, 0.1, 0.9);
            assert!(
                (exact - approx).abs() < 1e-6 * exact.abs().max(1.0),
                "{f:?}: exact {exact} vs numeric {approx}"
            );
        }
    }

    #[test]
    fn factor_min_max_brackets_samples() {
        let factors = [
            Factor::Exp { c: 3.0 },
            Factor::Peak { peak: 0.5, s: 0.1 },
            Factor::Oscillatory {
                b: 0.6,
                omega: 15.0,
                phi: 0.3,
            },
            Factor::Power { a: 0.2, k: 4 },
        ];
        for f in &factors {
            let (lo, hi) = (0.05, 0.95);
            let (mn, mx) = f.min_max(lo, hi);
            assert!(mn > 0.0, "{f:?} density must be positive");
            for i in 0..=400 {
                let x = lo + (hi - lo) * i as f64 / 400.0;
                let v = f.value(x);
                assert!(
                    v >= mn - 1e-9 && v <= mx + 1e-9,
                    "{f:?} at {x}: {v} outside [{mn}, {mx}]"
                );
            }
        }
    }

    #[test]
    fn region_bisection_conserves_weight() {
        let integrand = Integrand::gaussian_peak(3, 0.1, 5);
        let r = integrand.unit_region(1e-6);
        let (a, b) = r.bisect();
        assert!(
            (a.weight() + b.weight() - r.weight()).abs() < 1e-9 * r.weight(),
            "weight not conserved"
        );
    }

    #[test]
    fn region_splits_widest_dimension() {
        let integrand = Integrand::corner_peak(2, 1.0);
        let r = integrand.unit_region(1e-6);
        let (a, _) = r.bisect(); // square: ties → dim 0
        assert_eq!(a.bounds(0), (0.0, 0.5));
        assert_eq!(a.bounds(1), (0.0, 1.0));
        let (aa, _) = a.bisect(); // now dim 1 is widest
        assert_eq!(aa.bounds(1), (0.0, 0.5));
    }

    #[test]
    fn alpha_bound_is_honoured_by_every_bisection() {
        for seed in 0..4 {
            let integrand = Integrand::gaussian_peak(2, 0.2, seed);
            let r = integrand.unit_region(1e-9);
            let alpha = r.alpha();
            assert!(alpha > 0.0 && alpha <= 0.5);
            let (_, tree) = hf_traced(r, 256);
            for (_, node) in tree.iter() {
                if let Some((l, rr)) = node.children {
                    validate_bisection(
                        node.weight,
                        tree.node(l).weight,
                        tree.node(rr).weight,
                        alpha,
                        1e-9,
                    )
                    .unwrap();
                }
            }
        }
    }

    #[test]
    fn hf_ratio_within_bound_for_quadrature() {
        let integrand = Integrand::oscillatory(3, 11);
        let r = integrand.unit_region(1e-9);
        let alpha = r.alpha();
        let part = hf(r, 64);
        assert_eq!(part.len(), 64);
        assert!(part.ratio() <= hf_upper_bound(alpha, 64) + 1e-9);
    }

    #[test]
    fn atomicity_respects_min_width() {
        let integrand = Integrand::corner_peak(1, 2.0);
        let r = integrand.unit_region(0.3);
        assert!(r.can_bisect()); // width 1.0 > 0.3
        let (a, _) = r.bisect(); // width 0.5
        assert!(a.can_bisect());
        let (aa, _) = a.bisect(); // width 0.25 ≤ 0.3
        assert!(!aa.can_bisect());
    }

    #[test]
    fn volume_halves_on_bisection() {
        let integrand = Integrand::gaussian_peak(4, 0.3, 2);
        let r = integrand.unit_region(1e-9);
        let (a, b) = r.bisect();
        assert!((a.volume() - 0.5).abs() < 1e-12);
        assert!((b.volume() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "|b| < 1")]
    fn oscillatory_rejects_large_amplitude() {
        Integrand::new(vec![Factor::Oscillatory {
            b: 1.5,
            omega: 1.0,
            phi: 0.0,
        }]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn factor_strategy() -> impl Strategy<Value = Factor> {
        prop_oneof![
            (-4.0f64..4.0).prop_map(|c| Factor::Exp { c }),
            ((-0.2f64..1.2), (0.02f64..0.5)).prop_map(|(peak, s)| Factor::Peak { peak, s }),
            (
                (-0.95f64..0.95),
                (0.1f64..20.0),
                (0.0..std::f64::consts::TAU)
            )
                .prop_map(|(b, omega, phi)| Factor::Oscillatory { b, omega, phi }),
            ((0.05f64..2.0), (0i32..5)).prop_map(|(a, k)| Factor::Power { a, k }),
        ]
    }

    proptest! {
        #[test]
        fn prop_integral_is_additive(
            f in factor_strategy(),
            lo in 0.0f64..0.5,
            span in 0.01f64..0.5,
            frac in 0.05f64..0.95,
        ) {
            let hi = lo + span;
            let mid = lo + frac * span;
            let whole = f.integral(lo, hi);
            let parts = f.integral(lo, mid) + f.integral(mid, hi);
            prop_assert!(
                (whole - parts).abs() <= 1e-9 * whole.abs().max(1.0),
                "{f:?}: {whole} vs {parts}"
            );
        }

        #[test]
        fn prop_integral_positive_and_bracketed_by_min_max(
            f in factor_strategy(),
            lo in 0.0f64..0.8,
            span in 0.05f64..0.2,
        ) {
            let hi = lo + span;
            let integral = f.integral(lo, hi);
            let (mn, mx) = f.min_max(lo, hi);
            prop_assert!(mn > 0.0, "{f:?}: min {mn}");
            prop_assert!(integral >= mn * span - 1e-9, "{f:?}");
            prop_assert!(integral <= mx * span + 1e-9, "{f:?}");
        }

        #[test]
        fn prop_region_bisection_conserves(
            dims in 1usize..4,
            seed in any::<u64>(),
        ) {
            let integrand = Integrand::gaussian_peak(dims, 0.2, seed);
            let root = integrand.unit_region(1e-9);
            let (a, b) = {
                use gb_core::problem::Bisectable;
                root.bisect()
            };
            use gb_core::problem::Bisectable;
            prop_assert!(
                (a.weight() + b.weight() - root.weight()).abs()
                    <= 1e-9 * root.weight()
            );
        }
    }
}
