//! # gb-problems — concrete problem classes with good bisectors
//!
//! The paper treats problems abstractly: anything with a positive weight
//! and an α-bisector. This crate supplies concrete classes, each honouring
//! the determinism contract of `gb_core::problem` (bisection is a pure
//! function of the problem value):
//!
//! * [`synthetic`] — **the paper's stochastic model** (§4): every bisection
//!   splits at a fraction `α̂ ~ U[l, u]`, i.i.d. across bisections. All
//!   tables and figures of the evaluation use this class.
//! * [`task_list`] — lists of weighted tasks split at a random pivot; the
//!   example the paper gives to motivate the uniform-`α̂` model.
//! * [`fe_tree`] — unbalanced binary FE-trees as produced by adaptive
//!   recursive substructuring in the authors' finite-element solver
//!   \[1, 6, 7\]; bisection = best edge cut.
//! * [`quadrature`] — hyper-rectangles with analytically integrable work
//!   densities, modelling multi-dimensional adaptive numerical quadrature
//!   \[4\]; bisection = midpoint split of the widest dimension.
//! * [`grid`] — 2-D load grids (domain decomposition / chip layout \[12\]);
//!   bisection = weighted median cut along the longer axis.
//! * [`search_tree`] — backtrack-search spaces (Karp–Zhang \[9\]); a
//!   bisection donates the best-splitting subtree to an idle processor.
//!
//! For classes whose α cannot be established analytically, [`empirical_alpha`]
//! measures the realised `α̂` of a run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fe_tree;
pub mod grid;
pub mod quadrature;
pub mod search_tree;
pub mod synthetic;
pub mod task_list;

pub use fe_tree::{FeTree, FeTreeProblem};
pub use grid::{Grid, GridProblem};
pub use quadrature::{Integrand, Region};
pub use search_tree::{SearchTree, SearchTreeProblem};
pub use synthetic::SyntheticProblem;
pub use task_list::{TaskList, TaskListProblem};

use gb_core::problem::Bisectable;

/// Measures the empirical bisection quality of a problem: runs `n − 1`
/// heaviest-first bisections and returns the worst realised split fraction
/// `min(w1, w2)/w` over all of them (`None` if nothing was bisectable).
///
/// This is the per-instance `α̂` that connects the concrete classes back to
/// the abstract α-bisector model.
pub fn empirical_alpha<P: Bisectable + Clone>(p: &P, n: usize) -> Option<f64> {
    let (_, tree) = gb_core::hf::hf_traced(p.clone(), n);
    tree.observed_alpha()
}
