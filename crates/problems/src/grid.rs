//! 2-D load grids: domain decomposition by recursive weighted median cuts.
//!
//! The paper cites "domain decomposition in the process of chip layout"
//! \[12\] as an application. We model a rectangular domain as a grid of
//! cells with positive loads. A **problem** is an axis-aligned
//! sub-rectangle; its **bisection** cuts along the longer side at the
//! grid line that splits the load as evenly as possible (the classic
//! recursive-coordinate-bisection / weighted median cut).
//!
//! Rectangle weights are answered in O(1) from a summed-area table, and a
//! cut line is located by binary search over the monotone cumulative load,
//! so a bisection costs `O(log(side length))`.

use std::sync::Arc;

use gb_core::problem::Bisectable;
use gb_core::rng::Xoshiro256StarStar;

/// An immutable load grid shared by all problems derived from it.
#[derive(Debug)]
pub struct Grid {
    rows: usize,
    cols: usize,
    /// Summed-area table: `sat[r][c]` = total load of cells `[0,r) × [0,c)`,
    /// flattened row-major with `cols + 1` columns.
    sat: Vec<f64>,
}

impl Grid {
    /// Builds a grid from row-major loads.
    ///
    /// # Panics
    /// Panics if the grid is empty, `loads.len() != rows*cols` or any load
    /// is not strictly positive and finite.
    pub fn new(rows: usize, cols: usize, loads: &[f64]) -> Arc<Self> {
        assert!(rows > 0 && cols > 0, "empty grid");
        assert_eq!(loads.len(), rows * cols, "loads size mismatch");
        let w = cols + 1;
        let mut sat = vec![0.0; (rows + 1) * w];
        for r in 0..rows {
            let mut row_acc = 0.0;
            for c in 0..cols {
                let load = loads[r * cols + c];
                assert!(load.is_finite() && load > 0.0, "invalid load {load}");
                row_acc += load;
                sat[(r + 1) * w + (c + 1)] = sat[r * w + (c + 1)] + row_acc;
            }
        }
        Arc::new(Self { rows, cols, sat })
    }

    /// A grid with loads uniform in `[0.5, 1.5)`.
    pub fn uniform(rows: usize, cols: usize, seed: u64) -> Arc<Self> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let loads: Vec<f64> = (0..rows * cols).map(|_| rng.range_f64(0.5, 1.5)).collect();
        Self::new(rows, cols, &loads)
    }

    /// A grid with a flat background plus `k` Gaussian load hotspots —
    /// the irregular domains that motivate dynamic load balancing.
    pub fn hotspots(rows: usize, cols: usize, k: usize, seed: u64) -> Arc<Self> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let spots: Vec<(f64, f64, f64, f64)> = (0..k)
            .map(|_| {
                (
                    rng.range_f64(0.0, rows as f64),
                    rng.range_f64(0.0, cols as f64),
                    rng.range_f64(5.0, 50.0), // amplitude
                    rng.range_f64(0.02, 0.15) * rows.max(cols) as f64, // radius
                )
            })
            .collect();
        let mut loads = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let mut v = 1.0;
                for &(sr, sc, amp, rad) in &spots {
                    let d2 = (r as f64 - sr).powi(2) + (c as f64 - sc).powi(2);
                    v += amp * (-d2 / (2.0 * rad * rad)).exp();
                }
                loads.push(v);
            }
        }
        Self::new(rows, cols, &loads)
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Load of the rectangle `[r0, r1) × [c0, c1)` in O(1).
    pub fn rect_load(&self, r0: usize, c0: usize, r1: usize, c1: usize) -> f64 {
        debug_assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        let w = self.cols + 1;
        self.sat[r1 * w + c1] - self.sat[r0 * w + c1] - self.sat[r1 * w + c0]
            + self.sat[r0 * w + c0]
    }

    /// Total load.
    pub fn total_load(&self) -> f64 {
        self.rect_load(0, 0, self.rows, self.cols)
    }

    /// Wraps the whole grid into the root problem.
    pub fn root_problem(self: &Arc<Self>) -> GridProblem {
        GridProblem {
            grid: Arc::clone(self),
            r0: 0,
            c0: 0,
            r1: self.rows,
            c1: self.cols,
        }
    }
}

/// An axis-aligned sub-rectangle of a [`Grid`]; the problem type of this
/// class.
#[derive(Debug, Clone)]
pub struct GridProblem {
    grid: Arc<Grid>,
    r0: usize,
    c0: usize,
    r1: usize,
    c1: usize,
}

impl GridProblem {
    /// The rectangle `(r0, c0, r1, c1)` (half-open).
    pub fn rect(&self) -> (usize, usize, usize, usize) {
        (self.r0, self.c0, self.r1, self.c1)
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        (self.r1 - self.r0) * (self.c1 - self.c0)
    }

    /// `true` if the next cut is horizontal (splitting rows).
    pub fn cuts_rows(&self) -> bool {
        self.r1 - self.r0 >= self.c1 - self.c0
    }

    /// Finds the interior split index `m ∈ (lo, hi)` for which the prefix
    /// load `prefix(m)` is closest to half the total, by binary search over
    /// the monotone prefix (ties: lower index).
    fn median_cut(lo: usize, hi: usize, prefix: impl Fn(usize) -> f64, half: f64) -> usize {
        debug_assert!(hi - lo >= 2);
        let (mut a, mut b) = (lo + 1, hi - 1);
        // Invariant: the optimum is in [a, b].
        while a < b {
            let m = (a + b) / 2;
            if prefix(m) < half {
                a = m + 1;
            } else {
                b = m;
            }
        }
        // `a` is the smallest index with prefix ≥ half (or hi−1); compare
        // with its predecessor.
        if a > lo + 1 && (prefix(a - 1) - half).abs() <= (prefix(a) - half).abs() {
            a - 1
        } else {
            a
        }
    }
}

impl PartialEq for GridProblem {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.grid, &other.grid) && self.rect() == other.rect()
    }
}

impl Bisectable for GridProblem {
    fn weight(&self) -> f64 {
        self.grid.rect_load(self.r0, self.c0, self.r1, self.c1)
    }

    fn bisect(&self) -> (Self, Self) {
        debug_assert!(self.can_bisect());
        let half = self.weight() / 2.0;
        let mut a = self.clone();
        let mut b = self.clone();
        if self.cuts_rows() {
            let m = Self::median_cut(
                self.r0,
                self.r1,
                |m| self.grid.rect_load(self.r0, self.c0, m, self.c1),
                half,
            );
            a.r1 = m;
            b.r0 = m;
        } else {
            let m = Self::median_cut(
                self.c0,
                self.c1,
                |m| self.grid.rect_load(self.r0, self.c0, self.r1, m),
                half,
            );
            a.c1 = m;
            b.c0 = m;
        }
        (a, b)
    }

    fn can_bisect(&self) -> bool {
        // Need at least two lines along the cut dimension.
        if self.cuts_rows() {
            self.r1 - self.r0 >= 2
        } else {
            self.c1 - self.c0 >= 2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::empirical_alpha;
    use gb_core::ba::ba;
    use gb_core::hf::hf;

    #[test]
    fn sat_answers_rect_loads() {
        // 2×3 grid:
        //   1 2 3
        //   4 5 6
        let g = Grid::new(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(g.total_load(), 21.0);
        assert_eq!(g.rect_load(0, 0, 1, 3), 6.0);
        assert_eq!(g.rect_load(1, 0, 2, 3), 15.0);
        assert_eq!(g.rect_load(0, 1, 2, 2), 7.0);
        assert_eq!(g.rect_load(1, 2, 2, 3), 6.0);
        assert_eq!(g.rect_load(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn bisection_conserves_load_and_tiles() {
        let g = Grid::uniform(64, 48, 3);
        let p = g.root_problem();
        let (a, b) = p.bisect();
        assert!((a.weight() + b.weight() - p.weight()).abs() < 1e-9 * p.weight());
        assert_eq!(a.cells() + b.cells(), p.cells());
        // 64 rows ≥ 48 cols: the cut splits rows.
        assert_eq!(a.rect().1, 0);
        assert_eq!(a.rect().3, 48);
    }

    #[test]
    fn median_cut_is_near_half_on_uniform_grids() {
        let g = Grid::uniform(101, 97, 5);
        let p = g.root_problem();
        let (a, b) = p.bisect();
        let frac = a.weight().min(b.weight()) / p.weight();
        assert!(frac > 0.47, "frac {frac}");
    }

    #[test]
    fn median_cut_beats_every_other_line() {
        let g = Grid::hotspots(40, 33, 3, 7);
        let p = g.root_problem();
        let (a, _) = p.bisect();
        let (_, _, m, _) = a.rect();
        let half = p.weight() / 2.0;
        let chosen = (g.rect_load(0, 0, m, 33) - half).abs();
        for line in 1..40 {
            let d = (g.rect_load(0, 0, line, 33) - half).abs();
            assert!(chosen <= d + 1e-9, "line {line} beats chosen cut {m}");
        }
    }

    #[test]
    fn single_cell_is_atomic() {
        let g = Grid::new(1, 1, &[3.0]);
        let p = g.root_problem();
        assert!(!p.can_bisect());
        assert_eq!(p.weight(), 3.0);
    }

    #[test]
    fn single_row_cuts_columns() {
        let g = Grid::new(1, 8, &[1.0; 8]);
        let p = g.root_problem();
        assert!(!p.cuts_rows());
        let (a, b) = p.bisect();
        assert_eq!(a.weight(), 4.0);
        assert_eq!(b.weight(), 4.0);
    }

    #[test]
    fn hf_partitions_grid_well() {
        let g = Grid::hotspots(128, 128, 5, 9);
        let p = g.root_problem();
        let part = hf(p, 64);
        assert_eq!(part.len(), 64);
        assert!(part.check_conservation(1e-9));
        assert!(part.ratio() < 3.0, "ratio {}", part.ratio());
    }

    #[test]
    fn ba_partitions_grid() {
        let g = Grid::uniform(96, 96, 13);
        let part = ba(g.root_problem(), 48);
        assert_eq!(part.len(), 48);
        assert!(part.check_conservation(1e-9));
    }

    #[test]
    fn atomic_cells_cap_piece_count() {
        let g = Grid::uniform(2, 2, 1);
        let part = hf(g.root_problem(), 16);
        assert_eq!(part.len(), 4);
    }

    #[test]
    fn empirical_alpha_is_high_for_uniform_grids() {
        let g = Grid::uniform(256, 256, 21);
        let alpha = empirical_alpha(&g.root_problem(), 64).unwrap();
        assert!(alpha > 0.4, "alpha {alpha}");
    }

    #[test]
    fn pieces_tile_the_grid() {
        let g = Grid::uniform(32, 32, 31);
        let part = hf(g.root_problem(), 17);
        let mut covered = vec![false; 32 * 32];
        for piece in part.pieces() {
            let (r0, c0, r1, c1) = piece.rect();
            for r in r0..r1 {
                for c in c0..c1 {
                    assert!(!covered[r * 32 + c], "cell ({r},{c}) covered twice");
                    covered[r * 32 + c] = true;
                }
            }
        }
        assert!(covered.iter().all(|&x| x));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use gb_core::problem::Bisectable;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_sat_matches_naive_sums(
            rows in 1usize..12,
            cols in 1usize..12,
            seed in any::<u64>(),
            r0 in 0usize..12, r1 in 0usize..12,
            c0 in 0usize..12, c1 in 0usize..12,
        ) {
            let mut rng = gb_core::rng::Xoshiro256StarStar::seed_from_u64(seed);
            let loads: Vec<f64> = (0..rows * cols).map(|_| rng.range_f64(0.1, 2.0)).collect();
            let g = Grid::new(rows, cols, &loads);
            let (r0, r1) = (r0.min(rows), r1.min(rows));
            let (c0, c1) = (c0.min(cols), c1.min(cols));
            prop_assume!(r0 <= r1 && c0 <= c1);
            let naive: f64 = (r0..r1)
                .flat_map(|r| (c0..c1).map(move |c| (r, c)))
                .map(|(r, c)| loads[r * cols + c])
                .sum();
            let fast = g.rect_load(r0, c0, r1, c1);
            prop_assert!((naive - fast).abs() <= 1e-9 * naive.abs().max(1.0));
        }

        #[test]
        fn prop_median_cut_is_optimal_line(
            rows in 2usize..24,
            cols in 1usize..24,
            seed in any::<u64>(),
        ) {
            prop_assume!(rows >= cols); // force a row cut
            let g = Grid::uniform(rows, cols, seed);
            let p = g.root_problem();
            let (a, _) = p.bisect();
            let (_, _, m, _) = a.rect();
            let half = p.weight() / 2.0;
            let chosen = (g.rect_load(0, 0, m, cols) - half).abs();
            for line in 1..rows {
                let d = (g.rect_load(0, 0, line, cols) - half).abs();
                prop_assert!(chosen <= d + 1e-9, "line {line} beats {m}");
            }
        }

        #[test]
        fn prop_bisection_tiles_and_conserves(
            rows in 1usize..20,
            cols in 1usize..20,
            seed in any::<u64>(),
        ) {
            let g = Grid::hotspots(rows, cols, 2, seed);
            let p = g.root_problem();
            if p.can_bisect() {
                let (a, b) = p.bisect();
                prop_assert_eq!(a.cells() + b.cells(), p.cells());
                prop_assert!(a.cells() > 0 && b.cells() > 0);
                prop_assert!(
                    (a.weight() + b.weight() - p.weight()).abs() <= 1e-9 * p.weight()
                );
            } else {
                prop_assert_eq!(p.cells(), 1);
            }
        }
    }
}
