//! Task lists split at a random pivot.
//!
//! §4 of the paper motivates the uniform-`α̂` stochastic model with exactly
//! this class:
//!
//! > "Such an assumption is valid, for example, if the problems are
//! > represented by lists of elements taken from an ordered set, and if a
//! > list is bisected by choosing a random pivot element and partitioning
//! > the list into those elements that are smaller than the pivot and
//! > those that are larger."
//!
//! A [`TaskList`] is an ordered sequence of tasks with positive costs; a
//! [`TaskListProblem`] is a contiguous range of it. Bisection draws a
//! (seed-deterministic) pivot position and splits the range. Weights are
//! range sums answered in O(1) from a prefix-sum table, so weight
//! conservation is exact by construction.

use std::sync::Arc;

use gb_core::problem::Bisectable;
use gb_core::rng::{SplitMix64, Xoshiro256StarStar};

/// An immutable ordered collection of weighted tasks, shared by all
/// subproblems derived from it.
#[derive(Debug)]
pub struct TaskList {
    /// Cost of each task (positive).
    costs: Vec<f64>,
    /// `prefix[i]` = sum of costs of tasks `0..i`; `prefix[len]` = total.
    prefix: Vec<f64>,
}

impl TaskList {
    /// Builds a task list from explicit costs.
    ///
    /// # Panics
    /// Panics if `costs` is empty or contains a non-positive or non-finite
    /// cost.
    pub fn new(costs: Vec<f64>) -> Arc<Self> {
        assert!(!costs.is_empty(), "empty task list");
        let mut prefix = Vec::with_capacity(costs.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for &c in &costs {
            assert!(c.is_finite() && c > 0.0, "invalid task cost {c}");
            acc += c;
            prefix.push(acc);
        }
        Arc::new(Self { costs, prefix })
    }

    /// Generates `n` tasks with costs uniform in `[0.5, 1.5)`.
    pub fn uniform(n: usize, seed: u64) -> Arc<Self> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        Self::new((0..n).map(|_| rng.range_f64(0.5, 1.5)).collect())
    }

    /// Generates `n` tasks with heavy-tailed (bounded Pareto-like) costs —
    /// the irregular workloads dynamic load balancing exists for.
    pub fn heavy_tailed(n: usize, seed: u64) -> Arc<Self> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        Self::new(
            (0..n)
                .map(|_| {
                    let u = rng.next_f64().max(1e-6);
                    // Pareto(1.5) truncated to [1, 100].
                    (u.powf(-1.0 / 1.5)).min(100.0)
                })
                .collect(),
        )
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// `true` if the list holds no tasks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Total cost of tasks in `start..end`.
    pub fn range_cost(&self, start: usize, end: usize) -> f64 {
        self.prefix[end] - self.prefix[start]
    }

    /// Cost of a single task.
    pub fn cost(&self, i: usize) -> f64 {
        self.costs[i]
    }

    /// Wraps the whole list into the root problem.
    pub fn root_problem(self: &Arc<Self>, seed: u64) -> TaskListProblem {
        TaskListProblem {
            list: Arc::clone(self),
            start: 0,
            end: self.len(),
            seed,
        }
    }
}

/// A contiguous range of a [`TaskList`]; the problem type of this class.
#[derive(Debug, Clone)]
pub struct TaskListProblem {
    list: Arc<TaskList>,
    start: usize,
    end: usize,
    seed: u64,
}

impl TaskListProblem {
    /// The half-open task range this problem covers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Number of tasks in this problem.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the range is empty (never produced by bisection).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The pivot position this problem will split at (for tests).
    fn pivot(&self) -> usize {
        // A pivot position in (start, end) — both sides non-empty. The
        // draw is a pure function of the problem seed.
        let span = self.end - self.start - 1;
        let r = SplitMix64::derive(self.seed, 0);
        self.start + 1 + (r % span as u64) as usize
    }
}

impl PartialEq for TaskListProblem {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.list, &other.list)
            && self.start == other.start
            && self.end == other.end
            && self.seed == other.seed
    }
}

impl Bisectable for TaskListProblem {
    fn weight(&self) -> f64 {
        self.list.range_cost(self.start, self.end)
    }

    fn bisect(&self) -> (Self, Self) {
        debug_assert!(self.can_bisect());
        let mid = self.pivot();
        let s1 = SplitMix64::derive(self.seed, 1);
        let s2 = SplitMix64::derive(self.seed, 2);
        (
            Self {
                list: Arc::clone(&self.list),
                start: self.start,
                end: mid,
                seed: s1,
            },
            Self {
                list: Arc::clone(&self.list),
                start: mid,
                end: self.end,
                seed: s2,
            },
        )
    }

    fn can_bisect(&self) -> bool {
        self.len() >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::empirical_alpha;
    use gb_core::ba::ba;
    use gb_core::hf::hf;

    #[test]
    fn prefix_sums_answer_range_costs() {
        let list = TaskList::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(list.range_cost(0, 4), 10.0);
        assert_eq!(list.range_cost(1, 3), 5.0);
        assert_eq!(list.range_cost(2, 2), 0.0);
        assert_eq!(list.cost(3), 4.0);
        assert_eq!(list.len(), 4);
    }

    #[test]
    fn bisection_splits_range_without_loss() {
        let list = TaskList::uniform(100, 3);
        let p = list.root_problem(17);
        let (a, b) = p.bisect();
        assert_eq!(a.range().end, b.range().start);
        assert_eq!(a.range().start, 0);
        assert_eq!(b.range().end, 100);
        assert!((a.weight() + b.weight() - p.weight()).abs() < 1e-9);
        assert!(!a.is_empty() && !b.is_empty());
    }

    #[test]
    fn bisection_is_deterministic() {
        let list = TaskList::uniform(64, 5);
        let p = list.root_problem(1);
        let (a1, b1) = p.bisect();
        let (a2, b2) = p.bisect();
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn single_task_is_atomic() {
        let list = TaskList::new(vec![2.5]);
        let p = list.root_problem(0);
        assert!(!p.can_bisect());
        assert_eq!(p.weight(), 2.5);
    }

    #[test]
    fn hf_partitions_tasks_exactly() {
        let list = TaskList::uniform(1000, 11);
        let p = list.root_problem(42);
        let total = p.weight();
        let part = hf(p, 16);
        assert_eq!(part.len(), 16);
        let sum: f64 = part.weights().iter().sum();
        assert!((sum - total).abs() < 1e-6);
        // Uniform task costs on 1000 tasks balance quite well.
        assert!(part.ratio() < 2.0, "ratio {}", part.ratio());
    }

    #[test]
    fn ba_handles_atomic_tails() {
        // 8 tasks on 16 processors: at most 8 pieces; some processors idle.
        let list = TaskList::uniform(8, 2);
        let part = ba(list.root_problem(3), 16);
        assert!(part.len() <= 8);
        assert!(part.check_conservation(1e-9));
    }

    #[test]
    fn empirical_alpha_is_positive_and_reported() {
        let list = TaskList::uniform(4096, 9);
        let alpha = empirical_alpha(&list.root_problem(4), 64).unwrap();
        assert!(alpha > 0.0 && alpha <= 0.5, "alpha {alpha}");
    }

    #[test]
    fn heavy_tailed_costs_are_bounded() {
        let list = TaskList::heavy_tailed(500, 21);
        for i in 0..500 {
            let c = list.cost(i);
            assert!((1.0..=100.0).contains(&c), "cost {c}");
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_pivot_always_interior(
            len in 2usize..500,
            seed in any::<u64>(),
            gen_seed in any::<u64>(),
        ) {
            let list = TaskList::uniform(len, gen_seed);
            let p = list.root_problem(seed);
            let (a, b) = p.bisect();
            prop_assert!(!a.is_empty() && !b.is_empty());
            prop_assert_eq!(a.len() + b.len(), len);
            prop_assert!((a.weight() + b.weight() - p.weight()).abs() < 1e-9 * p.weight());
        }

        #[test]
        fn prop_partition_assigns_every_task_once(
            len in 8usize..2000,
            n in 2usize..32,
            seed in any::<u64>(),
        ) {
            let list = TaskList::heavy_tailed(len, seed);
            let part = gb_core::ba::ba(list.root_problem(seed ^ 1), n);
            let mut covered = vec![false; len];
            for piece in part.pieces() {
                for t in piece.range() {
                    prop_assert!(!covered[t]);
                    covered[t] = true;
                }
            }
            prop_assert!(covered.iter().all(|&c| c));
        }
    }
}
