//! Backtrack-search spaces (Karp–Zhang style).
//!
//! §2 of the paper notes that "problems might correspond to […] parts of
//! the search space for an optimization problem (cf. \[9\])", citing Karp
//! and Zhang's randomized parallel backtrack search. We model a search
//! space as a materialised irregular tree with a positive cost per node
//! (the work of expanding that search node): a **problem** is a connected
//! fragment of the tree — a subtree minus already donated subtrees — and
//! a **bisection** donates the best-splitting subtree, exactly the
//! "donate part of your subtree to an idle processor" move of
//! work-donation schedulers.
//!
//! Unlike the binary FE-trees of [`crate::fe_tree`], search trees have
//! irregular branching (0–`max_branch` children per node, seeded), which
//! exercises the load balancers on bushier, more skewed shapes. The
//! fragment/cut machinery mirrors the FE-tree class.

use std::sync::Arc;

use gb_core::problem::Bisectable;
use gb_core::rng::Xoshiro256StarStar;

/// An immutable search tree shared by all problems derived from it.
#[derive(Debug)]
pub struct SearchTree {
    cost: Vec<f64>,
    children: Vec<Vec<u32>>,
    subtree_cost: Vec<f64>,
    subtree_size: Vec<u32>,
    tin: Vec<u32>,
    tout: Vec<u32>,
}

impl SearchTree {
    /// Generates a random search tree of roughly `target_nodes` nodes.
    ///
    /// Nodes spawn 0..=`max_branch` children (geometric-ish, seeded);
    /// expansion costs are uniform in `[0.5, 1.5)`. Generation proceeds
    /// breadth-first until the budget is exhausted, so trees are ragged
    /// but connected.
    ///
    /// # Panics
    /// Panics if `target_nodes == 0` or `max_branch < 2`.
    pub fn random(target_nodes: usize, max_branch: usize, seed: u64) -> Arc<Self> {
        assert!(target_nodes > 0, "need at least one node");
        assert!(max_branch >= 2, "need branching >= 2");
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut cost = vec![rng.range_f64(0.5, 1.5)];
        let mut children: Vec<Vec<u32>> = vec![Vec::new()];
        let mut frontier = std::collections::VecDeque::from([0u32]);
        while let Some(v) = frontier.pop_front() {
            if cost.len() >= target_nodes {
                break;
            }
            // Between 0 and max_branch children, biased towards bushiness
            // early (so the tree does not die out).
            let max_kids = max_branch.min(target_nodes - cost.len());
            let kids = if cost.len() < 8 {
                max_kids.max(1)
            } else {
                rng.range_usize(max_kids + 1)
            };
            for _ in 0..kids {
                let c = cost.len() as u32;
                cost.push(rng.range_f64(0.5, 1.5));
                children.push(Vec::new());
                children[v as usize].push(c);
                frontier.push_back(c);
            }
        }
        Arc::new(Self::finish(cost, children))
    }

    fn finish(cost: Vec<f64>, children: Vec<Vec<u32>>) -> Self {
        let n = cost.len();
        let mut subtree_cost = vec![0.0; n];
        let mut subtree_size = vec![0u32; n];
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut timer = 0u32;
        let mut stack: Vec<(u32, bool)> = vec![(0, false)];
        while let Some((v, expanded)) = stack.pop() {
            let vi = v as usize;
            if expanded {
                let mut c = cost[vi];
                let mut s = 1u32;
                for &ch in &children[vi] {
                    c += subtree_cost[ch as usize];
                    s += subtree_size[ch as usize];
                }
                subtree_cost[vi] = c;
                subtree_size[vi] = s;
                tout[vi] = timer;
            } else {
                tin[vi] = timer;
                timer += 1;
                stack.push((v, true));
                for &ch in children[vi].iter().rev() {
                    stack.push((ch, false));
                }
            }
        }
        Self {
            cost,
            children,
            subtree_cost,
            subtree_size,
            tin,
            tout,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.cost.len()
    }

    /// `true` if the tree has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cost.is_empty()
    }

    /// Total expansion cost.
    pub fn total_cost(&self) -> f64 {
        self.subtree_cost[0]
    }

    /// `true` iff `b` lies in the subtree rooted at `a`.
    pub fn in_subtree(&self, b: u32, a: u32) -> bool {
        self.tin[a as usize] <= self.tin[b as usize]
            && self.tout[b as usize] <= self.tout[a as usize]
    }

    /// Wraps the whole space into the root problem.
    pub fn root_problem(self: &Arc<Self>) -> SearchTreeProblem {
        SearchTreeProblem {
            tree: Arc::clone(self),
            root: 0,
            cut: Vec::new(),
        }
    }
}

/// A connected fragment of a [`SearchTree`]: `subtree(root)` minus the
/// subtrees rooted at the `cut` nodes.
#[derive(Debug, Clone)]
pub struct SearchTreeProblem {
    tree: Arc<SearchTree>,
    root: u32,
    cut: Vec<u32>,
}

impl SearchTreeProblem {
    /// Number of nodes in this fragment.
    pub fn node_count(&self) -> u32 {
        let mut s = self.tree.subtree_size[self.root as usize];
        for &c in &self.cut {
            s -= self.tree.subtree_size[c as usize];
        }
        s
    }

    /// Effective (fragment-restricted) subtree cost of every active node,
    /// post-order.
    fn effective_costs(&self) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        let mut acc: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        let mut stack: Vec<(u32, bool)> = vec![(self.root, false)];
        while let Some((v, expanded)) = stack.pop() {
            if self.cut.contains(&v) {
                continue;
            }
            let vi = v as usize;
            if expanded {
                let mut c = self.tree.cost[vi];
                for ch in &self.tree.children[vi] {
                    c += acc.get(ch).copied().unwrap_or(0.0);
                }
                acc.insert(v, c);
                out.push((v, c));
            } else {
                stack.push((v, true));
                for &ch in self.tree.children[vi].iter().rev() {
                    stack.push((ch, false));
                }
            }
        }
        out
    }

    /// The donation the next bisection makes: the non-root active node
    /// whose effective cost is closest to half the fragment weight.
    pub fn best_donation(&self) -> Option<u32> {
        let half = self.weight() / 2.0;
        let mut best: Option<(f64, u32, u32)> = None;
        for (v, eff) in self.effective_costs() {
            if v == self.root {
                continue;
            }
            let key = (eff - half).abs();
            let tin = self.tree.tin[v as usize];
            match best {
                Some((bk, bt, _)) if (bk, bt) <= (key, tin) => {}
                _ => best = Some((key, tin, v)),
            }
        }
        best.map(|(_, _, v)| v)
    }
}

impl PartialEq for SearchTreeProblem {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.tree, &other.tree) && self.root == other.root && self.cut == other.cut
    }
}

impl Bisectable for SearchTreeProblem {
    fn weight(&self) -> f64 {
        let mut w = self.tree.subtree_cost[self.root as usize];
        for &c in &self.cut {
            w -= self.tree.subtree_cost[c as usize];
        }
        w
    }

    fn bisect(&self) -> (Self, Self) {
        let v = self
            .best_donation()
            .expect("bisect called on an atomic fragment");
        let mut cut_in = Vec::new();
        let mut cut_out = Vec::new();
        for &c in &self.cut {
            if self.tree.in_subtree(c, v) {
                cut_in.push(c);
            } else {
                cut_out.push(c);
            }
        }
        let donated = Self {
            tree: Arc::clone(&self.tree),
            root: v,
            cut: cut_in,
        };
        let mut cut2 = cut_out;
        cut2.push(v);
        cut2.sort_unstable();
        let rest = Self {
            tree: Arc::clone(&self.tree),
            root: self.root,
            cut: cut2,
        };
        (donated, rest)
    }

    fn can_bisect(&self) -> bool {
        self.node_count() >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::empirical_alpha;
    use gb_core::ba::ba;
    use gb_core::hf::hf;

    #[test]
    fn generator_hits_the_budget() {
        let t = SearchTree::random(5000, 4, 7);
        assert!(t.len() >= 4000 && t.len() <= 5003, "{} nodes", t.len());
        assert_eq!(t.subtree_size[0] as usize, t.len());
        assert!(t.total_cost() > 0.0);
    }

    #[test]
    fn bisection_conserves_cost_and_nodes() {
        let t = SearchTree::random(2000, 5, 9);
        let p = t.root_problem();
        let (a, b) = p.bisect();
        assert!((a.weight() + b.weight() - p.weight()).abs() < 1e-9);
        assert_eq!(a.node_count() + b.node_count(), p.node_count());
    }

    #[test]
    fn bisection_is_deterministic() {
        let t = SearchTree::random(500, 3, 11);
        let p = t.root_problem();
        assert_eq!(p.bisect(), p.bisect());
    }

    #[test]
    fn hf_and_ba_partition_search_spaces() {
        let t = SearchTree::random(8000, 6, 13);
        let p = t.root_problem();
        for part in [hf(p.clone(), 48), ba(p.clone(), 48)] {
            assert_eq!(part.len(), 48);
            assert!(part.check_conservation(1e-9));
            let covered: u32 = part.pieces().iter().map(|q| q.node_count()).sum();
            assert_eq!(covered as usize, t.len());
        }
    }

    #[test]
    fn bushy_trees_have_good_bisectors() {
        for seed in 0..4 {
            let t = SearchTree::random(4000, 8, seed);
            let alpha = empirical_alpha(&t.root_problem(), 64).unwrap();
            assert!(alpha > 0.1, "seed {seed}: alpha {alpha}");
        }
    }

    #[test]
    fn single_node_fragments_are_atomic() {
        let t = SearchTree::random(1, 2, 3);
        assert_eq!(t.len(), 1);
        assert!(!t.root_problem().can_bisect());
    }
}
