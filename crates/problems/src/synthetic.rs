//! The paper's stochastic model (§4): `α̂ ~ U[l, u]` i.i.d. per bisection.
//!
//! > "Assume that the actual bisection parameter α̂ is drawn uniformly at
//! > random from the interval `[l, u]`, `0 < l ≤ u ≤ 1/2`, and that all
//! > `N−1` bisection steps are independent and identically distributed."
//!
//! [`SyntheticProblem`] realises this model *deterministically*: every
//! problem carries a seed; the split fraction of a node and the seeds of
//! its two children are pure functions of that seed. Two algorithms
//! bisecting the same node therefore observe bit-identical children —
//! the property that makes "PHF computes the same partition as HF"
//! verifiable exactly (Theorem 3 tests).
//!
//! The distribution matches the model: the fraction is
//! `l + (u − l) · U` with `U` uniform in `[0, 1)` derived by hashing the
//! node seed, and child seeds are independent hash lanes, so along any
//! path (and across any antichain) of the bisection tree the fractions
//! are i.i.d. uniform.

use gb_core::problem::{AlphaBisectable, Bisectable};
use gb_core::rng::{u64_to_unit_f64, SplitMix64};

/// A weight-only problem following the paper's stochastic model.
///
/// ```
/// use gb_core::problem::{AlphaBisectable, Bisectable};
/// use gb_problems::synthetic::SyntheticProblem;
///
/// let p = SyntheticProblem::new(1.0, 0.1, 0.5, 7);
/// let (a, b) = p.bisect();
/// assert!((a.weight() + b.weight() - 1.0).abs() < 1e-12);
/// assert!(a.weight().min(b.weight()) >= 0.1 * (1.0 - 1e-12));
/// assert_eq!(p.alpha(), 0.1);          // the class guarantee is l
/// assert_eq!(p.bisect(), (a, b));      // bisection is deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticProblem {
    weight: f64,
    lo: f64,
    hi: f64,
    seed: u64,
}

impl SyntheticProblem {
    /// Creates a root problem of weight `weight` whose bisection fractions
    /// are uniform in `[lo, hi]` (`0 < lo ≤ hi ≤ 1/2`), seeded by `seed`.
    ///
    /// # Panics
    /// Panics on an invalid weight or interval.
    pub fn new(weight: f64, lo: f64, hi: f64, seed: u64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "invalid weight {weight}"
        );
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi && hi <= 0.5,
            "invalid fraction interval [{lo}, {hi}]"
        );
        Self {
            weight,
            lo,
            hi,
            seed,
        }
    }

    /// The interval `[l, u]` the split fractions are drawn from.
    pub fn interval(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// The seed identifying this node of the (virtual) infinite bisection
    /// tree.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The split fraction this node will use when bisected — exposed so
    /// tests can predict bisections.
    pub fn split_fraction(&self) -> f64 {
        let u = u64_to_unit_f64(SplitMix64::derive(self.seed, 0));
        self.lo + (self.hi - self.lo) * u
    }
}

impl Bisectable for SyntheticProblem {
    fn weight(&self) -> f64 {
        self.weight
    }

    fn bisect(&self) -> (Self, Self) {
        let frac = self.split_fraction();
        let s1 = SplitMix64::derive(self.seed, 1);
        let s2 = SplitMix64::derive(self.seed, 2);
        (
            Self {
                weight: frac * self.weight,
                lo: self.lo,
                hi: self.hi,
                seed: s1,
            },
            Self {
                weight: (1.0 - frac) * self.weight,
                lo: self.lo,
                hi: self.hi,
                seed: s2,
            },
        )
    }
}

impl AlphaBisectable for SyntheticProblem {
    /// The class guarantee is the lower end of the fraction interval.
    fn alpha(&self) -> f64 {
        self.lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gb_core::hf::hf_traced;
    use gb_core::problem::validate_bisection;
    use gb_core::stats::Welford;
    use proptest::prelude::*;

    #[test]
    fn bisection_is_deterministic() {
        let p = SyntheticProblem::new(1.0, 0.1, 0.5, 99);
        assert_eq!(p.bisect(), p.bisect());
        let q = SyntheticProblem::new(1.0, 0.1, 0.5, 100);
        assert_ne!(p.bisect().0.weight(), q.bisect().0.weight());
    }

    #[test]
    fn fractions_respect_interval() {
        let mut p = SyntheticProblem::new(1.0, 0.2, 0.3, 7);
        for _ in 0..200 {
            let f = p.split_fraction();
            assert!((0.2..=0.3).contains(&f), "fraction {f}");
            let (a, b) = p.bisect();
            assert!(validate_bisection(p.weight(), a.weight(), b.weight(), 0.2, 1e-9).is_ok());
            p = b; // follow the heavy side
        }
    }

    #[test]
    fn fractions_are_uniformish_over_the_tree() {
        // Sample fractions across a wide antichain; mean should be close
        // to the interval midpoint and min/max should approach the ends.
        let root = SyntheticProblem::new(1.0, 0.1, 0.5, 1234);
        let (_, tree) = hf_traced(root, 4096);
        let mut acc = Welford::new();
        for (_, node) in tree.iter() {
            if let Some((l, _)) = node.children {
                let wl = tree.node(l).weight;
                let f = (wl / node.weight).min(1.0 - wl / node.weight);
                acc.push(f);
            }
        }
        assert_eq!(acc.count(), 4095);
        assert!((acc.mean() - 0.3).abs() < 0.01, "mean {}", acc.mean());
        assert!(acc.min() < 0.105, "min {}", acc.min());
        assert!(acc.max() > 0.495, "max {}", acc.max());
        // Uniform on [0.1, 0.5] has variance (0.4)^2/12 ≈ 0.01333.
        assert!((acc.variance() - 0.4 * 0.4 / 12.0).abs() < 0.002);
    }

    #[test]
    fn alpha_is_interval_low_end() {
        let p = SyntheticProblem::new(2.0, 0.17, 0.42, 5);
        assert_eq!(p.alpha(), 0.17);
        assert_eq!(p.interval(), (0.17, 0.42));
    }

    #[test]
    #[should_panic(expected = "invalid fraction interval")]
    fn rejects_interval_above_half() {
        SyntheticProblem::new(1.0, 0.2, 0.6, 0);
    }

    #[test]
    #[should_panic(expected = "invalid fraction interval")]
    fn rejects_zero_low_end() {
        SyntheticProblem::new(1.0, 0.0, 0.5, 0);
    }

    proptest! {
        #[test]
        fn prop_children_conserve_weight(
            seed in any::<u64>(),
            lo in 0.01f64..=0.5,
            span in 0.0f64..=0.49,
            weight in 0.1f64..1e9,
        ) {
            let hi = (lo + span).min(0.5);
            let p = SyntheticProblem::new(weight, lo, hi, seed);
            let (a, b) = p.bisect();
            prop_assert!((a.weight() + b.weight() - weight).abs() <= 1e-9 * weight);
            prop_assert!(a.weight() >= lo * weight * (1.0 - 1e-12));
            prop_assert!(b.weight() >= lo * weight * (1.0 - 1e-12));
            // Child seeds differ from each other and the parent.
            prop_assert!(a.seed() != b.seed());
            prop_assert!(a.seed() != p.seed());
        }
    }
}
