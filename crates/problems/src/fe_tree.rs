//! FE-trees: unbalanced binary trees from adaptive recursive substructuring.
//!
//! The paper's motivating application is a parallel finite-element solver
//! whose "recursive substructuring phase yields an unbalanced binary tree
//! (called FE-tree). In order to parallelize the main part of the
//! computation, the FE-tree must be split into subtrees that can be
//! distributed among the available processors."
//!
//! We model an FE-tree as a binary tree with a positive cost per node
//! (assembly/elimination work of that substructure). A **problem** is a
//! connected fragment of the tree: a subtree root minus a set of already
//! cut-away subtrees. Its **bisection** removes the tree edge whose lower
//! endpoint's effective subtree cost is closest to half the fragment's
//! weight — the natural "useful bisection method for FE-trees" of \[1\].
//! Cutting an edge splits a tree fragment into two tree fragments, so the
//! class is closed under bisection; weights are additive by construction.
//!
//! The generator simulates adaptive refinement: starting from a root
//! region, repeatedly refine a leaf (biased towards recently refined
//! regions to create the *unbalanced* trees adaptive FEM produces).

use std::sync::Arc;

use gb_core::problem::Bisectable;
use gb_core::rng::Xoshiro256StarStar;

/// An immutable FE-tree shared by all problems derived from it.
#[derive(Debug)]
pub struct FeTree {
    cost: Vec<f64>,
    parent: Vec<Option<u32>>,
    children: Vec<Option<(u32, u32)>>,
    subtree_cost: Vec<f64>,
    subtree_size: Vec<u32>,
    /// Euler-tour entry index; `tin[v]..tout[v]` spans v's subtree.
    tin: Vec<u32>,
    tout: Vec<u32>,
}

impl FeTree {
    /// Builds an FE-tree by simulated adaptive refinement.
    ///
    /// Starts from a single root region and performs `refinements` steps;
    /// each step picks a leaf — with probability `bias` the most recently
    /// created leaf (deep, unbalanced refinement), otherwise a uniformly
    /// random leaf — and splits it into two child regions with costs
    /// uniform in `[0.5, 1.5)`. The result has `2·refinements + 1` nodes.
    ///
    /// # Panics
    /// Panics if `bias ∉ [0, 1]`.
    pub fn adaptive(refinements: usize, bias: f64, seed: u64) -> Arc<Self> {
        assert!((0.0..=1.0).contains(&bias), "bias {bias} outside [0, 1]");
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let n_nodes = 2 * refinements + 1;
        let mut cost = Vec::with_capacity(n_nodes);
        let mut parent: Vec<Option<u32>> = Vec::with_capacity(n_nodes);
        let mut children: Vec<Option<(u32, u32)>> = Vec::with_capacity(n_nodes);
        cost.push(rng.range_f64(0.5, 1.5));
        parent.push(None);
        children.push(None);
        let mut leaves: Vec<u32> = vec![0];
        for _ in 0..refinements {
            let pick = if rng.next_f64() < bias {
                leaves.len() - 1
            } else {
                rng.range_usize(leaves.len())
            };
            let v = leaves.swap_remove(pick);
            let l = cost.len() as u32;
            for _ in 0..2 {
                cost.push(rng.range_f64(0.5, 1.5));
                parent.push(Some(v));
                children.push(None);
            }
            children[v as usize] = Some((l, l + 1));
            leaves.push(l);
            leaves.push(l + 1);
        }
        Arc::new(Self::finish(cost, parent, children))
    }

    /// Builds a perfectly balanced FE-tree of the given depth with unit
    /// node costs — the best case for bisection-based balancing.
    pub fn balanced(depth: u32) -> Arc<Self> {
        let n_nodes = (1usize << (depth + 1)) - 1;
        let cost = vec![1.0; n_nodes];
        let mut parent = vec![None; n_nodes];
        let mut children = vec![None; n_nodes];
        #[allow(clippy::needless_range_loop)] // v indexes three arrays at once
        for v in 0..n_nodes {
            let l = 2 * v + 1;
            if l + 1 < n_nodes {
                children[v] = Some((l as u32, l as u32 + 1));
                parent[l] = Some(v as u32);
                parent[l + 1] = Some(v as u32);
            }
        }
        Arc::new(Self::finish(cost, parent, children))
    }

    /// Builds a maximally unbalanced "caterpillar" FE-tree: a spine of
    /// `spine` internal nodes, each with one leaf child — the worst case
    /// produced by strictly local refinement.
    pub fn caterpillar(spine: usize, seed: u64) -> Arc<Self> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let n_nodes = 2 * spine + 1;
        let mut cost = Vec::with_capacity(n_nodes);
        let mut parent: Vec<Option<u32>> = Vec::with_capacity(n_nodes);
        let mut children: Vec<Option<(u32, u32)>> = Vec::with_capacity(n_nodes);
        cost.push(rng.range_f64(0.5, 1.5));
        parent.push(None);
        children.push(None);
        let mut spine_node = 0u32;
        for _ in 0..spine {
            let l = cost.len() as u32;
            for _ in 0..2 {
                cost.push(rng.range_f64(0.5, 1.5));
                parent.push(Some(spine_node));
                children.push(None);
            }
            children[spine_node as usize] = Some((l, l + 1));
            spine_node = l + 1; // continue the spine on the right child
        }
        Arc::new(Self::finish(cost, parent, children))
    }

    /// Completes derived data (subtree sums, Euler tour) from the raw
    /// structure.
    fn finish(cost: Vec<f64>, parent: Vec<Option<u32>>, children: Vec<Option<(u32, u32)>>) -> Self {
        let n = cost.len();
        let mut subtree_cost = vec![0.0; n];
        let mut subtree_size = vec![0u32; n];
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        // Iterative post-order: (node, expanded?).
        let mut timer = 0u32;
        let mut stack: Vec<(u32, bool)> = vec![(0, false)];
        while let Some((v, expanded)) = stack.pop() {
            let vi = v as usize;
            if expanded {
                let (mut c, mut s) = (cost[vi], 1u32);
                if let Some((l, r)) = children[vi] {
                    c += subtree_cost[l as usize] + subtree_cost[r as usize];
                    s += subtree_size[l as usize] + subtree_size[r as usize];
                }
                subtree_cost[vi] = c;
                subtree_size[vi] = s;
                tout[vi] = timer;
            } else {
                tin[vi] = timer;
                timer += 1;
                stack.push((v, true));
                if let Some((l, r)) = children[vi] {
                    stack.push((r, false));
                    stack.push((l, false));
                }
            }
        }
        Self {
            cost,
            parent,
            children,
            subtree_cost,
            subtree_size,
            tin,
            tout,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.cost.len()
    }

    /// `true` if the tree has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cost.is_empty()
    }

    /// Total cost of all nodes.
    pub fn total_cost(&self) -> f64 {
        self.subtree_cost[0]
    }

    /// `true` iff `a` is an ancestor of `b` or equal to it.
    pub fn in_subtree(&self, b: u32, a: u32) -> bool {
        self.tin[a as usize] <= self.tin[b as usize]
            && self.tout[b as usize] <= self.tout[a as usize]
    }

    /// The parent of `v`, if any.
    pub fn parent_of(&self, v: u32) -> Option<u32> {
        self.parent[v as usize]
    }

    /// Wraps the whole tree into the root problem.
    pub fn root_problem(self: &Arc<Self>) -> FeTreeProblem {
        FeTreeProblem {
            tree: Arc::clone(self),
            root: 0,
            cut: Vec::new(),
        }
    }
}

/// A connected tree fragment: `subtree(root)` minus the subtrees rooted at
/// the (disjoint) `cut` nodes. The problem type of the FE-tree class.
#[derive(Debug, Clone)]
pub struct FeTreeProblem {
    tree: Arc<FeTree>,
    root: u32,
    /// Roots of cut-away subtrees, each strictly inside `subtree(root)`,
    /// pairwise disjoint, kept sorted for deterministic arithmetic.
    cut: Vec<u32>,
}

impl FeTreeProblem {
    /// The root node of this fragment.
    pub fn fragment_root(&self) -> u32 {
        self.root
    }

    /// Number of nodes in this fragment.
    pub fn node_count(&self) -> u32 {
        let mut n = self.tree.subtree_size[self.root as usize];
        for &c in &self.cut {
            n -= self.tree.subtree_size[c as usize];
        }
        n
    }

    /// Visits every active node of the fragment, calling `f(node)`;
    /// traversal is depth-first from the fragment root, skipping cut
    /// subtrees.
    pub fn for_each_node<F: FnMut(u32)>(&self, mut f: F) {
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            if self.cut.contains(&v) {
                continue;
            }
            f(v);
            if let Some((l, r)) = self.tree.children[v as usize] {
                stack.push(r);
                stack.push(l);
            }
        }
    }

    /// Effective subtree cost of every active node (cut subtrees excluded),
    /// as `(node, cost)` pairs in post-order.
    fn effective_costs(&self) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        let mut acc: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        let mut stack: Vec<(u32, bool)> = vec![(self.root, false)];
        while let Some((v, expanded)) = stack.pop() {
            if self.cut.contains(&v) {
                continue;
            }
            if expanded {
                let mut c = self.tree.cost[v as usize];
                if let Some((l, r)) = self.tree.children[v as usize] {
                    c += acc.get(&l).copied().unwrap_or(0.0);
                    c += acc.get(&r).copied().unwrap_or(0.0);
                }
                acc.insert(v, c);
                out.push((v, c));
            } else {
                stack.push((v, true));
                if let Some((l, r)) = self.tree.children[v as usize] {
                    stack.push((r, false));
                    stack.push((l, false));
                }
            }
        }
        out
    }

    /// The edge-cut node the next bisection will split at (for tests):
    /// the non-root active node whose effective subtree cost is closest to
    /// half the fragment weight (ties: smallest Euler index).
    pub fn best_cut(&self) -> Option<u32> {
        let w = self.weight();
        let half = w / 2.0;
        let mut best: Option<(f64, u32, u32)> = None; // (|eff-half|, tin, node)
        for (v, eff) in self.effective_costs() {
            if v == self.root {
                continue;
            }
            let key = (eff - half).abs();
            let tin = self.tree.tin[v as usize];
            match best {
                Some((bk, bt, _)) if (bk, bt) <= (key, tin) => {}
                _ => best = Some((key, tin, v)),
            }
        }
        best.map(|(_, _, v)| v)
    }
}

impl PartialEq for FeTreeProblem {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.tree, &other.tree) && self.root == other.root && self.cut == other.cut
    }
}

impl Bisectable for FeTreeProblem {
    fn weight(&self) -> f64 {
        let mut w = self.tree.subtree_cost[self.root as usize];
        for &c in &self.cut {
            w -= self.tree.subtree_cost[c as usize];
        }
        w
    }

    fn bisect(&self) -> (Self, Self) {
        let v = self
            .best_cut()
            .expect("bisect called on an atomic FE-tree fragment");
        // Fragment 1: subtree(v) minus the cut roots inside it.
        let mut cut_in = Vec::new();
        let mut cut_out = Vec::new();
        for &c in &self.cut {
            if self.tree.in_subtree(c, v) {
                cut_in.push(c);
            } else {
                cut_out.push(c);
            }
        }
        let p1 = Self {
            tree: Arc::clone(&self.tree),
            root: v,
            cut: cut_in,
        };
        // Fragment 2: the remainder — same root, v added to the cut.
        let mut cut2 = cut_out;
        cut2.push(v);
        cut2.sort_unstable();
        let p2 = Self {
            tree: Arc::clone(&self.tree),
            root: self.root,
            cut: cut2,
        };
        (p1, p2)
    }

    fn can_bisect(&self) -> bool {
        self.node_count() >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::empirical_alpha;
    use gb_core::ba::ba;
    use gb_core::hf::{hf, hf_traced};

    #[test]
    fn adaptive_tree_shape() {
        let t = FeTree::adaptive(100, 0.5, 7);
        assert_eq!(t.len(), 201);
        assert!(t.total_cost() > 0.0);
        // Subtree sizes are consistent: root covers everything.
        assert_eq!(t.subtree_size[0] as usize, t.len());
    }

    #[test]
    fn balanced_tree_shape() {
        let t = FeTree::balanced(4);
        assert_eq!(t.len(), 31);
        assert_eq!(t.total_cost(), 31.0);
    }

    #[test]
    fn euler_intervals_nest() {
        let t = FeTree::adaptive(50, 0.3, 9);
        for v in 0..t.len() as u32 {
            assert!(t.in_subtree(v, 0), "root spans all");
            assert!(t.in_subtree(v, v), "reflexive");
            if let Some(p) = t.parent_of(v) {
                assert!(t.in_subtree(v, p));
                assert!(!t.in_subtree(p, v));
            }
        }
    }

    #[test]
    fn bisection_conserves_weight_and_nodes() {
        let t = FeTree::adaptive(200, 0.6, 11);
        let p = t.root_problem();
        let (a, b) = p.bisect();
        assert!((a.weight() + b.weight() - p.weight()).abs() < 1e-9);
        assert_eq!(a.node_count() + b.node_count(), p.node_count());
        assert!(a.weight() > 0.0 && b.weight() > 0.0);
    }

    #[test]
    fn bisection_is_deterministic() {
        let t = FeTree::adaptive(80, 0.4, 13);
        let p = t.root_problem();
        assert_eq!(p.bisect(), p.bisect());
    }

    #[test]
    fn single_node_is_atomic() {
        let t = FeTree::adaptive(0, 0.0, 1);
        assert_eq!(t.len(), 1);
        assert!(!t.root_problem().can_bisect());
    }

    #[test]
    fn hf_partitions_fe_tree() {
        let t = FeTree::adaptive(2000, 0.5, 17);
        let p = t.root_problem();
        let total = p.weight();
        let part = hf(p, 32);
        assert_eq!(part.len(), 32);
        let sum: f64 = part.weights().iter().sum();
        assert!((sum - total).abs() < 1e-6 * total);
        // Large trees with bounded node costs balance well.
        assert!(part.ratio() < 2.5, "ratio {}", part.ratio());
    }

    #[test]
    fn ba_partitions_fe_tree() {
        let t = FeTree::adaptive(2000, 0.5, 19);
        let part = ba(t.root_problem(), 32);
        assert_eq!(part.len(), 32);
        assert!(part.check_conservation(1e-9));
    }

    #[test]
    fn caterpillar_still_has_usable_bisectors() {
        // Even the degenerate caterpillar admits reasonable cuts because
        // the best-edge rule can split anywhere along the spine.
        let t = FeTree::caterpillar(500, 23);
        let alpha = empirical_alpha(&t.root_problem(), 16).unwrap();
        assert!(alpha > 0.2, "alpha {alpha}");
    }

    #[test]
    fn balanced_tree_bisects_near_half() {
        let t = FeTree::balanced(10);
        let p = t.root_problem();
        let (a, b) = p.bisect();
        let frac = a.weight().min(b.weight()) / p.weight();
        // Cutting a child subtree of the root on a complete unit-cost tree
        // removes (2^10 − 1)/(2^11 − 1) ≈ 0.4998 of the weight.
        assert!(frac > 0.49, "frac {frac}");
    }

    #[test]
    fn observed_alpha_is_good_for_adaptive_trees() {
        for seed in 0..5 {
            let t = FeTree::adaptive(1500, 0.5, seed);
            let alpha = empirical_alpha(&t.root_problem(), 64).unwrap();
            assert!(alpha > 0.15, "seed {seed}: alpha {alpha}");
        }
    }

    #[test]
    fn fragments_partition_all_tree_nodes() {
        let t = FeTree::adaptive(300, 0.5, 29);
        let (part, tree) = hf_traced(t.root_problem(), 16);
        assert_eq!(tree.leaf_count(), 16);
        let mut counted = 0u32;
        let mut seen = vec![false; t.len()];
        for piece in part.pieces() {
            counted += piece.node_count();
            piece.for_each_node(|v| {
                assert!(!seen[v as usize], "node {v} in two fragments");
                seen[v as usize] = true;
            });
        }
        assert_eq!(counted as usize, t.len());
        assert!(seen.iter().all(|&s| s));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_adaptive_trees_bisect_soundly(
            refinements in 1usize..150,
            bias in 0.0f64..=1.0,
            seed in any::<u64>(),
        ) {
            let t = FeTree::adaptive(refinements, bias, seed);
            prop_assert_eq!(t.len(), 2 * refinements + 1);
            let p = t.root_problem();
            prop_assert!(p.can_bisect());
            let (a, b) = p.bisect();
            prop_assert!((a.weight() + b.weight() - p.weight()).abs() < 1e-9);
            prop_assert_eq!(a.node_count() + b.node_count(), t.len() as u32);
            prop_assert!(a.weight() > 0.0 && b.weight() > 0.0);
        }

        #[test]
        fn prop_full_partitions_tile_the_tree(
            refinements in 4usize..120,
            seed in any::<u64>(),
            n in 2usize..16,
        ) {
            let t = FeTree::adaptive(refinements, 0.5, seed);
            let part = gb_core::hf::hf(t.root_problem(), n);
            let covered: u32 = part.pieces().iter().map(|p| p.node_count()).sum();
            prop_assert_eq!(covered as usize, t.len());
            prop_assert!(part.check_conservation(1e-9));
        }
    }
}
