//! Property tests for the consistent-hash router and the recovery
//! re-homing contract.
//!
//! Stability: growing the ring from `S` to `S+1` backends may only move
//! keys *onto* the new backend, and only about `1/(S+1)` of them;
//! shrinking it may only move the removed backend's keys, and nothing
//! ever routes to a backend that is not on the ring. Re-homing: a key
//! that survives the persist codec routes to exactly the backend a live
//! request with the same key routes to — which is what lets recovery
//! warm each record into the backend the router would pick today.

use proptest::prelude::*;

use gb_service::cache::CacheKey;
use gb_service::persist::{decode_key, encode_key};
use gb_service::proto::Algorithm;
use gb_service::route::{FailoverRing, Router};

/// Uniform key-hash samples (the router sees `CacheKey::mix()` outputs,
/// which are SplitMix64-finalised, so uniform u64s model them exactly).
fn hashes() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 512..1024)
}

fn arb_key() -> impl Strategy<Value = CacheKey> {
    (any::<u64>(), 0usize..4, 1usize..100_000, 0.1f64..8.0).prop_map(
        |(problem, algorithm, n, theta)| {
            CacheKey::new(problem, Algorithm::ALL[algorithm], n, theta)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adding one backend to `S` existing ones moves at most ~1/(S+1)
    /// of the keyspace (with slack for vnode placement variance), and
    /// every key that moves lands on the NEW backend — surviving
    /// backends never trade keys among themselves.
    #[test]
    fn adding_a_backend_moves_a_bounded_fraction_onto_it(
        backends in 1usize..8,
        vnodes in 32usize..128,
        keys in hashes(),
    ) {
        let before = Router::new(backends, vnodes);
        let after = Router::new(backends + 1, vnodes);
        let new_id = backends as u32;
        let mut moved = 0usize;
        for &hash in &keys {
            let old = before.route(hash);
            let new = after.route(hash);
            if old != new {
                prop_assert_eq!(
                    new, new_id,
                    "key moved between surviving backends: {} -> {}", old, new
                );
                moved += 1;
            }
        }
        // Expected fraction is 1/(S+1); allow 2.5x for the variance of
        // `vnodes` random arc lengths plus sampling noise.
        let bound = (keys.len() as f64 * 2.5 / (backends + 1) as f64).ceil() as usize + 8;
        prop_assert!(
            moved <= bound,
            "moved {}/{} keys to the new backend, bound {}", moved, keys.len(), bound
        );
    }

    /// Removing a backend re-homes ONLY its keys: nothing routes to the
    /// removed id afterwards, and keys owned by surviving backends keep
    /// their owner.
    #[test]
    fn removing_a_backend_only_rehomes_its_keys(
        backends in 2usize..8,
        removed in 0usize..8,
        vnodes in 32usize..128,
        keys in hashes(),
    ) {
        let removed = (removed % backends) as u32;
        let full = Router::new(backends, vnodes);
        let surviving: Vec<u32> =
            (0..backends as u32).filter(|&id| id != removed).collect();
        let shrunk = Router::from_ids(surviving, vnodes);
        for &hash in &keys {
            let old = full.route(hash);
            let new = shrunk.route(hash);
            prop_assert!(new != removed, "routed to a backend not on the ring");
            if old != removed {
                prop_assert_eq!(
                    old, new,
                    "a surviving backend's key moved when another was removed"
                );
            }
        }
    }

    /// The failover contract `gb-router` keys every request off:
    /// marking one backend dead re-homes ONLY that backend's keys —
    /// nothing routes to the dead id, and every survivor keeps exactly
    /// the keys it had on the full ring.
    #[test]
    fn failover_moves_only_the_dead_backends_keys(
        backends in 2usize..8,
        dead in 0usize..8,
        vnodes in 32usize..128,
        keys in hashes(),
    ) {
        let dead = (dead % backends) as u32;
        let full = Router::new(backends, vnodes);
        let mut ring = FailoverRing::new(backends, vnodes);
        prop_assert!(ring.mark_dead(dead));
        prop_assert!(!ring.mark_dead(dead), "second mark must be a no-op");
        for &hash in &keys {
            let before = full.route(hash);
            let after = ring.route(hash).expect("survivors remain");
            prop_assert!(after != dead, "routed to a dead backend");
            if before != dead {
                prop_assert_eq!(
                    before, after,
                    "a survivor's key moved when another backend died"
                );
            }
        }
    }

    /// Failover is monotone: any sequence of deaths, fully undone in
    /// any order, restores the exact pre-death mapping — a bounced
    /// backend gets all of its keys back and nothing else shuffles.
    #[test]
    fn revival_restores_the_exact_predeath_mapping(
        backends in 2usize..8,
        kill_mask in 0u8..255,
        reverse_revival in any::<bool>(),
        vnodes in 32usize..96,
        keys in hashes(),
    ) {
        let mut ring = FailoverRing::new(backends, vnodes);
        let before: Vec<_> = keys.iter().map(|&k| ring.route(k)).collect();
        // Kill the masked subset (never all of them), then revive in
        // forward or reverse order — the end state must not depend on
        // the order deaths and revivals interleaved.
        let mut killed: Vec<u32> = (0..backends as u32)
            .filter(|&id| kill_mask & (1 << id) != 0)
            .collect();
        if killed.len() == backends {
            killed.pop();
        }
        for &id in &killed {
            prop_assert!(ring.mark_dead(id));
        }
        // While down, nothing routes to a dead backend.
        for &hash in &keys {
            let owner = ring.route(hash).expect("survivors remain");
            prop_assert!(!killed.contains(&owner));
        }
        if reverse_revival {
            killed.reverse();
        }
        for &id in &killed {
            prop_assert!(ring.mark_alive(id));
        }
        let after: Vec<_> = keys.iter().map(|&k| ring.route(k)).collect();
        prop_assert_eq!(before, after, "revival must restore the exact mapping");
    }

    /// The hedge target is always alive, never the primary, and agrees
    /// with the ring that would exist if the excluded set were dead —
    /// so a hedged request lands exactly where failover would send it.
    #[test]
    fn hedge_target_matches_the_failover_ring(
        backends in 2usize..8,
        vnodes in 32usize..96,
        keys in hashes(),
    ) {
        let ring = FailoverRing::new(backends, vnodes);
        for &hash in keys.iter().take(128) {
            let primary = ring.route(hash).expect("all alive");
            let hedge = ring
                .route_excluding(hash, &[primary])
                .expect("backends >= 2");
            prop_assert!(hedge != primary, "hedge must avoid the primary");
            let mut without = FailoverRing::new(backends, vnodes);
            prop_assert!(without.mark_dead(primary));
            prop_assert_eq!(without.route(hash), Some(hedge));
        }
    }

    /// The recovery re-homing contract: a key that round-trips through
    /// the persist codec routes to the same backend as the original on
    /// any ring — so warm-loading each recovered record into
    /// `backends[router.route(key.mix())]` puts it exactly where a live
    /// request for the same key will look.
    #[test]
    fn recovered_keys_route_like_live_keys(
        key in arb_key(),
        backends in 1usize..9,
        vnodes in 32usize..128,
    ) {
        let decoded = decode_key(&encode_key(&key)).expect("codec round-trip");
        prop_assert_eq!(&decoded, &key);
        let router = Router::new(backends, vnodes);
        prop_assert_eq!(router.route(decoded.mix()), router.route(key.mix()));
    }
}
