//! Property tests for TinyLFU cache admission: a popular working set
//! must survive a one-pass scan of cold keys (scan resistance), and
//! turning admission off must restore plain-LRU behavior exactly.

use proptest::prelude::*;

use gb_service::cache::{CacheKey, CachedResult, LruCache, ShardedCache};
use gb_service::proto::Algorithm;

const HOT_KEYS: u64 = 16;
const SCAN_KEYS: u64 = 10_000;

fn key(fingerprint: u64) -> CacheKey {
    CacheKey::new(fingerprint, Algorithm::Hf, 16, 1.0)
}

fn value(seed: u64) -> CachedResult {
    CachedResult::new(vec![seed as f64], 1.0, 2.0, 0.25)
}

/// Warm the hot set: lookups record frequency in the sketch, inserts
/// populate the cache.
fn warm_hot_set(cache: &mut LruCache, passes: u64) {
    for pass in 0..passes {
        for k in 0..HOT_KEYS {
            if cache.get(&key(k)).is_none() && pass == 0 {
                cache.put(key(k), value(k));
            }
        }
    }
}

/// One pass over `SCAN_KEYS` distinct cold keys, each looked up once
/// (a miss) and then inserted — the classic cache-wrecking scan.
fn scan_cold_keys(cache: &mut LruCache) {
    for c in 0..SCAN_KEYS {
        let k = key(1_000_000 + c);
        let _ = cache.get(&k);
        cache.put(k, value(c));
    }
}

fn hot_retained(cache: &LruCache) -> usize {
    (0..HOT_KEYS).filter(|&k| cache.contains(&key(k))).count()
}

proptest! {
    // Each case runs a 10k-key scan; keep the case count modest so the
    // suite stays fast on one core.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// TinyLFU: one-hit-wonder scan traffic must not displace a hot set
    /// that has real reuse — ≥ 90 % of the 16 hot keys survive the scan.
    #[test]
    fn hot_set_survives_cold_scan_with_admission(
        warm_passes in 2u64..8,
        capacity in 16usize..64,
    ) {
        let mut cache = LruCache::with_admission(capacity);
        warm_hot_set(&mut cache, warm_passes);
        prop_assert_eq!(hot_retained(&cache), HOT_KEYS as usize);
        scan_cold_keys(&mut cache);
        let retained = hot_retained(&cache);
        prop_assert!(
            retained as f64 >= 0.9 * HOT_KEYS as f64,
            "only {}/{} hot keys survived the scan (capacity {}, {} warm passes)",
            retained, HOT_KEYS, capacity, warm_passes
        );
    }

    /// `admission: off` preserves plain LRU: the same scan flushes the
    /// hot set completely and leaves exactly the `capacity` most recent
    /// cold keys resident.
    #[test]
    fn admission_off_preserves_plain_lru(
        warm_passes in 2u64..8,
        capacity in 16usize..64,
    ) {
        let mut cache = LruCache::new(capacity);
        warm_hot_set(&mut cache, warm_passes);
        scan_cold_keys(&mut cache);
        prop_assert_eq!(
            hot_retained(&cache), 0,
            "plain LRU must evict the hot set under a larger-than-capacity scan"
        );
        // The survivors are precisely the scan's most recent keys.
        prop_assert_eq!(cache.len(), capacity);
        for c in (SCAN_KEYS - capacity as u64)..SCAN_KEYS {
            prop_assert!(cache.contains(&key(1_000_000 + c)));
        }
    }

    /// The sharded front preserves the same scan resistance: shard
    /// selection splits both hot and cold traffic, and each shard's
    /// filter protects its slice of the hot set.
    #[test]
    fn sharded_cache_hot_set_survives_scan(shards in 1usize..9) {
        let cache = ShardedCache::new(64, shards, true);
        for pass in 0..4u64 {
            for k in 0..HOT_KEYS {
                if cache.get(&key(k)).is_none() && pass == 0 {
                    cache.put(key(k), value(k));
                }
            }
        }
        for c in 0..SCAN_KEYS {
            let k = key(1_000_000 + c);
            let _ = cache.get(&k);
            cache.put(k, value(c));
        }
        let retained = (0..HOT_KEYS).filter(|&k| cache.contains(&key(k))).count();
        prop_assert!(
            retained as f64 >= 0.9 * HOT_KEYS as f64,
            "only {}/{} hot keys survived with {} shards",
            retained, HOT_KEYS, shards
        );
    }
}

#[test]
fn admission_rejections_are_counted() {
    let mut cache = LruCache::with_admission(16);
    warm_hot_set(&mut cache, 4);
    scan_cold_keys(&mut cache);
    let stats = cache.stats();
    assert!(
        stats.admission_rejects > 0,
        "a full cache under scan must reject one-hit wonders"
    );
}
