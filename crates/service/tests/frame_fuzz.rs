//! Property tests for `FrameReader`: how a byte stream is chunked across
//! `read` calls must never change what is parsed from it.
//!
//! Random mixes of valid lines, `\r\n` endings, garbage, non-UTF-8,
//! oversized frames, binary frames (valid and corrupt-length) and torn
//! tails are fed through the reader twice — once as a single read, once
//! split at random points — and the full event sequences (lines, binary
//! payloads, errors, EOF) must match exactly.

use std::io::{self, Read};

use gb_service::proto::{Frame, FrameError, FrameReader, BIN_HDR, MAGIC, MAX_FRAME};
use proptest::prelude::*;

/// One observable step of the reader, in a comparable form.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    Line(String),
    Binary(Vec<u8>),
    TooLong,
    NotUtf8,
    Corrupt,
    Torn,
    Eof,
}

/// Drains a reader to EOF, collecting every event. `Pending` cannot
/// occur here: the test readers never return `WouldBlock`.
fn events<R: Read>(reader: R) -> Vec<Ev> {
    let mut fr = FrameReader::new(reader);
    let mut out = Vec::new();
    loop {
        let ev = match fr.poll_line() {
            Ok(Frame::Line(s)) => Ev::Line(s),
            Ok(Frame::Binary(p)) => Ev::Binary(p),
            Ok(Frame::Eof) => {
                out.push(Ev::Eof);
                return out;
            }
            Ok(Frame::Pending) => panic!("test reader returned Pending"),
            Err(FrameError::TooLong) => Ev::TooLong,
            Err(FrameError::NotUtf8) => Ev::NotUtf8,
            Err(FrameError::Corrupt) => Ev::Corrupt,
            Err(FrameError::Torn) => Ev::Torn,
            Err(FrameError::Io(e)) => panic!("unexpected io error: {e}"),
        };
        out.push(ev);
        assert!(out.len() < 10_000, "reader failed to reach EOF");
    }
}

/// Hands out `data` in chunks whose boundaries fall at `cuts`
/// (positions into the stream), regardless of the caller's buffer size.
struct Chunked {
    data: Vec<u8>,
    cuts: Vec<usize>,
    pos: usize,
}

impl Read for Chunked {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let next_cut = self
            .cuts
            .iter()
            .copied()
            .filter(|&c| c > self.pos)
            .min()
            .unwrap_or(self.data.len())
            .min(self.data.len());
        let take = (next_cut - self.pos).min(buf.len());
        buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }
}

/// Renders one scripted segment into wire bytes. A "torn" segment only
/// actually tears the stream when it is last — otherwise its bytes fuse
/// with the next segment, which is exactly what TCP would do, and the
/// one-shot reference parse fuses them identically.
fn segment_bytes(kind: u32, param: u32) -> Vec<u8> {
    match kind % 7 {
        0 => format!("req-{param}\n").into_bytes(),
        1 => format!("garbage {param} with spaces\r\n").into_bytes(),
        2 => {
            let mut b = vec![0xFF, 0xFE, 0xC0];
            b.extend_from_slice(format!("{param}").as_bytes());
            b.push(b'\n');
            b
        }
        3 => {
            let mut b = vec![b'x'; MAX_FRAME + 1 + (param as usize % 64)];
            b.push(b'\n');
            b
        }
        4 => bin_frame(&param.to_le_bytes().repeat(1 + param as usize % 4)),
        5 => {
            // Corrupt length header: declares more than MAX_FRAME. The
            // trailing newline gives the resync a boundary to find.
            let mut b = vec![MAGIC];
            b.extend_from_slice(&((MAX_FRAME as u32) + 1 + param % 1000).to_le_bytes());
            b.extend_from_slice(format!("junk-{param}\n").as_bytes());
            b
        }
        _ => format!("torn-tail-{param}").into_bytes(),
    }
}

/// A well-formed binary frame around `payload`.
fn bin_frame(payload: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(BIN_HDR + payload.len());
    b.push(MAGIC);
    b.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    b.extend_from_slice(payload);
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn chunking_never_changes_the_event_sequence(
        segments in prop::collection::vec((0u32..7, any::<u32>()), 1..6),
        cut_seeds in prop::collection::vec(any::<u64>(), 0..12),
    ) {
        let mut data = Vec::new();
        for &(kind, param) in &segments {
            data.extend_from_slice(&segment_bytes(kind, param));
        }
        let mut cuts: Vec<usize> = cut_seeds
            .iter()
            .map(|&s| (s % (data.len() as u64 + 1)) as usize)
            .collect();
        cuts.sort_unstable();
        cuts.dedup();

        let reference = events(&data[..]);
        let chunked = events(Chunked { data, cuts: cuts.clone(), pos: 0 });
        prop_assert_eq!(
            &reference,
            &chunked,
            "event divergence with cuts {:?}",
            cuts
        );
        // Sanity on the sequence shape itself.
        prop_assert_eq!(reference.last(), Some(&Ev::Eof));
        prop_assert_eq!(
            reference.iter().filter(|e| **e == Ev::Eof).count(),
            1
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn small_streams_survive_byte_at_a_time_reads(
        segments in prop::collection::vec((0u32..3, 0u32..1000), 1..5),
        tear in any::<u32>(),
    ) {
        let mut data = Vec::new();
        for &(kind, param) in &segments {
            data.extend_from_slice(&segment_bytes(kind, param));
        }
        if tear % 2 == 0 {
            data.extend_from_slice(b"half a frame");
        }
        let reference = events(&data[..]);
        let cuts: Vec<usize> = (0..data.len()).collect();
        let bytewise = events(Chunked { data, cuts, pos: 0 });
        prop_assert_eq!(reference, bytewise);
    }
}

#[test]
fn torn_tail_appears_exactly_once_at_eof() {
    let evs = events(&b"ok\nleftover"[..]);
    assert_eq!(
        evs,
        vec![Ev::Line("ok".into()), Ev::Torn, Ev::Eof],
        "a non-empty partial line at close must surface as Torn"
    );
}

#[test]
fn binary_frames_survive_any_split() {
    let payload = vec![0x00, 0x0A, MAGIC, b'{', 0xFF]; // worst-case bytes
    let mut data = bin_frame(&payload);
    data.extend_from_slice(b"req-1\n");
    data.extend_from_slice(&bin_frame(b""));
    let reference = events(&data[..]);
    assert_eq!(
        reference,
        vec![
            Ev::Binary(payload),
            Ev::Line("req-1".into()),
            Ev::Binary(vec![]),
            Ev::Eof
        ]
    );
    for cut in 0..data.len() {
        let chunked = events(Chunked {
            data: data.clone(),
            cuts: vec![cut],
            pos: 0,
        });
        assert_eq!(chunked, reference, "divergence at cut {cut}");
    }
}

/// A corrupt declared length must not allocate gigabytes: the reader
/// reports `Corrupt`, performs a bounded skip to the next plausible
/// frame boundary, and picks up the following frames.
#[test]
fn corrupt_binary_length_resyncs_without_allocating() {
    // Declares ~4 GiB; only the real bytes are ever buffered.
    let mut data = vec![MAGIC];
    data.extend_from_slice(&u32::MAX.to_le_bytes());
    data.extend_from_slice(b"stray bytes\n");
    data.extend_from_slice(b"after\n");
    data.extend_from_slice(&bin_frame(b"ok"));
    let reference = events(&data[..]);
    assert_eq!(
        reference,
        vec![
            Ev::Corrupt,
            Ev::Line("after".into()),
            Ev::Binary(b"ok".to_vec()),
            Ev::Eof
        ]
    );
    for cut in 0..data.len() {
        let chunked = events(Chunked {
            data: data.clone(),
            cuts: vec![cut],
            pos: 0,
        });
        assert_eq!(chunked, reference, "divergence at cut {cut}");
    }
}

/// Resync may also land on a raw `MAGIC` byte (no newline in between):
/// the next binary frame is picked up directly.
#[test]
fn corrupt_binary_resyncs_to_next_magic() {
    let mut data = vec![MAGIC];
    data.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
    data.extend_from_slice(&[0x01, 0x02, 0x03]); // junk without newline
    data.extend_from_slice(&bin_frame(b"next"));
    let evs = events(&data[..]);
    assert_eq!(
        evs,
        vec![Ev::Corrupt, Ev::Binary(b"next".to_vec()), Ev::Eof]
    );
}

#[test]
fn partial_binary_frame_at_eof_is_torn() {
    let mut data = bin_frame(b"whole");
    data.extend_from_slice(&[MAGIC, 0x05, 0x00]); // header cut short
    let evs = events(&data[..]);
    assert_eq!(evs, vec![Ev::Binary(b"whole".to_vec()), Ev::Torn, Ev::Eof]);
}

#[test]
fn oversized_then_valid_resyncs_under_any_split() {
    let mut data = vec![b'y'; MAX_FRAME + 33];
    data.push(b'\n');
    data.extend_from_slice(b"after\n");
    let reference = events(&data[..]);
    assert_eq!(
        reference,
        vec![Ev::TooLong, Ev::Line("after".into()), Ev::Eof]
    );
    // Splits around every interesting boundary, including the newline
    // straddling two reads.
    for cut in [1, MAX_FRAME, MAX_FRAME + 33, MAX_FRAME + 34, MAX_FRAME + 35] {
        let chunked = events(Chunked {
            data: data.clone(),
            cuts: vec![cut],
            pos: 0,
        });
        assert_eq!(chunked, reference, "divergence at cut {cut}");
    }
}
