//! Property tests for the wire protocol: whatever the encoder produces,
//! the decoder must reconstruct exactly; whatever violates the framing
//! rules must be rejected, never mangled into a plausible request.

use proptest::prelude::*;

use gb_service::proto::{
    binary_ok_tail, json_hit_reply, json_ok_tail, Algorithm, BalanceRequest, BalanceResponse,
    Codec, ErrorCode, Frame, FrameError, FrameReader, Json, Request, Response, WireCodec, BIN_HDR,
    MAGIC, MAX_FRAME,
};
use gb_service::spec::ProblemSpec;

/// Encodes with `codec` and strips the framing, returning the payload
/// the decoder sees (the newline for JSON, the 5-byte header for
/// binary) after asserting the frame is well-formed.
fn deframe(codec: WireCodec, frame: &[u8]) -> Vec<u8> {
    match codec {
        WireCodec::Json => {
            assert_eq!(frame.last(), Some(&b'\n'), "JSON frames end in newline");
            frame[..frame.len() - 1].to_vec()
        }
        WireCodec::Binary => {
            assert_eq!(frame[0], MAGIC);
            let len = u32::from_le_bytes(frame[1..BIN_HDR].try_into().unwrap()) as usize;
            assert_eq!(len, frame.len() - BIN_HDR, "length prefix matches body");
            frame[BIN_HDR..].to_vec()
        }
    }
}

fn request_round_trip(codec: WireCodec, req: &Request) -> Request {
    let mut frame = Vec::new();
    codec.encode_request(req, &mut frame);
    codec
        .decode_request(&deframe(codec, &frame))
        .expect("round trip decodes")
}

fn response_round_trip(codec: WireCodec, resp: &Response) -> Response {
    let mut frame = Vec::new();
    codec.encode_response(resp, &mut frame);
    codec
        .decode_response(&deframe(codec, &frame))
        .expect("round trip decodes")
}

fn algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Hf),
        Just(Algorithm::Ba),
        Just(Algorithm::BaHf),
        Just(Algorithm::Phf),
    ]
}

fn error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::BadRequest),
        Just(ErrorCode::Overloaded),
        Just(ErrorCode::Timeout),
        Just(ErrorCode::ShuttingDown),
        Just(ErrorCode::Internal),
    ]
}

fn problem_spec() -> impl Strategy<Value = ProblemSpec> {
    prop_oneof![
        (1u64..1_000_000, 0..1_000u64).prop_map(|(w, seed)| ProblemSpec::Synthetic {
            weight: w as f64 / 1000.0,
            lo: 0.1,
            hi: 0.5,
            seed,
        }),
        (1usize..5_000, 0..100u64).prop_map(|(refinements, seed)| ProblemSpec::FeTree {
            refinements,
            bias: 0.75,
            seed,
        }),
        (1usize..100, 1usize..100, 0usize..5, 0..100u64).prop_map(
            |(rows, cols, hotspots, seed)| ProblemSpec::Grid {
                rows,
                cols,
                hotspots,
                seed,
            }
        ),
        (1usize..6, 1u64..50, 0..100u64).prop_map(|(dims, sharp, seed)| {
            ProblemSpec::Quadrature {
                dims,
                sharpness: sharp as f64,
                min_width: 0.01,
                seed,
            }
        }),
        (1usize..5_000, 2usize..16, 0..100u64).prop_map(|(nodes, branch, seed)| {
            ProblemSpec::SearchTree {
                nodes,
                branch,
                seed,
            }
        }),
        (1usize..5_000, any::<bool>(), 0..100u64)
            .prop_map(|(tasks, heavy, seed)| { ProblemSpec::TaskList { tasks, heavy, seed } }),
    ]
}

fn balance_request() -> impl Strategy<Value = BalanceRequest> {
    (
        any::<bool>(),
        0..u64::MAX / 2,
        algorithm(),
        1usize..4096,
        1u64..100,
        any::<bool>(),
        problem_spec(),
    )
        .prop_map(
            |(has_id, id, algorithm, n, theta_tenths, want_pieces, problem)| BalanceRequest {
                id: has_id.then_some(id),
                algorithm,
                n,
                theta: theta_tenths as f64 / 10.0,
                deadline_ms: (id % 3 == 0).then_some(id % 10_000),
                want_pieces,
                problem,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn balance_requests_round_trip(req in balance_request()) {
        let wire = Request::Balance(req);
        let line = wire.encode();
        prop_assert!(line.len() < MAX_FRAME, "encoded request too large");
        prop_assert!(!line.contains('\n'), "frames must be single lines");
        let decoded = Request::decode(&line);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded);
        prop_assert_eq!(decoded.unwrap(), wire);
    }

    #[test]
    fn ok_responses_round_trip(
        id in 0u64..u64::MAX / 2,
        alg in algorithm(),
        n in 1usize..4096,
        ratio_m in 1_000u64..100_000,
        micros in 0u64..10_000_000,
        pieces in prop::collection::vec(1u64..1_000_000, 0..64),
    ) {
        let resp = Response::Ok(BalanceResponse {
            id: Some(id),
            algorithm: alg,
            n,
            ratio: ratio_m as f64 / 1000.0,
            bound: ratio_m as f64 / 500.0,
            alpha: 0.25,
            cached: micros % 2 == 0,
            micros,
            pieces: pieces.iter().map(|&w| w as f64 / 1000.0).collect(),
        });
        let line = resp.encode();
        prop_assert!(!line.contains('\n'));
        let decoded = Response::decode(&line);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded);
        prop_assert_eq!(decoded.unwrap(), resp);
    }

    #[test]
    fn error_responses_round_trip(
        code in error_code(),
        has_id in any::<bool>(),
        id in 0u64..1_000_000,
        msg_seed in 0u64..1_000,
    ) {
        let resp = Response::Error {
            id: has_id.then_some(id),
            code,
            message: format!("failure #{msg_seed} with \"quotes\" and \\backslashes\\ and\tescapes"),
        };
        let decoded = Response::decode(&resp.encode());
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded);
        prop_assert_eq!(decoded.unwrap(), resp);
    }

    #[test]
    fn arbitrary_json_survives_reencoding(
        ints in prop::collection::vec(i64::MIN / 2..i64::MAX / 2, 1..8),
        key_seed in 0u64..1_000,
    ) {
        // Build a nested document, encode, parse, re-encode: fixpoint.
        let doc = Json::Obj(vec![
            (format!("k{key_seed}"), Json::Arr(ints.iter().map(|&i| Json::Int(i)).collect())),
            ("nested".into(), Json::Obj(vec![
                ("f".into(), Json::Num(key_seed as f64 / 7.0)),
                ("s".into(), Json::Str(format!("v{key_seed}\n\"end\""))),
                ("b".into(), Json::Bool(key_seed % 2 == 0)),
                ("z".into(), Json::Null),
            ])),
        ]);
        let once = doc.encode();
        let parsed = Json::parse(&once);
        prop_assert!(parsed.is_ok(), "parse failed: {:?}", parsed);
        let parsed = parsed.unwrap();
        prop_assert_eq!(&parsed, &doc);
        prop_assert_eq!(parsed.encode(), once);
    }

    /// Every request variant survives both codecs, and the two codecs
    /// agree on what they carried: binary-decode(binary-encode(x)) ==
    /// json-decode(json-encode(x)) == x.
    #[test]
    fn requests_round_trip_in_both_codecs(req in balance_request()) {
        for wire in [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Balance(req),
        ] {
            let via_json = request_round_trip(WireCodec::Json, &wire);
            let via_binary = request_round_trip(WireCodec::Binary, &wire);
            prop_assert_eq!(&via_json, &wire);
            prop_assert_eq!(&via_binary, &via_json);
        }
    }

    /// Every response variant survives both codecs and the codecs agree.
    #[test]
    fn responses_round_trip_in_both_codecs(
        has_id in any::<bool>(),
        id in 0u64..u64::MAX / 2,
        alg in algorithm(),
        n in 1usize..4096,
        ratio_m in 1_000u64..100_000,
        micros in 0u64..10_000_000,
        code in error_code(),
        pieces in prop::collection::vec(1u64..1_000_000, 0..64),
    ) {
        let stats = Json::Obj(vec![
            ("requests".into(), Json::Int(id as i64 % 100_000)),
            ("engine".into(), Json::Str("event".into())),
            ("rate".into(), Json::Num(ratio_m as f64 / 7.0)),
        ]);
        for resp in [
            Response::Pong,
            Response::Stats(stats),
            Response::Error {
                id: has_id.then_some(id),
                code,
                message: format!("err #{micros} with \"quotes\" and \u{1F600}"),
            },
            Response::Ok(BalanceResponse {
                id: has_id.then_some(id),
                algorithm: alg,
                n,
                ratio: ratio_m as f64 / 1000.0,
                bound: ratio_m as f64 / 500.0,
                alpha: 0.25,
                cached: micros % 2 == 0,
                micros,
                pieces: pieces.iter().map(|&w| w as f64 / 1000.0).collect(),
            }),
        ] {
            let via_json = response_round_trip(WireCodec::Json, &resp);
            let via_binary = response_round_trip(WireCodec::Binary, &resp);
            prop_assert_eq!(&via_json, &resp);
            prop_assert_eq!(&via_binary, &via_json);
        }
    }

    /// The spliced hit path must be byte-identical to the full encoder:
    /// a JSON client cannot tell a zero-copy cache hit from a freshly
    /// serialized reply.
    #[test]
    fn spliced_hit_replies_match_full_encoding(
        has_id in any::<bool>(),
        id in 0u64..u64::MAX / 2,
        alg in algorithm(),
        n in 1usize..4096,
        ratio_m in 1_000u64..100_000,
        micros in 0u64..10_000_000,
        pieces_raw in prop::collection::vec(1u64..1_000_000, 0..32),
    ) {
        let pieces: Vec<f64> = pieces_raw.iter().map(|&w| w as f64 / 1000.0).collect();
        let resp = Response::Ok(BalanceResponse {
            id: has_id.then_some(id),
            algorithm: alg,
            n,
            ratio: ratio_m as f64 / 1000.0,
            bound: ratio_m as f64 / 500.0,
            alpha: 0.25,
            cached: true,
            micros,
            pieces: pieces.clone(),
        });
        // JSON: splice id + micros into the invariant tail.
        let (tail, split) = json_ok_tail(
            alg, n, ratio_m as f64 / 1000.0, ratio_m as f64 / 500.0, 0.25, &pieces,
        );
        let mut spliced = Vec::new();
        json_hit_reply(&mut spliced, has_id.then_some(id), micros, &tail, split);
        let mut full = Vec::new();
        WireCodec::Json.encode_response(&resp, &mut full);
        prop_assert_eq!(&spliced, &full, "JSON splice diverged from encoder");
        // Binary: head + invariant tail.
        let (mut bin_spliced, mut bin_full) = (Vec::new(), Vec::new());
        let mut bin_tail = Vec::new();
        binary_ok_tail(
            alg, n, ratio_m as f64 / 1000.0, ratio_m as f64 / 500.0, 0.25, &pieces, &mut bin_tail,
        );
        gb_service::proto::binary_hit_reply(
            &mut bin_spliced, has_id.then_some(id), micros, &bin_tail,
        );
        WireCodec::Binary.encode_response(&resp, &mut bin_full);
        prop_assert_eq!(&bin_spliced, &bin_full, "binary splice diverged from encoder");
    }

    /// Mutated binary payloads must produce errors, never panics.
    #[test]
    fn mutated_binary_frames_never_panic(
        req in balance_request(),
        flip in 0usize..300,
        cut in 0usize..300,
    ) {
        let mut frame = Vec::new();
        WireCodec::Binary.encode_request(&Request::Balance(req), &mut frame);
        let payload = &frame[BIN_HDR..];
        let truncated = &payload[..payload.len().saturating_sub(cut % (payload.len() + 1))];
        let _ = WireCodec::Binary.decode_request(truncated);
        let mut mutated = payload.to_vec();
        if !mutated.is_empty() {
            let i = flip % mutated.len();
            mutated[i] = mutated[i].wrapping_add(1);
            let _ = WireCodec::Binary.decode_request(&mutated);
        }
        let _ = WireCodec::Binary.decode_response(payload);
    }

    #[test]
    fn mutated_frames_never_panic(req in balance_request(), cut in 1usize..200, flip in 0usize..200) {
        // Truncations and byte edits must produce Err or a valid request —
        // never a panic.
        let line = Request::Balance(req).encode();
        let truncated = &line[..line.len().saturating_sub(cut.min(line.len()))];
        let _ = Request::decode(truncated);
        let mut bytes = line.clone().into_bytes();
        if !bytes.is_empty() {
            let i = flip % bytes.len();
            bytes[i] = bytes[i].wrapping_add(1);
            if let Ok(s) = String::from_utf8(bytes) {
                let _ = Request::decode(&s);
            }
        }
    }
}

#[test]
fn malformed_frames_are_rejected() {
    for line in [
        "",
        "{}",
        "[]",
        "42",
        "{\"op\":\"balance\"}",
        "{\"op\":\"balance\",\"algorithm\":\"hf\",\"n\":4}",
        "{\"op\":\"nope\"}",
        "{\"op\":\"balance\",\"algorithm\":\"hf\",\"n\":4,\"problem\":{\"class\":\"synthetic\",\"weight\":-1.0,\"lo\":0.1,\"hi\":0.5,\"seed\":1}}",
        "not json at all",
        "{\"op\": \"balance\", \"algorithm\": \"hf\", \"n\": 1e99, \"problem\": {}}",
    ] {
        assert!(Request::decode(line).is_err(), "accepted {line:?}");
    }
}

#[test]
fn oversized_frame_is_rejected_and_stream_resyncs() {
    // A single line longer than MAX_FRAME must surface TooLong and the
    // next (valid) line must still be readable.
    let huge_padding = "x".repeat(MAX_FRAME + 1);
    let stream = format!("{huge_padding}\n{}\n", Request::Ping.encode());
    let mut reader = FrameReader::new(stream.as_bytes());
    assert!(matches!(reader.poll_line(), Err(FrameError::TooLong)));
    match reader.poll_line() {
        Ok(Frame::Line(line)) => {
            assert!(matches!(Request::decode(&line), Ok(Request::Ping)));
        }
        other => panic!("expected the ping line after resync, got {other:?}"),
    }
    assert!(matches!(reader.poll_line(), Ok(Frame::Eof)));
}

#[test]
fn exactly_max_frame_is_accepted() {
    // Boundary: a line of exactly MAX_FRAME bytes is legal.
    let body = "y".repeat(MAX_FRAME);
    let stream = format!("{body}\n");
    let mut reader = FrameReader::new(stream.as_bytes());
    match reader.poll_line() {
        Ok(Frame::Line(line)) => assert_eq!(line.len(), MAX_FRAME),
        other => panic!("expected max-size line, got {other:?}"),
    }
}
