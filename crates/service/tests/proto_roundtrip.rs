//! Property tests for the wire protocol: whatever the encoder produces,
//! the decoder must reconstruct exactly; whatever violates the framing
//! rules must be rejected, never mangled into a plausible request.

use proptest::prelude::*;

use gb_service::proto::{
    Algorithm, BalanceRequest, BalanceResponse, ErrorCode, Frame, FrameError, FrameReader, Json,
    Request, Response, MAX_FRAME,
};
use gb_service::spec::ProblemSpec;

fn algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Hf),
        Just(Algorithm::Ba),
        Just(Algorithm::BaHf),
        Just(Algorithm::Phf),
    ]
}

fn error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::BadRequest),
        Just(ErrorCode::Overloaded),
        Just(ErrorCode::Timeout),
        Just(ErrorCode::ShuttingDown),
        Just(ErrorCode::Internal),
    ]
}

fn problem_spec() -> impl Strategy<Value = ProblemSpec> {
    prop_oneof![
        (1u64..1_000_000, 0..1_000u64).prop_map(|(w, seed)| ProblemSpec::Synthetic {
            weight: w as f64 / 1000.0,
            lo: 0.1,
            hi: 0.5,
            seed,
        }),
        (1usize..5_000, 0..100u64).prop_map(|(refinements, seed)| ProblemSpec::FeTree {
            refinements,
            bias: 0.75,
            seed,
        }),
        (1usize..100, 1usize..100, 0usize..5, 0..100u64).prop_map(
            |(rows, cols, hotspots, seed)| ProblemSpec::Grid {
                rows,
                cols,
                hotspots,
                seed,
            }
        ),
        (1usize..6, 1u64..50, 0..100u64).prop_map(|(dims, sharp, seed)| {
            ProblemSpec::Quadrature {
                dims,
                sharpness: sharp as f64,
                min_width: 0.01,
                seed,
            }
        }),
        (1usize..5_000, 2usize..16, 0..100u64).prop_map(|(nodes, branch, seed)| {
            ProblemSpec::SearchTree {
                nodes,
                branch,
                seed,
            }
        }),
        (1usize..5_000, any::<bool>(), 0..100u64)
            .prop_map(|(tasks, heavy, seed)| { ProblemSpec::TaskList { tasks, heavy, seed } }),
    ]
}

fn balance_request() -> impl Strategy<Value = BalanceRequest> {
    (
        any::<bool>(),
        0..u64::MAX / 2,
        algorithm(),
        1usize..4096,
        1u64..100,
        any::<bool>(),
        problem_spec(),
    )
        .prop_map(
            |(has_id, id, algorithm, n, theta_tenths, want_pieces, problem)| BalanceRequest {
                id: has_id.then_some(id),
                algorithm,
                n,
                theta: theta_tenths as f64 / 10.0,
                deadline_ms: (id % 3 == 0).then_some(id % 10_000),
                want_pieces,
                problem,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn balance_requests_round_trip(req in balance_request()) {
        let wire = Request::Balance(req);
        let line = wire.encode();
        prop_assert!(line.len() < MAX_FRAME, "encoded request too large");
        prop_assert!(!line.contains('\n'), "frames must be single lines");
        let decoded = Request::decode(&line);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded);
        prop_assert_eq!(decoded.unwrap(), wire);
    }

    #[test]
    fn ok_responses_round_trip(
        id in 0u64..u64::MAX / 2,
        alg in algorithm(),
        n in 1usize..4096,
        ratio_m in 1_000u64..100_000,
        micros in 0u64..10_000_000,
        pieces in prop::collection::vec(1u64..1_000_000, 0..64),
    ) {
        let resp = Response::Ok(BalanceResponse {
            id: Some(id),
            algorithm: alg,
            n,
            ratio: ratio_m as f64 / 1000.0,
            bound: ratio_m as f64 / 500.0,
            alpha: 0.25,
            cached: micros % 2 == 0,
            micros,
            pieces: pieces.iter().map(|&w| w as f64 / 1000.0).collect(),
        });
        let line = resp.encode();
        prop_assert!(!line.contains('\n'));
        let decoded = Response::decode(&line);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded);
        prop_assert_eq!(decoded.unwrap(), resp);
    }

    #[test]
    fn error_responses_round_trip(
        code in error_code(),
        has_id in any::<bool>(),
        id in 0u64..1_000_000,
        msg_seed in 0u64..1_000,
    ) {
        let resp = Response::Error {
            id: has_id.then_some(id),
            code,
            message: format!("failure #{msg_seed} with \"quotes\" and \\backslashes\\ and\tescapes"),
        };
        let decoded = Response::decode(&resp.encode());
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded);
        prop_assert_eq!(decoded.unwrap(), resp);
    }

    #[test]
    fn arbitrary_json_survives_reencoding(
        ints in prop::collection::vec(i64::MIN / 2..i64::MAX / 2, 1..8),
        key_seed in 0u64..1_000,
    ) {
        // Build a nested document, encode, parse, re-encode: fixpoint.
        let doc = Json::Obj(vec![
            (format!("k{key_seed}"), Json::Arr(ints.iter().map(|&i| Json::Int(i)).collect())),
            ("nested".into(), Json::Obj(vec![
                ("f".into(), Json::Num(key_seed as f64 / 7.0)),
                ("s".into(), Json::Str(format!("v{key_seed}\n\"end\""))),
                ("b".into(), Json::Bool(key_seed % 2 == 0)),
                ("z".into(), Json::Null),
            ])),
        ]);
        let once = doc.encode();
        let parsed = Json::parse(&once);
        prop_assert!(parsed.is_ok(), "parse failed: {:?}", parsed);
        let parsed = parsed.unwrap();
        prop_assert_eq!(&parsed, &doc);
        prop_assert_eq!(parsed.encode(), once);
    }

    #[test]
    fn mutated_frames_never_panic(req in balance_request(), cut in 1usize..200, flip in 0usize..200) {
        // Truncations and byte edits must produce Err or a valid request —
        // never a panic.
        let line = Request::Balance(req).encode();
        let truncated = &line[..line.len().saturating_sub(cut.min(line.len()))];
        let _ = Request::decode(truncated);
        let mut bytes = line.clone().into_bytes();
        if !bytes.is_empty() {
            let i = flip % bytes.len();
            bytes[i] = bytes[i].wrapping_add(1);
            if let Ok(s) = String::from_utf8(bytes) {
                let _ = Request::decode(&s);
            }
        }
    }
}

#[test]
fn malformed_frames_are_rejected() {
    for line in [
        "",
        "{}",
        "[]",
        "42",
        "{\"op\":\"balance\"}",
        "{\"op\":\"balance\",\"algorithm\":\"hf\",\"n\":4}",
        "{\"op\":\"nope\"}",
        "{\"op\":\"balance\",\"algorithm\":\"hf\",\"n\":4,\"problem\":{\"class\":\"synthetic\",\"weight\":-1.0,\"lo\":0.1,\"hi\":0.5,\"seed\":1}}",
        "not json at all",
        "{\"op\": \"balance\", \"algorithm\": \"hf\", \"n\": 1e99, \"problem\": {}}",
    ] {
        assert!(Request::decode(line).is_err(), "accepted {line:?}");
    }
}

#[test]
fn oversized_frame_is_rejected_and_stream_resyncs() {
    // A single line longer than MAX_FRAME must surface TooLong and the
    // next (valid) line must still be readable.
    let huge_padding = "x".repeat(MAX_FRAME + 1);
    let stream = format!("{huge_padding}\n{}\n", Request::Ping.encode());
    let mut reader = FrameReader::new(stream.as_bytes());
    assert!(matches!(reader.poll_line(), Err(FrameError::TooLong)));
    match reader.poll_line() {
        Ok(Frame::Line(line)) => {
            assert!(matches!(Request::decode(&line), Ok(Request::Ping)));
        }
        other => panic!("expected the ping line after resync, got {other:?}"),
    }
    assert!(matches!(reader.poll_line(), Ok(Frame::Eof)));
}

#[test]
fn exactly_max_frame_is_accepted() {
    // Boundary: a line of exactly MAX_FRAME bytes is legal.
    let body = "y".repeat(MAX_FRAME);
    let stream = format!("{body}\n");
    let mut reader = FrameReader::new(stream.as_bytes());
    match reader.poll_line() {
        Ok(Frame::Line(line)) => assert_eq!(line.len(), MAX_FRAME),
        other => panic!("expected max-size line, got {other:?}"),
    }
}
