//! Crash-recovery tests for the persistent result store.
//!
//! Two restart stories:
//!
//! * in-process: a server with a store computes a hot set, shuts down
//!   gracefully (draining the spill queue), and a successor opened on
//!   the same directory serves the whole set from cache;
//! * out-of-process: a real `gb-serve` child is SIGKILLed mid-flight, a
//!   torn frame is stamped onto the newest segment, and the restarted
//!   daemon recovers every durable record, skips the torn tail without
//!   panicking, and serves the pre-kill hot set warm (>= 90% hits).

use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use gb_service::client::Client;
use gb_service::persist::StoreSettings;
use gb_service::proto::{Algorithm, BalanceRequest, Json, Request, Response};
use gb_service::server::{Server, ServerConfig, Tuning};
use gb_service::spec::ProblemSpec;

static NEXT_DIR: AtomicU32 = AtomicU32::new(0);

/// A unique temp directory removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "gb-store-recovery-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn hot_request(id: u64, seed: u64) -> Request {
    Request::Balance(BalanceRequest {
        id: Some(id),
        algorithm: Algorithm::Hf,
        n: 16,
        theta: 1.0,
        deadline_ms: None,
        want_pieces: false,
        problem: ProblemSpec::Synthetic {
            weight: 1.0,
            lo: 0.25,
            hi: 0.5,
            seed,
        },
    })
}

/// One pass over the hot set; returns how many replies were cache hits.
fn hot_set_pass(addr: SocketAddr, distinct: u64, id_base: u64) -> u64 {
    let mut client = Client::connect(addr).expect("hot-set connect");
    let mut cached = 0;
    for seed in 0..distinct {
        match client
            .call(&hot_request(id_base + seed, seed))
            .expect("call")
        {
            Response::Ok(ok) => cached += u64::from(ok.cached),
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    cached
}

fn stats(addr: SocketAddr) -> Json {
    match Client::connect(addr)
        .and_then(|mut c| c.call(&Request::Stats))
        .expect("stats call")
    {
        Response::Stats(stats) => stats,
        other => panic!("expected stats, got {other:?}"),
    }
}

fn store_counter(stats: &Json, name: &str) -> u64 {
    stats
        .get("store")
        .and_then(|s| s.get(name))
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("stats missing store.{name}"))
}

/// Polls until `store.<name>` reaches `want` — spill writes are
/// asynchronous to the replies that triggered them.
fn await_store_counter(addr: SocketAddr, name: &str, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let have = store_counter(&stats(addr), name);
        if have >= want {
            return have;
        }
        assert!(
            Instant::now() < deadline,
            "store.{name} stuck at {have}, wanted >= {want}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn store_tuning(dir: &Path) -> Tuning {
    Tuning {
        store: Some(StoreSettings::new(dir)),
        ..Tuning::default()
    }
}

fn small_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 256,
        pool_threads: 2,
    }
}

/// Graceful restart: shutdown drains the spill queue, so the successor
/// recovers the full hot set and serves it entirely from cache.
#[test]
fn graceful_restart_serves_hot_set_from_disk() {
    const DISTINCT: u64 = 16;
    let dir = TempDir::new("graceful");

    let first = Server::start_tuned(small_config(), store_tuning(&dir.0)).expect("first server");
    let cached = hot_set_pass(first.local_addr(), DISTINCT, 0);
    assert_eq!(cached, 0, "first pass must be all cold");
    await_store_counter(first.local_addr(), "appended", DISTINCT);
    first.shutdown();

    let second = Server::start_tuned(small_config(), store_tuning(&dir.0)).expect("second server");
    let addr = second.local_addr();
    let cached = hot_set_pass(addr, DISTINCT, DISTINCT);
    assert_eq!(cached, DISTINCT, "every replayed key must be a warm hit");
    let stats = stats(addr);
    assert!(
        store_counter(&stats, "recovered") >= DISTINCT,
        "recovered counter must cover the hot set"
    );
    assert_eq!(store_counter(&stats, "corrupt_skipped"), 0);
    second.shutdown();
}

/// A restart WITHOUT a store directory is the control: the successor
/// starts cold and recovers nothing.
#[test]
fn restart_without_store_is_cold() {
    const DISTINCT: u64 = 8;
    let first = Server::start_tuned(small_config(), Tuning::default()).expect("first server");
    hot_set_pass(first.local_addr(), DISTINCT, 0);
    first.shutdown();

    let second = Server::start_tuned(small_config(), Tuning::default()).expect("second server");
    let cached = hot_set_pass(second.local_addr(), DISTINCT, DISTINCT);
    assert_eq!(cached, 0, "no store: the restart must be fully cold");
    assert!(
        stats(second.local_addr()).get("store").is_none(),
        "stats must not report a store section when none is configured"
    );
    second.shutdown();
}

// ---------------------------------------------------------------------------
// Out-of-process SIGKILL recovery
// ---------------------------------------------------------------------------

/// A spawned `gb-serve` child and its bound address.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(store_dir: &Path) -> Daemon {
        Self::spawn_with(store_dir, &[])
    }

    /// Spawns with extra flags appended after `--store-dir` (so store
    /// modifiers like `--store-sync` are accepted).
    fn spawn_with(store_dir: &Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_gb-serve"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--store-dir",
                store_dir.to_str().expect("utf8 store dir"),
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn gb-serve");
        // The daemon prints "gb-serve listening on ADDR (... engine)".
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("daemon banner line")
            .expect("read daemon banner");
        let addr = banner
            .strip_prefix("gb-serve listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|token| token.parse().ok())
            .unwrap_or_else(|| panic!("unparseable banner: {banner:?}"));
        Daemon { child, addr }
    }

    /// SIGKILL — no drop handlers, no drain, exactly like a crash.
    fn kill(mut self) {
        self.child.kill().expect("kill daemon");
        let _ = self.child.wait();
    }

    fn shutdown(mut self) {
        let _ = Client::connect(self.addr).and_then(|mut c| c.call(&Request::Shutdown));
        let _ = self.child.wait();
    }
}

/// Stamps a torn (half-written) frame onto the newest segment, as a
/// crash mid-append would leave behind.
fn stamp_torn_tail(store_dir: &Path) {
    let newest = std::fs::read_dir(store_dir)
        .expect("read store dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|x| x == "gbl")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("seg-"))
        })
        .max()
        .expect("at least one segment");
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&newest)
        .expect("open newest segment");
    // A frame header promising 100 payload bytes, followed by only 4:
    // recovery must classify this as a torn tail, not valid data.
    let mut torn = Vec::new();
    torn.extend_from_slice(&100u32.to_le_bytes());
    torn.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    torn.extend_from_slice(&[0x55; 4]);
    file.write_all(&torn).expect("stamp torn tail");
}

/// Restarting with MORE backends re-homes every recovered record: life 1
/// runs unsharded, life 2 shards across four backends, and each record
/// must land in the cache of the backend the new router assigns its key
/// to — warm hits prove it, because a record warmed into the wrong
/// backend is invisible to lookups.
#[test]
fn restart_with_more_backends_rehomes_every_record() {
    const DISTINCT: u64 = 32;
    let dir = TempDir::new("rehome");

    let first = Server::start_tuned(small_config(), store_tuning(&dir.0)).expect("first server");
    hot_set_pass(first.local_addr(), DISTINCT, 0);
    await_store_counter(first.local_addr(), "appended", DISTINCT);
    first.shutdown();

    let mut tuning = store_tuning(&dir.0);
    tuning.backends = 4;
    let second = Server::start_tuned(small_config(), tuning).expect("second server");
    let addr = second.local_addr();
    let cached = hot_set_pass(addr, DISTINCT, DISTINCT);
    assert_eq!(
        cached, DISTINCT,
        "every record must be re-homed to the backend that now owns its key"
    );
    let stats = stats(addr);
    let per_backend = match stats
        .get("backends")
        .and_then(|b| b.get("per_backend"))
        .cloned()
    {
        Some(Json::Arr(list)) => list,
        other => panic!("stats missing backends.per_backend: {other:?}"),
    };
    let populated = per_backend
        .iter()
        .filter(|b| {
            b.get("cache_len")
                .and_then(|v| v.as_u64())
                .is_some_and(|len| len > 0)
        })
        .count();
    assert!(
        populated >= 2,
        "recovery must spread the set across backends, populated {populated}/4"
    );
    second.shutdown();
}

/// The headline acceptance test: SIGKILL a live daemon, corrupt the log
/// tail, restart, and the successor serves the pre-kill hot set warm.
#[test]
fn sigkill_restart_recovers_hot_set_and_skips_torn_tail() {
    const DISTINCT: u64 = 32;
    let dir = TempDir::new("sigkill");

    let first = Daemon::spawn(&dir.0);
    let cached = hot_set_pass(first.addr, DISTINCT, 0);
    assert_eq!(cached, 0, "first pass must be all cold");
    // Durability gate: every record acknowledged by the store before the
    // kill. SIGKILL discards nothing the kernel already has.
    await_store_counter(first.addr, "appended", DISTINCT);
    first.kill();

    stamp_torn_tail(&dir.0);

    let second = Daemon::spawn(&dir.0);
    let cached = hot_set_pass(second.addr, DISTINCT, DISTINCT);
    let warm_rate = cached as f64 / DISTINCT as f64;
    let stats = stats(second.addr);
    let recovered = store_counter(&stats, "recovered");
    let corrupt_skipped = store_counter(&stats, "corrupt_skipped");
    second.shutdown();

    assert!(
        warm_rate >= 0.9,
        "hot set must survive the crash: warm rate {warm_rate} ({cached}/{DISTINCT})"
    );
    assert!(
        recovered >= DISTINCT,
        "recovered {recovered} must cover the hot set"
    );
    assert!(
        corrupt_skipped >= 1,
        "the stamped torn tail must be counted, got {corrupt_skipped}"
    );
}

/// Durability-mode acceptance: under `--store-sync data`, a record the
/// server has *reported synced* must survive a SIGKILL delivered while
/// the spill writer is still mid-stream — zero acknowledged-but-lost
/// entries. The kill lands deliberately before the full set is appended,
/// so the log tail may be torn; recovery must still produce at least
/// every synced record.
#[test]
fn store_sync_data_survives_sigkill_during_append() {
    const DISTINCT: u64 = 32;
    let dir = TempDir::new("sync-kill");

    let first = Daemon::spawn_with(&dir.0, &["--store-sync", "data"]);
    let cached = hot_set_pass(first.addr, DISTINCT, 0);
    assert_eq!(cached, 0, "first pass must be all cold");
    // Wait only until *some* records are fsynced, then kill while the
    // writer may still be appending and syncing the rest.
    await_store_counter(first.addr, "synced", DISTINCT / 4);
    let acknowledged = store_counter(&stats(first.addr), "synced");
    first.kill();

    let second = Daemon::spawn_with(&dir.0, &["--store-sync", "data"]);
    let stats = stats(second.addr);
    let recovered = store_counter(&stats, "recovered");
    let warm = hot_set_pass(second.addr, DISTINCT, DISTINCT);
    second.shutdown();

    assert!(
        recovered >= acknowledged,
        "acknowledged-but-lost entries: synced {acknowledged} before the kill, \
         recovered only {recovered}"
    );
    assert!(
        warm >= acknowledged,
        "warm hits {warm} must cover the {acknowledged} synced records"
    );
}
