//! Property tests for the self-balancing assignment layer.
//!
//! Two contracts meet here. The planner (`gb_rebal::plan`): every vnode
//! is assigned exactly once, never to a dead backend, the unbudgeted
//! HF assignment respects the Theorem 2 bound for the observed α, a
//! tick under the trigger moves nothing, and voluntary moves never
//! exceed the budget. The ring (`FailoverRing` with an explicit
//! assignment): assigned owners win over hash placement while alive,
//! dead owners fall back to the alive-subset hash ring per request, and
//! revival restores the assignment verbatim.

use proptest::prelude::*;

use gb_rebal::plan;
use gb_service::route::FailoverRing;

/// Positive, finite vnode weights (load is micros + hit cost, so zero
/// is legal input — the planner floors it — but strictly positive
/// values exercise the interesting paths).
fn arb_weights() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1e6, 1..96)
}

/// Raw owner picks; tests truncate to the vnode count and reduce mod
/// the backend count to make them legal.
fn arb_current() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..64, 96..97)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every vnode gets exactly one owner, and that owner is alive —
    /// dead backends are never targeted, whatever the budget/trigger.
    #[test]
    fn every_vnode_assigned_once_to_an_alive_backend(
        weights in arb_weights(),
        backends in 2u32..6,
        seed in any::<u64>(),
        trigger in 1.0f64..2.0,
        budget in 0usize..32,
    ) {
        let vnodes = weights.len();
        let current: Vec<u32> = (0..vnodes).map(|v| (seed.wrapping_add(v as u64) % backends as u64) as u32).collect();
        let alive: Vec<u32> = (0..backends).filter(|b| (seed >> b) & 1 == 1 || *b == 0).collect();
        let p = plan(&weights, &current, &alive, trigger, budget);
        prop_assert_eq!(p.owners.len(), vnodes, "one owner per vnode");
        if !p.skipped {
            for (v, &owner) in p.owners.iter().enumerate() {
                prop_assert!(
                    alive.contains(&owner),
                    "vnode {} assigned to dead backend {}", v, owner
                );
            }
        }
    }

    /// The unbudgeted HF assignment's max/mean never exceeds the
    /// Theorem 2 bound reported for the observed α.
    #[test]
    fn planned_imbalance_respects_the_hf_bound(
        weights in arb_weights(),
        backends in 2u32..6,
    ) {
        let vnodes = weights.len();
        let current = vec![0u32; vnodes];
        let alive: Vec<u32> = (0..backends).collect();
        // trigger 1.0 forces planning; unlimited budget so
        // planned == applied.
        let p = plan(&weights, &current, &alive, 1.0, usize::MAX);
        if !p.skipped {
            prop_assert!(p.bound >= 1.0);
            prop_assert!(
                p.planned_imbalance <= p.bound + 1e-9,
                "planned {} exceeds bound {} (alpha {})",
                p.planned_imbalance, p.bound, p.alpha
            );
        }
    }

    /// A tick whose imbalance sits at/under the trigger (with no
    /// orphans) moves zero vnodes and keeps the assignment unchanged.
    #[test]
    fn under_trigger_tick_is_a_noop(
        weights in arb_weights(),
        backends in 2u32..6,
        current in arb_current(),
    ) {
        // Make current legal for this backend count.
        let vnodes = weights.len().min(current.len());
        let weights = &weights[..vnodes];
        let current: Vec<u32> = current[..vnodes].iter().map(|&o| o % backends).collect();
        let alive: Vec<u32> = (0..backends).collect();
        // Compute the actual imbalance, then set the trigger just above
        // it: the tick must skip.
        let probe = plan(weights, &current, &alive, 1.0, usize::MAX);
        let trigger = probe.imbalance_before * 1.0001 + 1e-9;
        let p = plan(weights, &current, &alive, trigger, usize::MAX);
        prop_assert!(p.skipped);
        prop_assert!(p.moves.is_empty());
        prop_assert_eq!(p.owners, current);
    }

    /// Voluntary moves never exceed the budget; forced moves (dead
    /// owners) are exempt but account for every extra move.
    #[test]
    fn budget_bounds_voluntary_moves(
        weights in arb_weights(),
        backends in 2u32..6,
        budget in 0usize..24,
        seed in any::<u64>(),
    ) {
        let vnodes = weights.len();
        let current: Vec<u32> = (0..vnodes).map(|v| (seed.wrapping_mul(31).wrapping_add(v as u64) % backends as u64) as u32).collect();
        let alive: Vec<u32> = (0..backends).filter(|b| (seed >> (8 + b)) & 1 == 1 || *b == 0).collect();
        let p = plan(&weights, &current, &alive, 1.0, budget);
        let forced = p
            .moves
            .iter()
            .filter(|&&v| !alive.contains(&current[v]))
            .count();
        let voluntary = p.moves.len() - forced;
        prop_assert!(
            voluntary <= budget,
            "{} voluntary moves exceed budget {}", voluntary, budget
        );
        // Every orphaned vnode must have moved somewhere alive.
        if !p.skipped {
            for (v, &owner) in current.iter().enumerate() {
                if !alive.contains(&owner) {
                    prop_assert!(p.moves.contains(&v), "orphan vnode {} not moved", v);
                }
            }
        }
    }

    /// An explicit assignment overrides hash placement for every key
    /// while the owner is alive, falls back to the alive-subset hash
    /// ring when it dies, and snaps back verbatim on revival.
    #[test]
    fn ring_assignment_override_fallback_and_revival(
        backends in 2usize..6,
        vnodes_per in 4usize..16,
        owners_seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 32..128),
        victim in 0usize..6,
    ) {
        let victim = (victim % backends) as u32;
        let mut ring = FailoverRing::new(backends, vnodes_per);
        let count = ring.vnode_count();
        let owners: Vec<u32> = (0..count)
            .map(|v| (owners_seed.wrapping_add(v as u64 * 7919) % backends as u64) as u32)
            .collect();
        ring.set_assignment(Some(owners.clone()));
        for &key in &keys {
            let vnode = ring.vnode_of(key);
            prop_assert_eq!(ring.route(key), Some(owners[vnode]));
        }
        ring.mark_dead(victim);
        for &key in &keys {
            let vnode = ring.vnode_of(key);
            let got = ring.route(key).expect("survivors exist");
            prop_assert!(got != victim, "routed to a dead backend");
            if owners[vnode] != victim {
                prop_assert_eq!(got, owners[vnode], "live assignment must win");
            }
        }
        ring.mark_alive(victim);
        for &key in &keys {
            let vnode = ring.vnode_of(key);
            prop_assert_eq!(ring.route(key), Some(owners[vnode]), "revival restores assignment");
        }
    }
}
