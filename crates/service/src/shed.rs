//! Load shedding: a bounded MPMC queue that fails fast when full.
//!
//! The admission policy is deliberately *non-blocking*: when the queue is
//! at capacity, [`BoundedQueue::try_push`] returns the job to the caller
//! immediately so the connection thread can answer `overloaded` instead
//! of stacking latency on every queued request behind it. Consumers block
//! on [`BoundedQueue::pop`] until work arrives or the queue is closed and
//! drained — closing is how graceful shutdown lets in-flight requests
//! finish while refusing new ones.

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed the load.
    Full,
    /// The queue is closed — the server is shutting down.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` pending items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Attempts to enqueue without blocking. On `Err` the item is handed
    /// back so the caller can respond to the client.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut state = self.state.lock();
        if state.closed {
            return Err((item, PushError::Closed));
        }
        if state.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained (then returns `None` — the consumer should exit).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            self.available.wait(&mut state);
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// consumers drain what is left and then observe `None`.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Number of items currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn sheds_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err((item, PushError::Full)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn close_drains_then_stops_consumers() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        match q.try_push(3) {
            Err((_, PushError::Closed)) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn pop_blocks_until_item_arrives() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.pop());
        thread::sleep(Duration::from_millis(30));
        q.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(BoundedQueue::new(1024));
        let mut producers = Vec::new();
        for t in 0..4 {
            let q = Arc::clone(&q);
            producers.push(thread::spawn(move || {
                for i in 0..100 {
                    while q.try_push(t * 100 + i).is_err() {
                        thread::yield_now();
                    }
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut got = Vec::new();
        while let Some(x) = q.pop() {
            got.push(x);
        }
        assert_eq!(got.len(), 400);
    }
}
