//! Load shedding: bounded queues that fail fast when full.
//!
//! The admission policy is deliberately *non-blocking*: when a queue is
//! at capacity, `try_push` returns the job to the caller immediately so
//! the connection layer can answer `overloaded` instead of stacking
//! latency on every queued request behind it. Consumers block on `pop`
//! until work arrives or the queue is closed and drained — closing is
//! how graceful shutdown lets in-flight requests finish while refusing
//! new ones.
//!
//! Two implementations share those semantics:
//!
//! * [`BoundedQueue`] — one mutex-guarded `VecDeque`, the original
//!   single-choke-point design, kept as the `threaded` engine's queue
//!   and as the benchmark baseline. A push wakes exactly **one** sleeping
//!   consumer (`notify_one`); waking all of them just to have N−1 lose
//!   the race reacquiring the lock is the classic thundering herd.
//! * [`StealQueue`] — one bounded deque *per worker* plus stealing, in
//!   the idiom of `gb_parlb::pool`: producers round-robin across shards,
//!   a worker pops its own shard first and steals from siblings when
//!   empty. Capacity is enforced by a single aggregate depth counter, so
//!   `overloaded` and `shutting_down` behave exactly as with the global
//!   queue — only the lock hand-off contention is gone.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// A capacity limit refused the push — shed the load.
    Full(FullCause),
    /// The queue is closed — the server is shutting down.
    Closed,
}

/// Which capacity limit a [`PushError::Full`] hit: the refused queue's
/// own capacity, or the server-wide [`AggregateCap`] budget it shares
/// with its sibling queues. The shed itself is identical either way;
/// the cause exists so the overload error can report the limit that
/// actually bound instead of always naming the local one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FullCause {
    /// This queue's local capacity is exhausted.
    Local,
    /// The shared aggregate budget is exhausted.
    Aggregate,
}

// ---------------------------------------------------------------------------
// SlotGauge: leak-proof occupancy accounting
// ---------------------------------------------------------------------------

/// An atomic occupancy gauge whose increments are RAII tokens.
///
/// The serving path uses these for accounting that must be exact across
/// *every* exit path — a connection that dies mid-request, a worker that
/// loses the reply race, a thread that panics. A leaked decrement is the
/// "shedding tightens forever" failure mode: the gauge reads as
/// permanently occupied and admission keeps refusing work the server
/// could do. Tying the release to [`Drop`] makes that class of bug
/// unrepresentable — whoever holds the [`SlotToken`] releases the slot
/// by letting go of it, no matter how they exit.
#[derive(Debug, Clone, Default)]
pub struct SlotGauge {
    occupied: Arc<AtomicUsize>,
}

/// One occupied slot in a [`SlotGauge`]; dropping it releases the slot.
#[derive(Debug)]
pub struct SlotToken {
    occupied: Arc<AtomicUsize>,
}

impl SlotGauge {
    /// Creates an empty gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Occupies one slot; the slot is released when the token drops.
    pub fn acquire(&self) -> SlotToken {
        self.occupied.fetch_add(1, Ordering::AcqRel);
        SlotToken {
            occupied: Arc::clone(&self.occupied),
        }
    }

    /// Number of currently occupied slots.
    pub fn occupied(&self) -> usize {
        self.occupied.load(Ordering::Acquire)
    }
}

impl Drop for SlotToken {
    fn drop(&mut self) {
        self.occupied.fetch_sub(1, Ordering::AcqRel);
    }
}

// ---------------------------------------------------------------------------
// AggregateCap: one shed budget shared by several queues
// ---------------------------------------------------------------------------

/// A depth budget shared across several queues.
///
/// The sharded serving path gives each backend its own queue (so one hot
/// problem class cannot starve the others) with a *local* capacity, but
/// the global overload contract must not change: the server as a whole
/// still sheds at the same aggregate capacity it had with one queue.
/// Every backend queue holds the same `AggregateCap`; a push reserves a
/// slot in both the local and the aggregate budget (backing the local
/// reservation out if the aggregate is exhausted), and a pop releases
/// both. A queue built without an explicit cap gets a private one sized
/// to its own capacity, which makes the single-backend configuration
/// behave exactly as before.
#[derive(Debug)]
pub struct AggregateCap {
    depth: AtomicUsize,
    capacity: usize,
}

impl AggregateCap {
    /// A shareable budget of `capacity` total queued items.
    pub fn new(capacity: usize) -> Arc<AggregateCap> {
        assert!(capacity > 0, "aggregate capacity must be positive");
        Arc::new(AggregateCap {
            depth: AtomicUsize::new(0),
            capacity,
        })
    }

    /// Reserves one slot; `false` when the budget is exhausted (nothing
    /// is consumed in that case).
    fn try_reserve(&self) -> bool {
        if self.depth.fetch_add(1, Ordering::AcqRel) >= self.capacity {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        true
    }

    /// Returns one reserved slot.
    fn release(&self) {
        self.depth.fetch_sub(1, Ordering::AcqRel);
    }

    /// Items currently queued across every participating queue.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// The shared budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

// ---------------------------------------------------------------------------
// BoundedQueue: the single-lock MPMC queue
// ---------------------------------------------------------------------------

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer queue behind one mutex.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
    aggregate: Arc<AggregateCap>,
    /// Times a blocked `pop` returned from its condvar wait — with
    /// `notify_one` a push wakes exactly one sleeper, so this tracks
    /// pushes-while-contended rather than `N × pushes`.
    wakeups: AtomicU64,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` pending items, with
    /// a private aggregate budget of the same size (so the cap never
    /// binds before the local limit does).
    pub fn new(capacity: usize) -> Self {
        Self::with_cap(capacity, AggregateCap::new(capacity.max(1)))
    }

    /// Creates a queue with a local `capacity` that also reserves from a
    /// shared `aggregate` budget on every push.
    pub fn with_cap(capacity: usize, aggregate: Arc<AggregateCap>) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
            aggregate,
            wakeups: AtomicU64::new(0),
        }
    }

    /// Attempts to enqueue without blocking. On `Err` the item is handed
    /// back so the caller can respond to the client.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut state = self.state.lock();
        if state.closed {
            return Err((item, PushError::Closed));
        }
        if state.items.len() >= self.capacity {
            return Err((item, PushError::Full(FullCause::Local)));
        }
        if !self.aggregate.try_reserve() {
            return Err((item, PushError::Full(FullCause::Aggregate)));
        }
        state.items.push_back(item);
        drop(state);
        // One item became available: wake exactly one consumer.
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained (then returns `None` — the consumer should exit).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.aggregate.release();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            self.available.wait(&mut state);
            self.wakeups.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// consumers drain what is left and then observe `None`.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Number of items currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many times a blocked consumer woke from its condvar wait.
    /// Diagnostic: with `notify_one` semantics, a push into an idle
    /// N-consumer queue accounts for exactly one wakeup, not N.
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// StealQueue: per-worker deques + stealing
// ---------------------------------------------------------------------------

/// A bounded MPMC queue decomposed into one deque per consumer.
///
/// Producers pick a shard round-robin (one cheap, rarely contended lock
/// each); consumer `i` pops shard `i` first and steals FIFO from
/// siblings otherwise, mirroring `gb_parlb::pool`'s worker/stealer
/// split. A single aggregate [`depth`](Self::depth) counter preserves
/// the *global* load-shedding contract: `try_push` sheds when the sum
/// across all shards reaches capacity, exactly like [`BoundedQueue`].
///
/// Sleeping consumers use a short timed condvar wait (the `pool.rs`
/// idiom): a lost wakeup costs at most one tick of latency instead of
/// requiring a lock-coupled sleep registration on the push hot path.
pub struct StealQueue<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    depth: AtomicUsize,
    capacity: usize,
    aggregate: Arc<AggregateCap>,
    closed: AtomicBool,
    sleep_lock: Mutex<()>,
    available: Condvar,
    next_shard: AtomicUsize,
    steals: AtomicU64,
    wakeups: AtomicU64,
}

/// How long an idle [`StealQueue`] consumer sleeps between re-scans.
const IDLE_TICK: Duration = Duration::from_millis(1);

impl<T> StealQueue<T> {
    /// Creates a queue with one shard per `workers` consumer, admitting
    /// at most `capacity` items in total (private aggregate budget of
    /// the same size, so it never binds before the local limit).
    pub fn new(workers: usize, capacity: usize) -> Self {
        Self::with_cap(workers, capacity, AggregateCap::new(capacity.max(1)))
    }

    /// Creates a queue with a local `capacity` that also reserves from a
    /// shared `aggregate` budget on every push — the sharded server's
    /// per-backend configuration.
    pub fn with_cap(workers: usize, capacity: usize, aggregate: Arc<AggregateCap>) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        let workers = workers.max(1);
        Self {
            shards: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            depth: AtomicUsize::new(0),
            capacity,
            aggregate,
            closed: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            available: Condvar::new(),
            next_shard: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
        }
    }

    /// Attempts to enqueue without blocking; sheds against this queue's
    /// depth *and* the shared aggregate budget, so the global
    /// `overloaded` contract matches the single-queue design.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        if self.closed.load(Ordering::Acquire) {
            return Err((item, PushError::Closed));
        }
        // Reserve a slot in the local count first; back out on
        // overflow. This keeps the check-and-insert race window from
        // ever over-admitting.
        if self.depth.fetch_add(1, Ordering::AcqRel) >= self.capacity {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Err((item, PushError::Full(FullCause::Local)));
        }
        // Then the shared budget; roll the local reservation back if the
        // server as a whole is at capacity.
        if !self.aggregate.try_reserve() {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Err((item, PushError::Full(FullCause::Aggregate)));
        }
        // Closed may have been set between the first check and the
        // reservation; re-check so shutdown never loses a shed.
        if self.closed.load(Ordering::Acquire) {
            self.aggregate.release();
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Err((item, PushError::Closed));
        }
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[shard].lock().push_back(item);
        self.available.notify_one();
        Ok(())
    }

    fn try_pop(&self, worker: usize) -> Option<T> {
        let n = self.shards.len();
        // Own shard first, then steal from siblings in ring order.
        for k in 0..n {
            let shard = (worker + k) % n;
            let item = self.shards[shard].lock().pop_front();
            if let Some(item) = item {
                self.depth.fetch_sub(1, Ordering::AcqRel);
                self.aggregate.release();
                if k != 0 {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                }
                return Some(item);
            }
        }
        None
    }

    /// Blocks until an item is available (popping the worker's own shard
    /// first, stealing otherwise) or the queue is closed *and* drained.
    pub fn pop(&self, worker: usize) -> Option<T> {
        loop {
            if let Some(item) = self.try_pop(worker) {
                return Some(item);
            }
            if self.closed.load(Ordering::Acquire) && self.depth.load(Ordering::Acquire) == 0 {
                return None;
            }
            let mut guard = self.sleep_lock.lock();
            // Re-check under the sleep lock to shrink the lost-wakeup
            // window; the timed wait bounds whatever remains.
            if self.depth.load(Ordering::Acquire) == 0 && !self.closed.load(Ordering::Acquire) {
                self.available.wait_for(&mut guard, IDLE_TICK);
                self.wakeups.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// consumers drain what is left and then observe `None`.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.available.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Aggregate number of items currently queued across all shards.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// Configured aggregate capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of per-worker shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Pops that had to steal from a sibling shard.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Consumer wakeups from the idle wait (includes timed re-scans).
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn slot_gauge_tracks_tokens() {
        let g = SlotGauge::new();
        assert_eq!(g.occupied(), 0);
        let a = g.acquire();
        let b = g.acquire();
        assert_eq!(g.occupied(), 2);
        drop(a);
        assert_eq!(g.occupied(), 1);
        drop(b);
        assert_eq!(g.occupied(), 0);
    }

    /// Regression: the slot must be released even when the holder exits
    /// by panicking — a leaked slot is exactly the "shedding tightens
    /// forever" bug the gauge exists to rule out.
    #[test]
    fn slot_gauge_releases_on_panic() {
        let g = SlotGauge::new();
        let g2 = g.clone();
        let result = thread::spawn(move || {
            let _token = g2.acquire();
            panic!("worker died mid-request");
        })
        .join();
        assert!(result.is_err(), "the thread must have panicked");
        assert_eq!(g.occupied(), 0, "panic path leaked a slot");
    }

    #[test]
    fn sheds_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err((item, PushError::Full(FullCause::Local))) => assert_eq!(item, 3),
            other => panic!("expected local Full, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn close_drains_then_stops_consumers() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        match q.try_push(3) {
            Err((_, PushError::Closed)) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn pop_blocks_until_item_arrives() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.pop());
        thread::sleep(Duration::from_millis(30));
        q.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(BoundedQueue::new(1024));
        let mut producers = Vec::new();
        for t in 0..4 {
            let q = Arc::clone(&q);
            producers.push(thread::spawn(move || {
                for i in 0..100 {
                    while q.try_push(t * 100 + i).is_err() {
                        thread::yield_now();
                    }
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut got = Vec::new();
        while let Some(x) = q.pop() {
            got.push(x);
        }
        assert_eq!(got.len(), 400);
    }

    /// Regression: a push into a queue with N sleeping consumers must
    /// wake exactly one of them, not broadcast to all N. The wakeup
    /// counter increments once per wait-return, so a broadcast would
    /// count N wakeups for one push.
    #[test]
    fn push_wakes_exactly_one_sleeping_consumer() {
        const SLEEPERS: usize = 4;
        let q = Arc::new(BoundedQueue::new(16));
        let popped = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..SLEEPERS)
            .map(|_| {
                let q = Arc::clone(&q);
                let popped = Arc::clone(&popped);
                thread::spawn(move || {
                    while q.pop().is_some() {
                        popped.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        // Let all consumers reach their condvar wait.
        thread::sleep(Duration::from_millis(60));
        let wakeups_before = q.wakeups();
        q.try_push(7).unwrap();
        thread::sleep(Duration::from_millis(60));
        assert_eq!(popped.load(Ordering::SeqCst), 1, "one item, one pop");
        let woken = q.wakeups() - wakeups_before;
        assert_eq!(
            woken, 1,
            "a push with {SLEEPERS} sleepers must wake exactly one, woke {woken}"
        );
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
    }

    #[test]
    fn steal_queue_sheds_on_aggregate_depth() {
        let q = StealQueue::new(4, 3);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(q.try_push(3).is_ok());
        // Items landed on 3 different shards, but the aggregate cap is
        // what sheds — identical contract to the single queue.
        match q.try_push(4) {
            Err((item, PushError::Full(FullCause::Local))) => assert_eq!(item, 4),
            other => panic!("expected local Full, got {other:?}"),
        }
        assert_eq!(q.depth(), 3);
        assert_eq!(q.capacity(), 3);
        assert_eq!(q.workers(), 4);
    }

    /// The sharded-server contract: each queue sheds at its own local
    /// capacity (isolation) AND the set of queues sheds at the shared
    /// aggregate budget (unchanged global overload semantics).
    #[test]
    fn shared_cap_binds_across_queues_and_local_caps_isolate() {
        let cap = AggregateCap::new(4);
        let a = StealQueue::with_cap(1, 3, Arc::clone(&cap));
        let b = StealQueue::with_cap(1, 3, Arc::clone(&cap));
        for i in 0..3 {
            a.try_push(i).unwrap();
        }
        // Queue a is locally full even though the aggregate has room.
        match a.try_push(99) {
            Err((_, PushError::Full(FullCause::Local))) => {}
            other => panic!("expected local Full, got {other:?}"),
        }
        // Queue b has local room, but only one aggregate slot is left.
        b.try_push(10).unwrap();
        match b.try_push(11) {
            Err((_, PushError::Full(FullCause::Aggregate))) => {}
            other => panic!("expected aggregate Full, got {other:?}"),
        }
        assert_eq!(cap.depth(), 4);
        assert_eq!(a.depth(), 3);
        assert_eq!(b.depth(), 1);
        // Draining a returns budget that b can then use.
        assert_eq!(a.pop(0), Some(0));
        b.try_push(11).unwrap();
        assert_eq!(cap.depth(), 4);
    }

    /// The threaded engine's queue honors a shared budget the same way.
    #[test]
    fn bounded_queue_respects_a_shared_cap() {
        let cap = AggregateCap::new(2);
        let a = BoundedQueue::with_cap(8, Arc::clone(&cap));
        let b = BoundedQueue::with_cap(8, Arc::clone(&cap));
        a.try_push(1).unwrap();
        b.try_push(2).unwrap();
        match a.try_push(3) {
            Err((_, PushError::Full(FullCause::Aggregate))) => {}
            other => panic!("expected aggregate Full, got {other:?}"),
        }
        assert_eq!(b.pop(), Some(2));
        a.try_push(3).unwrap();
        assert_eq!(cap.depth(), 2);
    }

    #[test]
    fn steal_queue_worker_steals_from_siblings() {
        let q = StealQueue::new(4, 16);
        // Round-robin spreads these over shards 0..4.
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        // Worker 2 drains everything: one own pop, three steals.
        let mut got = Vec::new();
        for _ in 0..4 {
            got.push(q.pop(2).unwrap());
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(q.steals(), 3);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn steal_queue_close_drains_then_stops() {
        let q = StealQueue::new(2, 8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        let mut got = vec![q.pop(0).unwrap(), q.pop(1).unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
        match q.try_push(3) {
            Err((_, PushError::Closed)) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn steal_queue_blocked_pop_sees_later_push() {
        let q = Arc::new(StealQueue::new(3, 8));
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.pop(1));
        thread::sleep(Duration::from_millis(30));
        q.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn steal_queue_many_producers_many_consumers() {
        let q = Arc::new(StealQueue::new(4, 4096));
        let seen = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..4)
            .map(|w| {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                thread::spawn(move || {
                    while q.pop(w).is_some() {
                        seen.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..250 {
                        while q.try_push(t * 1000 + i).is_err() {
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        // Wait for the queue to drain before closing so nothing is lost.
        while q.depth() > 0 {
            thread::yield_now();
        }
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(seen.load(Ordering::SeqCst), 1000);
    }
}
