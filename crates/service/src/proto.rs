//! Wire protocol: newline-delimited JSON frames.
//!
//! One request per line, one response per line, UTF-8, `\n` terminated.
//! The JSON layer is hand-rolled (recursive-descent parser + writer) so
//! the daemon stays free of registry dependencies; the subset is full
//! JSON except that numbers are split into integer ([`Json::Int`]) and
//! floating ([`Json::Num`]) forms so `u64`-sized ids and seeds up to
//! `i64::MAX` round-trip exactly (floats use Rust's shortest-roundtrip
//! formatting, so finite values round-trip bit-for-bit too).
//!
//! ## Requests
//!
//! ```json
//! {"op":"balance","algorithm":"bahf","n":64,"theta":1.0,
//!  "problem":{"class":"synthetic","weight":1.0,"lo":0.1,"hi":0.5,"seed":7},
//!  "id":1,"deadline_ms":250}
//! {"op":"stats"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! ## Responses
//!
//! ```json
//! {"id":1,"status":"ok","algorithm":"bahf","n":64,"cached":false,
//!  "ratio":1.07,"bound":13.2,"alpha":0.1,"micros":412,"pieces":[...]}
//! {"id":1,"status":"error","code":"overloaded","message":"queue full"}
//! ```
//!
//! Frames longer than [`MAX_FRAME`] bytes are rejected before parsing —
//! the reader surfaces [`FrameError::TooLong`] so the server can answer
//! with a protocol error and resynchronise at the next newline.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read};

use crate::spec::ProblemSpec;

/// Hard ceiling on a single request/response line, in bytes.
pub const MAX_FRAME: usize = 256 * 1024;

/// Maximum nesting depth accepted by the JSON parser.
const MAX_DEPTH: u32 = 32;

// ---------------------------------------------------------------------------
// JSON value model
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer literal (no fraction or exponent) within `i64`.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, first key wins on lookup.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view (integers widen to `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialises to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialises to indented JSON text — for artifacts meant to be read
    /// and diffed by humans (benchmark reports), not for wire frames,
    /// which must stay single lines.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    for _ in 0..=depth {
                        out.push_str("  ");
                    }
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                for _ in 0..depth {
                    out.push_str("  ");
                }
                out.push(']');
            }
            Json::Obj(entries) if !entries.is_empty() => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    for _ in 0..=depth {
                        out.push_str("  ");
                    }
                    write_json_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                for _ in 0..depth {
                    out.push_str("  ");
                }
                out.push('}');
            }
            other => other.write(out),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's Display for f64 is shortest-roundtrip, but
                    // bare integers like `1` must stay distinguishable
                    // from Int on re-parse; tag them with `.0`.
                    let s = x.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/inf; encode as null (decoded as such).
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal (expected {text})")))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: accept but fold lone
                            // surrogates to the replacement character.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(char::from_u32(c).unwrap_or('\u{fffd}'));
                                } else {
                                    out.push('\u{fffd}');
                                }
                            } else {
                                out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn array(&mut self, depth: u32) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// The balancing algorithm to run for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Sequential Heaviest-First (instance optimal).
    Hf,
    /// Best Approximation on the work-stealing pool.
    Ba,
    /// BA with sequential-HF tails (Algorithm BA-HF).
    BaHf,
    /// Parallelised HF (same partition as HF).
    Phf,
}

impl Algorithm {
    /// All algorithms, for iteration/metrics indexing.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Hf,
        Algorithm::Ba,
        Algorithm::BaHf,
        Algorithm::Phf,
    ];

    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Hf => "hf",
            Algorithm::Ba => "ba",
            Algorithm::BaHf => "bahf",
            Algorithm::Phf => "phf",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "hf" => Some(Algorithm::Hf),
            "ba" => Some(Algorithm::Ba),
            "bahf" => Some(Algorithm::BaHf),
            "phf" => Some(Algorithm::Phf),
            _ => None,
        }
    }

    /// Dense index for metrics arrays.
    pub fn index(self) -> usize {
        match self {
            Algorithm::Hf => 0,
            Algorithm::Ba => 1,
            Algorithm::BaHf => 2,
            Algorithm::Phf => 3,
        }
    }
}

/// A balancing request.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Processor count `N`.
    pub n: usize,
    /// BA-HF θ parameter (ignored by the other algorithms).
    pub theta: f64,
    /// Per-request deadline in milliseconds, enforced at dequeue time.
    pub deadline_ms: Option<u64>,
    /// Whether the response should include the piece weights.
    pub want_pieces: bool,
    /// The problem to balance.
    pub problem: ProblemSpec,
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a balancing algorithm.
    Balance(BalanceRequest),
    /// Return server statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Drain in-flight work and stop the server.
    Shutdown,
}

impl Request {
    /// Encodes the request as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    /// The JSON form of the request.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Stats => Json::Obj(vec![("op".into(), Json::Str("stats".into()))]),
            Request::Ping => Json::Obj(vec![("op".into(), Json::Str("ping".into()))]),
            Request::Shutdown => Json::Obj(vec![("op".into(), Json::Str("shutdown".into()))]),
            Request::Balance(b) => {
                let mut entries = vec![("op".into(), Json::Str("balance".into()))];
                if let Some(id) = b.id {
                    entries.push(("id".into(), Json::Int(id as i64)));
                }
                entries.push(("algorithm".into(), Json::Str(b.algorithm.name().into())));
                entries.push(("n".into(), Json::Int(b.n as i64)));
                entries.push(("theta".into(), Json::Num(b.theta)));
                if let Some(d) = b.deadline_ms {
                    entries.push(("deadline_ms".into(), Json::Int(d as i64)));
                }
                if !b.want_pieces {
                    entries.push(("want_pieces".into(), Json::Bool(false)));
                }
                entries.push(("problem".into(), b.problem.to_json()));
                Json::Obj(entries)
            }
        }
    }

    /// Decodes one request line.
    pub fn decode(line: &str) -> Result<Request, ProtoError> {
        let json = Json::parse(line).map_err(|e| ProtoError::bad(e.to_string()))?;
        Self::from_json(&json)
    }

    /// Decodes a request from parsed JSON.
    pub fn from_json(json: &Json) -> Result<Request, ProtoError> {
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::bad("missing \"op\""))?;
        match op {
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "balance" => {
                let algorithm = json
                    .get("algorithm")
                    .and_then(Json::as_str)
                    .and_then(Algorithm::from_name)
                    .ok_or_else(|| {
                        ProtoError::bad("\"algorithm\" must be one of hf|ba|bahf|phf")
                    })?;
                let n = json
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ProtoError::bad("\"n\" must be a positive integer"))?;
                if n == 0 || n > crate::spec::MAX_PROCESSORS as u64 {
                    return Err(ProtoError::bad(format!(
                        "\"n\" must be in 1..={}",
                        crate::spec::MAX_PROCESSORS
                    )));
                }
                let theta = match json.get("theta") {
                    None => 1.0,
                    Some(v) => v
                        .as_f64()
                        .filter(|t| t.is_finite() && *t > 0.0)
                        .ok_or_else(|| ProtoError::bad("\"theta\" must be a positive number"))?,
                };
                let id = json.get("id").and_then(Json::as_u64);
                let deadline_ms = json.get("deadline_ms").and_then(Json::as_u64);
                let want_pieces = json
                    .get("want_pieces")
                    .and_then(Json::as_bool)
                    .unwrap_or(true);
                let problem = ProblemSpec::from_json(
                    json.get("problem")
                        .ok_or_else(|| ProtoError::bad("missing \"problem\""))?,
                )?;
                Ok(Request::Balance(BalanceRequest {
                    id,
                    algorithm,
                    n: n as usize,
                    theta,
                    deadline_ms,
                    want_pieces,
                    problem,
                }))
            }
            other => Err(ProtoError::bad(format!("unknown op \"{other}\""))),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Machine-readable error classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was malformed or semantically invalid.
    BadRequest,
    /// The bounded request queue was full (load shed).
    Overloaded,
    /// The request's deadline expired before execution started.
    Timeout,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// An unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Timeout => "timeout",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "bad_request" => Some(ErrorCode::BadRequest),
            "overloaded" => Some(ErrorCode::Overloaded),
            "timeout" => Some(ErrorCode::Timeout),
            "shutting_down" => Some(ErrorCode::ShuttingDown),
            "internal" => Some(ErrorCode::Internal),
            _ => None,
        }
    }

    /// Dense index for metrics arrays.
    pub fn index(self) -> usize {
        match self {
            ErrorCode::BadRequest => 0,
            ErrorCode::Overloaded => 1,
            ErrorCode::Timeout => 2,
            ErrorCode::ShuttingDown => 3,
            ErrorCode::Internal => 4,
        }
    }

    /// All codes, for metrics iteration.
    pub const ALL: [ErrorCode; 5] = [
        ErrorCode::BadRequest,
        ErrorCode::Overloaded,
        ErrorCode::Timeout,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
    ];
}

/// A successful balance result.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Algorithm that ran.
    pub algorithm: Algorithm,
    /// Processor count requested.
    pub n: usize,
    /// Achieved ratio `max_i w(p_i) / (w/N)`.
    pub ratio: f64,
    /// Analytic worst-case upper bound for the α in effect.
    pub bound: f64,
    /// The α used for the bound (class guarantee or empirical).
    pub alpha: f64,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// Server-side latency in microseconds (receipt → response ready).
    pub micros: u64,
    /// Piece weights (empty when the request set `want_pieces: false`).
    pub pieces: Vec<f64>,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Balancing succeeded.
    Ok(BalanceResponse),
    /// The request failed.
    Error {
        /// Echo of the request id, when one was parsed.
        id: Option<u64>,
        /// Error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Statistics snapshot (opaque JSON, see `metrics`).
    Stats(Json),
    /// Reply to `ping`.
    Pong,
}

impl Response {
    /// Encodes the response as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    /// The JSON form of the response.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Pong => Json::Obj(vec![
                ("status".into(), Json::Str("ok".into())),
                ("pong".into(), Json::Bool(true)),
            ]),
            Response::Stats(stats) => Json::Obj(vec![
                ("status".into(), Json::Str("ok".into())),
                ("stats".into(), stats.clone()),
            ]),
            Response::Error { id, code, message } => {
                let mut entries = Vec::new();
                if let Some(id) = id {
                    entries.push(("id".into(), Json::Int(*id as i64)));
                }
                entries.push(("status".into(), Json::Str("error".into())));
                entries.push(("code".into(), Json::Str(code.name().into())));
                entries.push(("message".into(), Json::Str(message.clone())));
                Json::Obj(entries)
            }
            Response::Ok(r) => {
                let mut entries = Vec::new();
                if let Some(id) = r.id {
                    entries.push(("id".into(), Json::Int(id as i64)));
                }
                entries.push(("status".into(), Json::Str("ok".into())));
                entries.push(("algorithm".into(), Json::Str(r.algorithm.name().into())));
                entries.push(("n".into(), Json::Int(r.n as i64)));
                entries.push(("cached".into(), Json::Bool(r.cached)));
                entries.push(("ratio".into(), Json::Num(r.ratio)));
                entries.push(("bound".into(), Json::Num(r.bound)));
                entries.push(("alpha".into(), Json::Num(r.alpha)));
                entries.push(("micros".into(), Json::Int(r.micros as i64)));
                entries.push((
                    "pieces".into(),
                    Json::Arr(r.pieces.iter().map(|&w| Json::Num(w)).collect()),
                ));
                Json::Obj(entries)
            }
        }
    }

    /// Decodes one response line.
    pub fn decode(line: &str) -> Result<Response, ProtoError> {
        let json = Json::parse(line).map_err(|e| ProtoError::bad(e.to_string()))?;
        let status = json
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::bad("missing \"status\""))?;
        match status {
            "error" => {
                let code = json
                    .get("code")
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::from_name)
                    .ok_or_else(|| ProtoError::bad("missing or unknown \"code\""))?;
                Ok(Response::Error {
                    id: json.get("id").and_then(Json::as_u64),
                    code,
                    message: json
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                })
            }
            "ok" => {
                if json.get("pong").is_some() {
                    return Ok(Response::Pong);
                }
                if let Some(stats) = json.get("stats") {
                    return Ok(Response::Stats(stats.clone()));
                }
                let algorithm = json
                    .get("algorithm")
                    .and_then(Json::as_str)
                    .and_then(Algorithm::from_name)
                    .ok_or_else(|| ProtoError::bad("ok response missing \"algorithm\""))?;
                let need_f64 = |key: &str| {
                    json.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| ProtoError::bad(format!("missing numeric \"{key}\"")))
                };
                let pieces = json
                    .get("pieces")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError::bad("missing \"pieces\""))?
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .ok_or_else(|| ProtoError::bad("bad piece weight"))
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                Ok(Response::Ok(BalanceResponse {
                    id: json.get("id").and_then(Json::as_u64),
                    algorithm,
                    n: json
                        .get("n")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ProtoError::bad("missing \"n\""))?
                        as usize,
                    cached: json.get("cached").and_then(Json::as_bool).unwrap_or(false),
                    ratio: need_f64("ratio")?,
                    bound: need_f64("bound")?,
                    alpha: need_f64("alpha")?,
                    micros: json.get("micros").and_then(Json::as_u64).unwrap_or(0),
                    pieces,
                }))
            }
            other => Err(ProtoError::bad(format!("unknown status \"{other}\""))),
        }
    }
}

/// A protocol-level error (malformed frame content).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Description of what was wrong.
    pub message: String,
}

impl ProtoError {
    fn bad(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Errors surfaced by [`FrameReader`].
#[derive(Debug)]
pub enum FrameError {
    /// A line exceeded [`MAX_FRAME`] bytes before its newline arrived.
    TooLong,
    /// A line was not valid UTF-8.
    NotUtf8,
    /// The peer closed the connection with a non-empty partial line
    /// pending — the frame was torn mid-write. Surfaced exactly once;
    /// the next poll reports [`Frame::Eof`].
    Torn,
    /// Underlying socket error (includes clean EOF as `UnexpectedEof`).
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLong => write!(f, "frame exceeds {MAX_FRAME} bytes"),
            FrameError::NotUtf8 => write!(f, "frame is not valid UTF-8"),
            FrameError::Torn => write!(f, "frame torn by EOF mid-line"),
            FrameError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental newline-delimited frame reader that tolerates read
/// timeouts: a `WouldBlock`/`TimedOut` read returns control to the caller
/// (yielding `Ok(None)`) while preserving any partial line, so servers
/// can poll a shutdown flag between reads.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    pending: VecDeque<u8>,
    /// When a frame overflows, remaining bytes up to the next newline are
    /// discarded so the stream resynchronises.
    discarding: bool,
    eof: bool,
}

/// One poll step of the frame reader.
#[derive(Debug)]
pub enum Frame {
    /// A complete line (newline stripped).
    Line(String),
    /// No complete line yet (timeout or short read); call again.
    Pending,
    /// Peer closed the connection cleanly.
    Eof,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a readable stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: vec![0u8; 8 * 1024],
            pending: VecDeque::new(),
            discarding: false,
            eof: false,
        }
    }

    /// Access to the wrapped stream (e.g. for readiness registration).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// True while [`poll_line`](Self::poll_line) can make progress
    /// without touching the socket: a complete line (or an overflow, or
    /// EOF) is sitting in the internal buffer with the descriptor
    /// itself drained. A readiness-driven caller must keep polling
    /// while this holds instead of sleeping on the descriptor — no
    /// readiness event will ever announce already-consumed bytes. A
    /// buffered *partial* line does not count: only a socket read can
    /// advance it, so readiness is the right thing to wait on.
    pub fn has_buffered(&self) -> bool {
        self.eof || self.pending.len() > MAX_FRAME || self.pending.iter().any(|&b| b == b'\n')
    }

    /// Reads until a full line, a timeout, EOF or an error.
    pub fn poll_line(&mut self) -> Result<Frame, FrameError> {
        loop {
            // Serve a complete line out of the pending buffer first.
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let oversized = pos > MAX_FRAME;
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop(); // newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if self.discarding {
                    self.discarding = false;
                    continue; // swallowed the tail of an oversized frame
                }
                if oversized {
                    // The whole line arrived in one batch but is over the
                    // limit; it is already consumed, so no discard needed.
                    return Err(FrameError::TooLong);
                }
                return match String::from_utf8(line) {
                    Ok(s) => Ok(Frame::Line(s)),
                    Err(_) => Err(FrameError::NotUtf8),
                };
            }
            if self.pending.len() > MAX_FRAME {
                if !self.discarding {
                    self.discarding = true;
                    self.pending.clear();
                    return Err(FrameError::TooLong);
                }
                self.pending.clear();
            }
            if self.eof {
                return Ok(Frame::Eof);
            }
            match self.inner.read(&mut self.buf) {
                Ok(0) => {
                    self.eof = true;
                    if self.discarding {
                        // The tail of an already-reported oversized frame
                        // never got its newline; the error was surfaced
                        // when the frame overflowed, so this is plain EOF.
                        self.discarding = false;
                        self.pending.clear();
                        return Ok(Frame::Eof);
                    }
                    if !self.pending.is_empty() {
                        // A non-empty partial line at EOF is a torn frame
                        // — the peer died mid-write. Silently swallowing
                        // it would hide a protocol violation from both
                        // metrics and the peer (which may only have shut
                        // down its write half and still reads replies).
                        self.pending.clear();
                        return Err(FrameError::Torn);
                    }
                    return Ok(Frame::Eof);
                }
                Ok(k) => {
                    self.pending.extend(&self.buf[..k]);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Frame::Pending);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_basic_values() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "3.25",
            "\"hi\\nthere\"",
            "[1,2.5,\"x\",null]",
            "{\"a\":1,\"b\":[true,{\"c\":\"d\"}]}",
        ] {
            let v = Json::parse(text).unwrap();
            let round = Json::parse(&v.encode()).unwrap();
            assert_eq!(v, round, "{text}");
        }
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        assert_eq!(Json::parse("5").unwrap(), Json::Int(5));
        assert_eq!(Json::parse("5.0").unwrap(), Json::Num(5.0));
        // A float that prints without a fraction re-parses as a float.
        let encoded = Json::Num(5.0).encode();
        assert_eq!(Json::parse(&encoded).unwrap(), Json::Num(5.0));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
            "nan",
            "--5",
            "\u{1}",
        ] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let mut s = String::new();
        for _ in 0..100 {
            s.push('[');
        }
        assert!(Json::parse(&s).is_err());
    }

    #[test]
    fn request_round_trip() {
        let req = Request::Balance(BalanceRequest {
            id: Some(42),
            algorithm: Algorithm::BaHf,
            n: 64,
            theta: 1.5,
            deadline_ms: Some(250),
            want_pieces: false,
            problem: ProblemSpec::Synthetic {
                weight: 2.0,
                lo: 0.1,
                hi: 0.5,
                seed: 7,
            },
        });
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(req, decoded);
        for r in [Request::Stats, Request::Ping, Request::Shutdown] {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::Ok(BalanceResponse {
            id: Some(1),
            algorithm: Algorithm::Hf,
            n: 8,
            ratio: 1.25,
            bound: 4.5,
            alpha: 0.3,
            cached: true,
            micros: 917,
            pieces: vec![0.25, 0.125, 0.625],
        });
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let err = Response::Error {
            id: None,
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        };
        assert_eq!(Response::decode(&err.encode()).unwrap(), err);
    }

    #[test]
    fn balance_request_validation() {
        // n = 0 rejected.
        let bad = r#"{"op":"balance","algorithm":"hf","n":0,"problem":{"class":"synthetic","weight":1.0,"lo":0.1,"hi":0.5,"seed":1}}"#;
        assert!(Request::decode(bad).is_err());
        // unknown algorithm rejected.
        let bad = r#"{"op":"balance","algorithm":"rr","n":4,"problem":{"class":"synthetic","weight":1.0,"lo":0.1,"hi":0.5,"seed":1}}"#;
        assert!(Request::decode(bad).is_err());
        // negative theta rejected.
        let bad = r#"{"op":"balance","algorithm":"hf","n":4,"theta":-1.0,"problem":{"class":"synthetic","weight":1.0,"lo":0.1,"hi":0.5,"seed":1}}"#;
        assert!(Request::decode(bad).is_err());
    }

    #[test]
    fn frame_reader_splits_lines_and_handles_eof() {
        let data = b"alpha\nbeta\r\ngamma" as &[u8];
        let mut fr = FrameReader::new(data);
        assert!(matches!(fr.poll_line().unwrap(), Frame::Line(s) if s == "alpha"));
        assert!(matches!(fr.poll_line().unwrap(), Frame::Line(s) if s == "beta"));
        // The unterminated tail is a torn frame, not a silent EOF.
        assert!(matches!(fr.poll_line(), Err(FrameError::Torn)));
        assert!(matches!(fr.poll_line().unwrap(), Frame::Eof));
    }

    #[test]
    fn frame_reader_clean_eof_is_not_torn() {
        let data = b"alpha\n" as &[u8];
        let mut fr = FrameReader::new(data);
        assert!(matches!(fr.poll_line().unwrap(), Frame::Line(s) if s == "alpha"));
        assert!(matches!(fr.poll_line().unwrap(), Frame::Eof));
        // Torn is surfaced at most once; clean EOF stays EOF forever.
        assert!(matches!(fr.poll_line().unwrap(), Frame::Eof));
    }

    #[test]
    fn frame_reader_rejects_oversized_then_resyncs() {
        let mut data = vec![b'x'; MAX_FRAME + 10];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let mut fr = FrameReader::new(&data[..]);
        assert!(matches!(fr.poll_line(), Err(FrameError::TooLong)));
        assert!(matches!(fr.poll_line().unwrap(), Frame::Line(s) if s == "ok"));
    }

    /// A reader that hands out the stream in caller-chosen chunks, so
    /// tests control exactly where read boundaries fall.
    struct Chunked<'a> {
        data: &'a [u8],
        cuts: Vec<usize>,
        pos: usize,
    }

    impl Read for Chunked<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let next_cut = self
                .cuts
                .iter()
                .copied()
                .find(|&c| c > self.pos)
                .unwrap_or(self.data.len())
                .min(self.data.len());
            let take = (next_cut - self.pos).min(buf.len());
            buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
            self.pos += take;
            Ok(take)
        }
    }

    #[test]
    fn oversized_resync_works_when_newline_straddles_reads() {
        // The oversized body arrives in one read, its terminating
        // newline in the next, and the follow-up frame in a third: the
        // reader must report TooLong once and then resynchronise.
        let mut data = vec![b'x'; MAX_FRAME + 7];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let body_end = MAX_FRAME + 7;
        let mut fr = FrameReader::new(Chunked {
            cuts: vec![body_end, body_end + 1],
            data: &data,
            pos: 0,
        });
        assert!(matches!(fr.poll_line(), Err(FrameError::TooLong)));
        assert!(matches!(fr.poll_line().unwrap(), Frame::Line(s) if s == "ok"));
        assert!(matches!(fr.poll_line().unwrap(), Frame::Eof));
    }

    #[test]
    fn oversized_tail_at_eof_is_not_double_reported() {
        // Overflow reported as TooLong; the unterminated discard tail at
        // EOF must not additionally count as a torn frame.
        let data = vec![b'x'; MAX_FRAME + 100];
        let mut fr = FrameReader::new(&data[..]);
        assert!(matches!(fr.poll_line(), Err(FrameError::TooLong)));
        assert!(matches!(fr.poll_line().unwrap(), Frame::Eof));
    }

    #[test]
    fn frame_reader_rejects_invalid_utf8() {
        let data = b"\xff\xfe\n" as &[u8];
        let mut fr = FrameReader::new(data);
        assert!(matches!(fr.poll_line(), Err(FrameError::NotUtf8)));
    }
}
