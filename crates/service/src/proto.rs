//! Wire protocol: newline-delimited JSON frames, plus a length-prefixed
//! binary codec negotiated per connection by first-byte sniff.
//!
//! JSON: one request per line, one response per line, UTF-8, `\n`
//! terminated. The JSON layer is hand-rolled (recursive-descent parser +
//! writer) so the daemon stays free of registry dependencies; the subset
//! is full JSON except that numbers are split into integer
//! ([`Json::Int`]) and floating ([`Json::Num`]) forms so `u64`-sized ids
//! and seeds up to `i64::MAX` round-trip exactly (floats use Rust's
//! shortest-roundtrip formatting, so finite values round-trip
//! bit-for-bit too).
//!
//! Binary: `[0xA7][len: u32 LE][payload]` — the magic byte `0xA7` is a
//! UTF-8 continuation byte, so no JSON line can start with it, and `{`
//! is not the magic, so no binary frame looks like JSON. The
//! [`FrameReader`] sniffs the first byte of every frame independently:
//! a connection may interleave codecs, and replies are written in the
//! codec of the request they answer. Payload layouts live behind the
//! [`Codec`] trait ([`JsonCodec`], [`BinaryCodec`]); the runtime
//! dispatcher is [`WireCodec`]. A declared length over [`MAX_FRAME`]
//! is a corrupt frame ([`FrameError::Corrupt`]): the reader never
//! allocates it, and resynchronises by a bounded skip to the next
//! newline or magic byte.
//!
//! ## Requests
//!
//! ```json
//! {"op":"balance","algorithm":"bahf","n":64,"theta":1.0,
//!  "problem":{"class":"synthetic","weight":1.0,"lo":0.1,"hi":0.5,"seed":7},
//!  "id":1,"deadline_ms":250}
//! {"op":"stats"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! ## Responses
//!
//! ```json
//! {"id":1,"status":"ok","algorithm":"bahf","n":64,"cached":false,
//!  "ratio":1.07,"bound":13.2,"alpha":0.1,"micros":412,"pieces":[...]}
//! {"id":1,"status":"error","code":"overloaded","message":"queue full"}
//! ```
//!
//! Frames longer than [`MAX_FRAME`] bytes are rejected before parsing —
//! the reader surfaces [`FrameError::TooLong`] so the server can answer
//! with a protocol error and resynchronise at the next newline.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read};

use crate::spec::ProblemSpec;

/// Hard ceiling on a single request/response frame, in bytes. For JSON
/// this bounds the line; for binary frames it bounds the declared
/// payload length (a larger declaration is [`FrameError::Corrupt`]).
pub const MAX_FRAME: usize = 256 * 1024;

/// First byte of every binary frame. `0xA7` is a UTF-8 continuation
/// byte: it can never begin a JSON text line, so one-byte sniffing is
/// unambiguous.
pub const MAGIC: u8 = 0xA7;

/// Bytes in a binary frame header: the magic byte plus a `u32` LE
/// payload length.
pub const BIN_HDR: usize = 5;

/// Maximum nesting depth accepted by the JSON parser.
const MAX_DEPTH: u32 = 32;

// ---------------------------------------------------------------------------
// JSON value model
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer literal (no fraction or exponent) within `i64`.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, first key wins on lookup.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view (integers widen to `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialises to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialises to indented JSON text — for artifacts meant to be read
    /// and diffed by humans (benchmark reports), not for wire frames,
    /// which must stay single lines.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    for _ in 0..=depth {
                        out.push_str("  ");
                    }
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                for _ in 0..depth {
                    out.push_str("  ");
                }
                out.push(']');
            }
            Json::Obj(entries) if !entries.is_empty() => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    for _ in 0..=depth {
                        out.push_str("  ");
                    }
                    write_json_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                for _ in 0..depth {
                    out.push_str("  ");
                }
                out.push('}');
            }
            other => other.write(out),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's Display for f64 is shortest-roundtrip, but
                    // bare integers like `1` must stay distinguishable
                    // from Int on re-parse; tag them with `.0`.
                    let s = x.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/inf; encode as null (decoded as such).
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal (expected {text})")))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: accept but fold lone
                            // surrogates to the replacement character.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(char::from_u32(c).unwrap_or('\u{fffd}'));
                                } else {
                                    out.push('\u{fffd}');
                                }
                            } else {
                                out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn array(&mut self, depth: u32) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// The balancing algorithm to run for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Sequential Heaviest-First (instance optimal).
    Hf,
    /// Best Approximation on the work-stealing pool.
    Ba,
    /// BA with sequential-HF tails (Algorithm BA-HF).
    BaHf,
    /// Parallelised HF (same partition as HF).
    Phf,
}

impl Algorithm {
    /// All algorithms, for iteration/metrics indexing.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Hf,
        Algorithm::Ba,
        Algorithm::BaHf,
        Algorithm::Phf,
    ];

    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Hf => "hf",
            Algorithm::Ba => "ba",
            Algorithm::BaHf => "bahf",
            Algorithm::Phf => "phf",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "hf" => Some(Algorithm::Hf),
            "ba" => Some(Algorithm::Ba),
            "bahf" => Some(Algorithm::BaHf),
            "phf" => Some(Algorithm::Phf),
            _ => None,
        }
    }

    /// Dense index for metrics arrays.
    pub fn index(self) -> usize {
        match self {
            Algorithm::Hf => 0,
            Algorithm::Ba => 1,
            Algorithm::BaHf => 2,
            Algorithm::Phf => 3,
        }
    }
}

/// A balancing request.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Processor count `N`.
    pub n: usize,
    /// BA-HF θ parameter (ignored by the other algorithms).
    pub theta: f64,
    /// Per-request deadline in milliseconds, enforced at dequeue time.
    pub deadline_ms: Option<u64>,
    /// Whether the response should include the piece weights.
    pub want_pieces: bool,
    /// The problem to balance.
    pub problem: ProblemSpec,
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a balancing algorithm.
    Balance(BalanceRequest),
    /// Return server statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Drain in-flight work and stop the server.
    Shutdown,
}

impl Request {
    /// Encodes the request as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    /// The JSON form of the request.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Stats => Json::Obj(vec![("op".into(), Json::Str("stats".into()))]),
            Request::Ping => Json::Obj(vec![("op".into(), Json::Str("ping".into()))]),
            Request::Shutdown => Json::Obj(vec![("op".into(), Json::Str("shutdown".into()))]),
            Request::Balance(b) => {
                let mut entries = vec![("op".into(), Json::Str("balance".into()))];
                if let Some(id) = b.id {
                    entries.push(("id".into(), Json::Int(id as i64)));
                }
                entries.push(("algorithm".into(), Json::Str(b.algorithm.name().into())));
                entries.push(("n".into(), Json::Int(b.n as i64)));
                entries.push(("theta".into(), Json::Num(b.theta)));
                if let Some(d) = b.deadline_ms {
                    entries.push(("deadline_ms".into(), Json::Int(d as i64)));
                }
                if !b.want_pieces {
                    entries.push(("want_pieces".into(), Json::Bool(false)));
                }
                entries.push(("problem".into(), b.problem.to_json()));
                Json::Obj(entries)
            }
        }
    }

    /// Decodes one request line.
    pub fn decode(line: &str) -> Result<Request, ProtoError> {
        let json = Json::parse(line).map_err(|e| ProtoError::bad(e.to_string()))?;
        Self::from_json(&json)
    }

    /// Decodes a request from parsed JSON.
    pub fn from_json(json: &Json) -> Result<Request, ProtoError> {
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::bad("missing \"op\""))?;
        match op {
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "balance" => {
                let algorithm = json
                    .get("algorithm")
                    .and_then(Json::as_str)
                    .and_then(Algorithm::from_name)
                    .ok_or_else(|| {
                        ProtoError::bad("\"algorithm\" must be one of hf|ba|bahf|phf")
                    })?;
                let n = json
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ProtoError::bad("\"n\" must be a positive integer"))?;
                if n == 0 || n > crate::spec::MAX_PROCESSORS as u64 {
                    return Err(ProtoError::bad(format!(
                        "\"n\" must be in 1..={}",
                        crate::spec::MAX_PROCESSORS
                    )));
                }
                let theta = match json.get("theta") {
                    None => 1.0,
                    Some(v) => v
                        .as_f64()
                        .filter(|t| t.is_finite() && *t > 0.0)
                        .ok_or_else(|| ProtoError::bad("\"theta\" must be a positive number"))?,
                };
                let id = json.get("id").and_then(Json::as_u64);
                let deadline_ms = json.get("deadline_ms").and_then(Json::as_u64);
                let want_pieces = json
                    .get("want_pieces")
                    .and_then(Json::as_bool)
                    .unwrap_or(true);
                let problem = ProblemSpec::from_json(
                    json.get("problem")
                        .ok_or_else(|| ProtoError::bad("missing \"problem\""))?,
                )?;
                Ok(Request::Balance(BalanceRequest {
                    id,
                    algorithm,
                    n: n as usize,
                    theta,
                    deadline_ms,
                    want_pieces,
                    problem,
                }))
            }
            other => Err(ProtoError::bad(format!("unknown op \"{other}\""))),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Machine-readable error classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was malformed or semantically invalid.
    BadRequest,
    /// The bounded request queue was full (load shed).
    Overloaded,
    /// The request's deadline expired before execution started.
    Timeout,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// An unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Timeout => "timeout",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "bad_request" => Some(ErrorCode::BadRequest),
            "overloaded" => Some(ErrorCode::Overloaded),
            "timeout" => Some(ErrorCode::Timeout),
            "shutting_down" => Some(ErrorCode::ShuttingDown),
            "internal" => Some(ErrorCode::Internal),
            _ => None,
        }
    }

    /// Dense index for metrics arrays.
    pub fn index(self) -> usize {
        match self {
            ErrorCode::BadRequest => 0,
            ErrorCode::Overloaded => 1,
            ErrorCode::Timeout => 2,
            ErrorCode::ShuttingDown => 3,
            ErrorCode::Internal => 4,
        }
    }

    /// All codes, for metrics iteration.
    pub const ALL: [ErrorCode; 5] = [
        ErrorCode::BadRequest,
        ErrorCode::Overloaded,
        ErrorCode::Timeout,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
    ];
}

/// A successful balance result.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Algorithm that ran.
    pub algorithm: Algorithm,
    /// Processor count requested.
    pub n: usize,
    /// Achieved ratio `max_i w(p_i) / (w/N)`.
    pub ratio: f64,
    /// Analytic worst-case upper bound for the α in effect.
    pub bound: f64,
    /// The α used for the bound (class guarantee or empirical).
    pub alpha: f64,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// Server-side latency in microseconds (receipt → response ready).
    pub micros: u64,
    /// Piece weights (empty when the request set `want_pieces: false`).
    pub pieces: Vec<f64>,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Balancing succeeded.
    Ok(BalanceResponse),
    /// The request failed.
    Error {
        /// Echo of the request id, when one was parsed.
        id: Option<u64>,
        /// Error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Statistics snapshot (opaque JSON, see `metrics`).
    Stats(Json),
    /// Reply to `ping`.
    Pong,
}

impl Response {
    /// Encodes the response as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    /// The JSON form of the response.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Pong => Json::Obj(vec![
                ("status".into(), Json::Str("ok".into())),
                ("pong".into(), Json::Bool(true)),
            ]),
            Response::Stats(stats) => Json::Obj(vec![
                ("status".into(), Json::Str("ok".into())),
                ("stats".into(), stats.clone()),
            ]),
            Response::Error { id, code, message } => {
                let mut entries = Vec::new();
                if let Some(id) = id {
                    entries.push(("id".into(), Json::Int(*id as i64)));
                }
                entries.push(("status".into(), Json::Str("error".into())));
                entries.push(("code".into(), Json::Str(code.name().into())));
                entries.push(("message".into(), Json::Str(message.clone())));
                Json::Obj(entries)
            }
            Response::Ok(r) => {
                let mut entries = Vec::new();
                if let Some(id) = r.id {
                    entries.push(("id".into(), Json::Int(id as i64)));
                }
                entries.push(("status".into(), Json::Str("ok".into())));
                entries.push(("algorithm".into(), Json::Str(r.algorithm.name().into())));
                entries.push(("n".into(), Json::Int(r.n as i64)));
                entries.push(("cached".into(), Json::Bool(r.cached)));
                entries.push(("ratio".into(), Json::Num(r.ratio)));
                entries.push(("bound".into(), Json::Num(r.bound)));
                entries.push(("alpha".into(), Json::Num(r.alpha)));
                entries.push(("micros".into(), Json::Int(r.micros as i64)));
                entries.push((
                    "pieces".into(),
                    Json::Arr(r.pieces.iter().map(|&w| Json::Num(w)).collect()),
                ));
                Json::Obj(entries)
            }
        }
    }

    /// Decodes one response line.
    pub fn decode(line: &str) -> Result<Response, ProtoError> {
        let json = Json::parse(line).map_err(|e| ProtoError::bad(e.to_string()))?;
        let status = json
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::bad("missing \"status\""))?;
        match status {
            "error" => {
                let code = json
                    .get("code")
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::from_name)
                    .ok_or_else(|| ProtoError::bad("missing or unknown \"code\""))?;
                Ok(Response::Error {
                    id: json.get("id").and_then(Json::as_u64),
                    code,
                    message: json
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                })
            }
            "ok" => {
                if json.get("pong").is_some() {
                    return Ok(Response::Pong);
                }
                if let Some(stats) = json.get("stats") {
                    return Ok(Response::Stats(stats.clone()));
                }
                let algorithm = json
                    .get("algorithm")
                    .and_then(Json::as_str)
                    .and_then(Algorithm::from_name)
                    .ok_or_else(|| ProtoError::bad("ok response missing \"algorithm\""))?;
                let need_f64 = |key: &str| {
                    json.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| ProtoError::bad(format!("missing numeric \"{key}\"")))
                };
                let pieces = json
                    .get("pieces")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError::bad("missing \"pieces\""))?
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .ok_or_else(|| ProtoError::bad("bad piece weight"))
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                Ok(Response::Ok(BalanceResponse {
                    id: json.get("id").and_then(Json::as_u64),
                    algorithm,
                    n: json
                        .get("n")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ProtoError::bad("missing \"n\""))?
                        as usize,
                    cached: json.get("cached").and_then(Json::as_bool).unwrap_or(false),
                    ratio: need_f64("ratio")?,
                    bound: need_f64("bound")?,
                    alpha: need_f64("alpha")?,
                    micros: json.get("micros").and_then(Json::as_u64).unwrap_or(0),
                    pieces,
                }))
            }
            other => Err(ProtoError::bad(format!("unknown status \"{other}\""))),
        }
    }
}

/// A protocol-level error (malformed frame content).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Description of what was wrong.
    pub message: String,
}

impl ProtoError {
    fn bad(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------

/// Encode/decode of complete wire frames for one payload format.
///
/// `encode_*` appends a **complete** frame — JSON line plus `\n`, or
/// magic byte, length and payload — so callers can batch frames into one
/// output buffer and hand it to a single vectored write. `decode_*`
/// takes the de-framed payload as produced by [`FrameReader`]: the line
/// without its newline for JSON, the length-prefixed payload for binary.
pub trait Codec {
    /// Appends one complete request frame to `out`.
    fn encode_request(&self, req: &Request, out: &mut Vec<u8>);
    /// Appends one complete response frame to `out`.
    fn encode_response(&self, resp: &Response, out: &mut Vec<u8>);
    /// Decodes a request from a de-framed payload.
    fn decode_request(&self, payload: &[u8]) -> Result<Request, ProtoError>;
    /// Decodes a response from a de-framed payload.
    fn decode_response(&self, payload: &[u8]) -> Result<Response, ProtoError>;
}

/// Runtime codec selector. Each frame on a connection picks its own
/// codec by first byte; replies go out in the codec of the request they
/// answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WireCodec {
    /// Newline-delimited JSON text (the v1 protocol; always accepted).
    #[default]
    Json,
    /// Length-prefixed binary frames (`[0xA7][len u32 LE][payload]`).
    Binary,
}

impl WireCodec {
    /// CLI/metrics name.
    pub fn name(self) -> &'static str {
        match self {
            WireCodec::Json => "json",
            WireCodec::Binary => "binary",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "json" => Some(WireCodec::Json),
            "binary" | "bin" => Some(WireCodec::Binary),
            _ => None,
        }
    }

    /// Dense index for per-codec tables (`[Json, Binary]`).
    pub fn index(self) -> usize {
        match self {
            WireCodec::Json => 0,
            WireCodec::Binary => 1,
        }
    }
}

impl Codec for WireCodec {
    fn encode_request(&self, req: &Request, out: &mut Vec<u8>) {
        match self {
            WireCodec::Json => JsonCodec.encode_request(req, out),
            WireCodec::Binary => BinaryCodec.encode_request(req, out),
        }
    }

    fn encode_response(&self, resp: &Response, out: &mut Vec<u8>) {
        match self {
            WireCodec::Json => JsonCodec.encode_response(resp, out),
            WireCodec::Binary => BinaryCodec.encode_response(resp, out),
        }
    }

    fn decode_request(&self, payload: &[u8]) -> Result<Request, ProtoError> {
        match self {
            WireCodec::Json => JsonCodec.decode_request(payload),
            WireCodec::Binary => BinaryCodec.decode_request(payload),
        }
    }

    fn decode_response(&self, payload: &[u8]) -> Result<Response, ProtoError> {
        match self {
            WireCodec::Json => JsonCodec.decode_response(payload),
            WireCodec::Binary => BinaryCodec.decode_response(payload),
        }
    }
}

/// The v1 newline-delimited JSON codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonCodec;

impl Codec for JsonCodec {
    fn encode_request(&self, req: &Request, out: &mut Vec<u8>) {
        out.extend_from_slice(req.encode().as_bytes());
        out.push(b'\n');
    }

    fn encode_response(&self, resp: &Response, out: &mut Vec<u8>) {
        out.extend_from_slice(resp.encode().as_bytes());
        out.push(b'\n');
    }

    fn decode_request(&self, payload: &[u8]) -> Result<Request, ProtoError> {
        let line = std::str::from_utf8(payload)
            .map_err(|_| ProtoError::bad("frame is not valid UTF-8"))?;
        Request::decode(line)
    }

    fn decode_response(&self, payload: &[u8]) -> Result<Response, ProtoError> {
        let line = std::str::from_utf8(payload)
            .map_err(|_| ProtoError::bad("frame is not valid UTF-8"))?;
        Response::decode(line)
    }
}

// Binary payload tags. Requests and responses use disjoint spaces only
// for readability; the reader always knows which it expects.
const REQ_PING: u8 = 0;
const REQ_STATS: u8 = 1;
const REQ_SHUTDOWN: u8 = 2;
const REQ_BALANCE: u8 = 3;
const RESP_PONG: u8 = 0;
const RESP_STATS: u8 = 1;
const RESP_ERROR: u8 = 2;
const RESP_OK: u8 = 3;

// Flag bits shared by the balance request and the ok/error responses.
const FLAG_ID: u8 = 1;
const FLAG_DEADLINE: u8 = 2;
const FLAG_WANT_PIECES: u8 = 4;

/// The length-prefixed binary codec.
///
/// Request payload: `tag u8` — for `balance` followed by
/// `flags u8, [id u64], algorithm u8, n u32, theta f64, [deadline u64],
/// problem` (see [`ProblemSpec::encode_binary`]). All integers LE,
/// floats as LE IEEE-754 bits, so values round-trip exactly.
///
/// Response payload: `tag u8` — `pong` is bare; `stats` carries the
/// stats object as JSON text (it is opaque, cold, and human-shaped);
/// `error` is `flags u8, [id u64], code u8, message (u32 len + UTF-8)`;
/// `ok` is a per-request head `flags u8, [id u64], cached u8,
/// micros u64` followed by the invariant tail `algorithm u8, n u32,
/// ratio f64, bound f64, alpha f64, count u32, pieces f64×count` — the
/// tail layout is shared with the encoded-reply cache, which stores it
/// pre-built and splices only the head per hit.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryCodec;

/// Reserves a binary frame header in `out`, returning the payload start
/// offset to pass to [`end_frame`].
fn begin_frame(out: &mut Vec<u8>) -> usize {
    out.push(MAGIC);
    out.extend_from_slice(&[0u8; 4]);
    out.len()
}

/// Patches the length field of a frame opened by [`begin_frame`].
fn end_frame(out: &mut [u8], payload_start: usize) {
    let len = (out.len() - payload_start) as u32;
    out[payload_start - 4..payload_start].copy_from_slice(&len.to_le_bytes());
}

impl Codec for BinaryCodec {
    fn encode_request(&self, req: &Request, out: &mut Vec<u8>) {
        let start = begin_frame(out);
        match req {
            Request::Ping => out.push(REQ_PING),
            Request::Stats => out.push(REQ_STATS),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
            Request::Balance(b) => {
                out.push(REQ_BALANCE);
                let mut flags = 0u8;
                if b.id.is_some() {
                    flags |= FLAG_ID;
                }
                if b.deadline_ms.is_some() {
                    flags |= FLAG_DEADLINE;
                }
                if b.want_pieces {
                    flags |= FLAG_WANT_PIECES;
                }
                out.push(flags);
                if let Some(id) = b.id {
                    out.extend_from_slice(&id.to_le_bytes());
                }
                out.push(b.algorithm.index() as u8);
                out.extend_from_slice(&(b.n as u32).to_le_bytes());
                out.extend_from_slice(&b.theta.to_le_bytes());
                if let Some(d) = b.deadline_ms {
                    out.extend_from_slice(&d.to_le_bytes());
                }
                b.problem.encode_binary(out);
            }
        }
        end_frame(out, start);
    }

    fn encode_response(&self, resp: &Response, out: &mut Vec<u8>) {
        let start = begin_frame(out);
        match resp {
            Response::Pong => out.push(RESP_PONG),
            Response::Stats(stats) => {
                out.push(RESP_STATS);
                out.extend_from_slice(stats.encode().as_bytes());
            }
            Response::Error { id, code, message } => {
                out.push(RESP_ERROR);
                out.push(if id.is_some() { FLAG_ID } else { 0 });
                if let Some(id) = id {
                    out.extend_from_slice(&id.to_le_bytes());
                }
                out.push(code.index() as u8);
                out.extend_from_slice(&(message.len() as u32).to_le_bytes());
                out.extend_from_slice(message.as_bytes());
            }
            Response::Ok(r) => {
                out.push(RESP_OK);
                out.push(if r.id.is_some() { FLAG_ID } else { 0 });
                if let Some(id) = r.id {
                    out.extend_from_slice(&id.to_le_bytes());
                }
                out.push(r.cached as u8);
                out.extend_from_slice(&r.micros.to_le_bytes());
                binary_ok_tail(r.algorithm, r.n, r.ratio, r.bound, r.alpha, &r.pieces, out);
            }
        }
        end_frame(out, start);
    }

    fn decode_request(&self, payload: &[u8]) -> Result<Request, ProtoError> {
        let mut cur = ByteCursor::new(payload);
        let req = match cur.u8()? {
            REQ_PING => Request::Ping,
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_BALANCE => {
                let flags = cur.u8()?;
                let id = if flags & FLAG_ID != 0 {
                    Some(cur.u64()?)
                } else {
                    None
                };
                let algorithm = *Algorithm::ALL
                    .get(cur.u8()? as usize)
                    .ok_or_else(|| ProtoError::bad("unknown algorithm tag"))?;
                let n = cur.u32()? as u64;
                if n == 0 || n > crate::spec::MAX_PROCESSORS as u64 {
                    return Err(ProtoError::bad(format!(
                        "\"n\" must be in 1..={}",
                        crate::spec::MAX_PROCESSORS
                    )));
                }
                let theta = cur.f64()?;
                if !theta.is_finite() || theta <= 0.0 {
                    return Err(ProtoError::bad("\"theta\" must be a positive number"));
                }
                let deadline_ms = if flags & FLAG_DEADLINE != 0 {
                    Some(cur.u64()?)
                } else {
                    None
                };
                let problem = ProblemSpec::decode_binary(&mut cur)?;
                Request::Balance(BalanceRequest {
                    id,
                    algorithm,
                    n: n as usize,
                    theta,
                    deadline_ms,
                    want_pieces: flags & FLAG_WANT_PIECES != 0,
                    problem,
                })
            }
            other => return Err(ProtoError::bad(format!("unknown request tag {other}"))),
        };
        cur.finish()?;
        Ok(req)
    }

    fn decode_response(&self, payload: &[u8]) -> Result<Response, ProtoError> {
        let mut cur = ByteCursor::new(payload);
        let resp = match cur.u8()? {
            RESP_PONG => Response::Pong,
            RESP_STATS => {
                let text = std::str::from_utf8(cur.rest())
                    .map_err(|_| ProtoError::bad("stats payload is not valid UTF-8"))?;
                let json = Json::parse(text).map_err(|e| ProtoError::bad(e.to_string()))?;
                return Ok(Response::Stats(json));
            }
            RESP_ERROR => {
                let flags = cur.u8()?;
                let id = if flags & FLAG_ID != 0 {
                    Some(cur.u64()?)
                } else {
                    None
                };
                let code = *ErrorCode::ALL
                    .get(cur.u8()? as usize)
                    .ok_or_else(|| ProtoError::bad("unknown error code tag"))?;
                let len = cur.u32()? as usize;
                let message = String::from_utf8(cur.take(len)?.to_vec())
                    .map_err(|_| ProtoError::bad("error message is not valid UTF-8"))?;
                Response::Error { id, code, message }
            }
            RESP_OK => {
                let flags = cur.u8()?;
                let id = if flags & FLAG_ID != 0 {
                    Some(cur.u64()?)
                } else {
                    None
                };
                let cached = cur.u8()? != 0;
                let micros = cur.u64()?;
                let algorithm = *Algorithm::ALL
                    .get(cur.u8()? as usize)
                    .ok_or_else(|| ProtoError::bad("unknown algorithm tag"))?;
                let n = cur.u32()? as usize;
                let ratio = cur.f64()?;
                let bound = cur.f64()?;
                let alpha = cur.f64()?;
                let count = cur.u32()? as usize;
                let mut pieces = Vec::with_capacity(count.min(MAX_FRAME / 8));
                for _ in 0..count {
                    pieces.push(cur.f64()?);
                }
                Response::Ok(BalanceResponse {
                    id,
                    algorithm,
                    n,
                    ratio,
                    bound,
                    alpha,
                    cached,
                    micros,
                    pieces,
                })
            }
            other => return Err(ProtoError::bad(format!("unknown response tag {other}"))),
        };
        cur.finish()?;
        Ok(resp)
    }
}

/// Bounds-checked little-endian reader over a frame payload.
#[derive(Debug)]
pub struct ByteCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteCursor<'a> {
    /// Wraps a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ProtoError::bad("truncated binary payload"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` LE.
    pub fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` LE.
    pub fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from LE IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// The unconsumed remainder.
    pub fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Requires the payload to be fully consumed.
    pub fn finish(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::bad("trailing bytes in binary payload"))
        }
    }
}

// ---------------------------------------------------------------------------
// Zero-copy hit-path helpers
// ---------------------------------------------------------------------------
//
// A cache hit answers with a reply whose only per-request fields are the
// echoed id and the measured micros; everything else is a pure function
// of the cached result. These helpers build the invariant byte tail once
// (stored alongside the cached result) and splice the tiny per-request
// head around it on every hit, so the hot path never re-serializes.

/// Appends the decimal digits of `v` without allocating.
pub fn push_u64_ascii(out: &mut Vec<u8>, v: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut v = v;
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&digits[i..]);
}

/// Builds the invariant JSON tail of a cached-hit `ok` reply: the
/// encoded object minus its leading `{` and the per-request id, with the
/// micros digits excised. Returns `(bytes, split)` where `split` is the
/// offset at which the micros digits are spliced back in. Assembling
/// `{` + `"id":N,`? + `bytes[..split]` + digits + `bytes[split..]` +
/// `\n` is byte-identical to [`Codec::encode_response`] on the same
/// response, which the proptests assert.
pub fn json_ok_tail(
    algorithm: Algorithm,
    n: usize,
    ratio: f64,
    bound: f64,
    alpha: f64,
    pieces: &[f64],
) -> (Vec<u8>, usize) {
    let line = Response::Ok(BalanceResponse {
        id: None,
        algorithm,
        n,
        ratio,
        bound,
        alpha,
        cached: true,
        micros: 0,
        pieces: pieces.to_vec(),
    })
    .encode();
    // The only place `"micros":0,` can appear: every other value is a
    // string from a fixed enum, a bool, or a float printed with a
    // fraction. The head ends just after the colon; the `0` is skipped.
    let mark = line
        .find("\"micros\":0,")
        .expect("ok response always carries micros");
    let head_end = mark + "\"micros\":".len();
    let bytes_src = line.as_bytes();
    let mut bytes = Vec::with_capacity(line.len());
    bytes.extend_from_slice(&bytes_src[1..head_end]);
    let split = bytes.len();
    bytes.extend_from_slice(&bytes_src[head_end + 1..]);
    (bytes, split)
}

/// Appends a full cached-hit JSON reply line assembled around a
/// [`json_ok_tail`] to `out`.
pub fn json_hit_reply(out: &mut Vec<u8>, id: Option<u64>, micros: u64, tail: &[u8], split: usize) {
    out.push(b'{');
    if let Some(id) = id {
        out.extend_from_slice(b"\"id\":");
        push_u64_ascii(out, id);
        out.push(b',');
    }
    out.extend_from_slice(&tail[..split]);
    push_u64_ascii(out, micros);
    out.extend_from_slice(&tail[split..]);
    out.push(b'\n');
}

/// Builds the invariant binary tail of a cached-hit `ok` reply (the
/// fields after `micros` in the `RESP_OK` layout).
pub fn binary_ok_tail(
    algorithm: Algorithm,
    n: usize,
    ratio: f64,
    bound: f64,
    alpha: f64,
    pieces: &[f64],
    out: &mut Vec<u8>,
) {
    out.push(algorithm.index() as u8);
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&ratio.to_le_bytes());
    out.extend_from_slice(&bound.to_le_bytes());
    out.extend_from_slice(&alpha.to_le_bytes());
    out.extend_from_slice(&(pieces.len() as u32).to_le_bytes());
    for &w in pieces {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Appends a full cached-hit binary reply frame (head spliced in front
/// of a [`binary_ok_tail`]) to `out`. `cached` is always true on this
/// path.
pub fn binary_hit_reply(out: &mut Vec<u8>, id: Option<u64>, micros: u64, tail: &[u8]) {
    let head_len = 1 + 1 + if id.is_some() { 8 } else { 0 } + 1 + 8;
    let len = (head_len + tail.len()) as u32;
    out.push(MAGIC);
    out.extend_from_slice(&len.to_le_bytes());
    out.push(RESP_OK);
    out.push(if id.is_some() { FLAG_ID } else { 0 });
    if let Some(id) = id {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out.push(1); // cached
    out.extend_from_slice(&micros.to_le_bytes());
    out.extend_from_slice(tail);
}

/// Extracts the request id echoed in a binary reply payload without
/// decoding the body — the router's passive health check needs only the
/// id to settle in-flight bookkeeping.
pub fn binary_reply_id(payload: &[u8]) -> Option<u64> {
    match *payload.first()? {
        RESP_ERROR | RESP_OK if payload.len() >= 10 && payload[1] & FLAG_ID != 0 => {
            Some(u64::from_le_bytes(payload[2..10].try_into().ok()?))
        }
        _ => None,
    }
}

/// Extracts the echoed id from a JSON reply line. The server emits the
/// id first when present, so a prefix scan answers without parsing; any
/// other shape falls back to a full parse (router-originated and
/// third-party replies).
pub fn json_reply_id(line: &str) -> Option<u64> {
    if let Some(rest) = line.strip_prefix("{\"id\":") {
        let digits: &str = &rest[..rest.bytes().position(|b| !b.is_ascii_digit())?];
        if !digits.is_empty() {
            return digits.parse().ok();
        }
    }
    Json::parse(line).ok()?.get("id")?.as_u64()
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Errors surfaced by [`FrameReader`].
#[derive(Debug)]
pub enum FrameError {
    /// A line exceeded [`MAX_FRAME`] bytes before its newline arrived.
    TooLong,
    /// A line was not valid UTF-8.
    NotUtf8,
    /// The peer closed the connection with a non-empty partial frame
    /// pending — the frame was torn mid-write. Surfaced exactly once;
    /// the next poll reports [`Frame::Eof`].
    Torn,
    /// A binary frame declared a payload longer than [`MAX_FRAME`] —
    /// a corrupt or hostile length. The reader never allocates the
    /// declared size; it skips to the next newline or magic byte.
    Corrupt,
    /// Underlying socket error (includes clean EOF as `UnexpectedEof`).
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLong => write!(f, "frame exceeds {MAX_FRAME} bytes"),
            FrameError::NotUtf8 => write!(f, "frame is not valid UTF-8"),
            FrameError::Torn => write!(f, "frame torn by EOF mid-line"),
            FrameError::Corrupt => write!(f, "binary frame length is corrupt"),
            FrameError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame reader that tolerates read timeouts: a
/// `WouldBlock`/`TimedOut` read returns control to the caller (yielding
/// [`Frame::Pending`]) while preserving any partial frame, so servers
/// can poll a shutdown flag between reads.
///
/// Each frame is sniffed independently by its first byte: [`MAGIC`]
/// opens a length-prefixed binary frame, anything else is a
/// newline-delimited text line. The codec of the last sniffed frame is
/// remembered ([`codec`](Self::codec)) so error replies can go out in
/// the format the peer speaks.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    pending: VecDeque<u8>,
    /// When a text line overflows, remaining bytes up to the next
    /// newline are discarded so the stream resynchronises.
    discarding: bool,
    /// After a corrupt binary length, bytes are skipped up to the next
    /// newline (consumed) or magic byte (retained) — a bounded resync
    /// that never allocates the declared length.
    resyncing: bool,
    eof: bool,
    last_codec: WireCodec,
}

/// One poll step of the frame reader.
#[derive(Debug)]
pub enum Frame {
    /// A complete text line (newline stripped).
    Line(String),
    /// A complete binary frame payload (header stripped).
    Binary(Vec<u8>),
    /// No complete frame yet (timeout or short read); call again.
    Pending,
    /// Peer closed the connection cleanly.
    Eof,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a readable stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: vec![0u8; 8 * 1024],
            pending: VecDeque::new(),
            discarding: false,
            resyncing: false,
            eof: false,
            last_codec: WireCodec::Json,
        }
    }

    /// Access to the wrapped stream (e.g. for readiness registration).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// The codec of the most recently sniffed frame (JSON until the
    /// first byte arrives). Replies to frames that never decoded — too
    /// long, corrupt length, torn — should use this so the peer can
    /// read them.
    pub fn codec(&self) -> WireCodec {
        self.last_codec
    }

    /// Reads the little-endian length out of a buffered binary header.
    fn buffered_binary_len(&self) -> usize {
        let mut len = [0u8; 4];
        for (i, b) in self.pending.iter().skip(1).take(4).enumerate() {
            len[i] = *b;
        }
        u32::from_le_bytes(len) as usize
    }

    /// True while [`poll_line`](Self::poll_line) can make progress
    /// without touching the socket: a complete frame (or an overflow,
    /// a corrupt length, or EOF) is sitting in the internal buffer with
    /// the descriptor itself drained. A readiness-driven caller must
    /// keep polling while this holds instead of sleeping on the
    /// descriptor — no readiness event will ever announce
    /// already-consumed bytes. A buffered *partial* frame does not
    /// count: only a socket read can advance it, so readiness is the
    /// right thing to wait on.
    pub fn has_buffered(&self) -> bool {
        if self.eof {
            return true;
        }
        if self.resyncing {
            // Resync pops bytes until a newline or magic byte: progress
            // is possible exactly when one is buffered.
            return self.pending.iter().any(|&b| b == b'\n' || b == MAGIC);
        }
        if !self.discarding && self.pending.front() == Some(&MAGIC) {
            if self.pending.len() < BIN_HDR {
                return false;
            }
            let declared = self.buffered_binary_len();
            return declared > MAX_FRAME || self.pending.len() >= BIN_HDR + declared;
        }
        self.pending.len() > MAX_FRAME || self.pending.iter().any(|&b| b == b'\n')
    }

    /// Reads until a full frame, a timeout, EOF or an error.
    pub fn poll_line(&mut self) -> Result<Frame, FrameError> {
        loop {
            if self.resyncing {
                // Bounded skip after a corrupt binary length: junk up to
                // a newline is consumed (with the newline), a magic byte
                // is retained as the next frame start.
                while let Some(&b) = self.pending.front() {
                    if b == MAGIC {
                        self.resyncing = false;
                        break;
                    }
                    self.pending.pop_front();
                    if b == b'\n' {
                        self.resyncing = false;
                        break;
                    }
                }
                if self.resyncing && !self.eof {
                    // Junk exhausted without a sync point; need bytes.
                    match self.fill()? {
                        Progress::More => continue,
                        Progress::Pending => return Ok(Frame::Pending),
                        Progress::Eof => continue,
                    }
                }
                if self.resyncing {
                    // EOF while resyncing: the junk tail is already
                    // accounted for by the Corrupt error.
                    self.resyncing = false;
                    self.pending.clear();
                    return Ok(Frame::Eof);
                }
                continue;
            }
            if !self.discarding && self.pending.front() == Some(&MAGIC) {
                self.last_codec = WireCodec::Binary;
                if self.pending.len() >= BIN_HDR {
                    let declared = self.buffered_binary_len();
                    if declared > MAX_FRAME {
                        self.pending.drain(..BIN_HDR);
                        self.resyncing = true;
                        return Err(FrameError::Corrupt);
                    }
                    if self.pending.len() >= BIN_HDR + declared {
                        self.pending.drain(..BIN_HDR);
                        let payload: Vec<u8> = self.pending.drain(..declared).collect();
                        return Ok(Frame::Binary(payload));
                    }
                }
                // Incomplete header or payload: fall through to read.
            } else {
                // Text path: serve a complete line out of the pending
                // buffer first.
                if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                    let oversized = pos > MAX_FRAME;
                    let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                    line.pop(); // newline
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    if self.discarding {
                        self.discarding = false;
                        continue; // swallowed the tail of an oversized frame
                    }
                    self.last_codec = WireCodec::Json;
                    if oversized {
                        // The whole line arrived in one batch but is over
                        // the limit; it is already consumed, so no discard
                        // needed.
                        return Err(FrameError::TooLong);
                    }
                    return match String::from_utf8(line) {
                        Ok(s) => Ok(Frame::Line(s)),
                        Err(_) => Err(FrameError::NotUtf8),
                    };
                }
                if self.pending.len() > MAX_FRAME {
                    if !self.discarding {
                        self.discarding = true;
                        self.pending.clear();
                        self.last_codec = WireCodec::Json;
                        return Err(FrameError::TooLong);
                    }
                    self.pending.clear();
                }
            }
            if self.eof {
                if self.discarding {
                    // The tail of an already-reported oversized frame
                    // never got its newline; the error was surfaced when
                    // the frame overflowed, so this is plain EOF.
                    self.discarding = false;
                    self.pending.clear();
                    return Ok(Frame::Eof);
                }
                if !self.pending.is_empty() {
                    // A non-empty partial frame at EOF — text line or
                    // binary header/payload — is a torn frame: the peer
                    // died mid-write. Silently swallowing it would hide
                    // a protocol violation from both metrics and the
                    // peer (which may only have shut down its write half
                    // and still reads replies).
                    self.pending.clear();
                    return Err(FrameError::Torn);
                }
                return Ok(Frame::Eof);
            }
            match self.fill()? {
                Progress::More | Progress::Eof => continue,
                Progress::Pending => return Ok(Frame::Pending),
            }
        }
    }

    /// One socket read into `pending`. EOF is latched into `self.eof`
    /// rather than returned as data so every caller re-enters the state
    /// machine above with the flag set.
    fn fill(&mut self) -> Result<Progress, FrameError> {
        loop {
            match self.inner.read(&mut self.buf) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(Progress::Eof);
                }
                Ok(k) => {
                    self.pending.extend(&self.buf[..k]);
                    return Ok(Progress::More);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Progress::Pending);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
}

/// Result of one [`FrameReader::fill`] step.
enum Progress {
    More,
    Pending,
    Eof,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_basic_values() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "3.25",
            "\"hi\\nthere\"",
            "[1,2.5,\"x\",null]",
            "{\"a\":1,\"b\":[true,{\"c\":\"d\"}]}",
        ] {
            let v = Json::parse(text).unwrap();
            let round = Json::parse(&v.encode()).unwrap();
            assert_eq!(v, round, "{text}");
        }
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        assert_eq!(Json::parse("5").unwrap(), Json::Int(5));
        assert_eq!(Json::parse("5.0").unwrap(), Json::Num(5.0));
        // A float that prints without a fraction re-parses as a float.
        let encoded = Json::Num(5.0).encode();
        assert_eq!(Json::parse(&encoded).unwrap(), Json::Num(5.0));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
            "nan",
            "--5",
            "\u{1}",
        ] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let mut s = String::new();
        for _ in 0..100 {
            s.push('[');
        }
        assert!(Json::parse(&s).is_err());
    }

    #[test]
    fn request_round_trip() {
        let req = Request::Balance(BalanceRequest {
            id: Some(42),
            algorithm: Algorithm::BaHf,
            n: 64,
            theta: 1.5,
            deadline_ms: Some(250),
            want_pieces: false,
            problem: ProblemSpec::Synthetic {
                weight: 2.0,
                lo: 0.1,
                hi: 0.5,
                seed: 7,
            },
        });
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(req, decoded);
        for r in [Request::Stats, Request::Ping, Request::Shutdown] {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::Ok(BalanceResponse {
            id: Some(1),
            algorithm: Algorithm::Hf,
            n: 8,
            ratio: 1.25,
            bound: 4.5,
            alpha: 0.3,
            cached: true,
            micros: 917,
            pieces: vec![0.25, 0.125, 0.625],
        });
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        let err = Response::Error {
            id: None,
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        };
        assert_eq!(Response::decode(&err.encode()).unwrap(), err);
    }

    #[test]
    fn balance_request_validation() {
        // n = 0 rejected.
        let bad = r#"{"op":"balance","algorithm":"hf","n":0,"problem":{"class":"synthetic","weight":1.0,"lo":0.1,"hi":0.5,"seed":1}}"#;
        assert!(Request::decode(bad).is_err());
        // unknown algorithm rejected.
        let bad = r#"{"op":"balance","algorithm":"rr","n":4,"problem":{"class":"synthetic","weight":1.0,"lo":0.1,"hi":0.5,"seed":1}}"#;
        assert!(Request::decode(bad).is_err());
        // negative theta rejected.
        let bad = r#"{"op":"balance","algorithm":"hf","n":4,"theta":-1.0,"problem":{"class":"synthetic","weight":1.0,"lo":0.1,"hi":0.5,"seed":1}}"#;
        assert!(Request::decode(bad).is_err());
    }

    #[test]
    fn frame_reader_splits_lines_and_handles_eof() {
        let data = b"alpha\nbeta\r\ngamma" as &[u8];
        let mut fr = FrameReader::new(data);
        assert!(matches!(fr.poll_line().unwrap(), Frame::Line(s) if s == "alpha"));
        assert!(matches!(fr.poll_line().unwrap(), Frame::Line(s) if s == "beta"));
        // The unterminated tail is a torn frame, not a silent EOF.
        assert!(matches!(fr.poll_line(), Err(FrameError::Torn)));
        assert!(matches!(fr.poll_line().unwrap(), Frame::Eof));
    }

    #[test]
    fn frame_reader_clean_eof_is_not_torn() {
        let data = b"alpha\n" as &[u8];
        let mut fr = FrameReader::new(data);
        assert!(matches!(fr.poll_line().unwrap(), Frame::Line(s) if s == "alpha"));
        assert!(matches!(fr.poll_line().unwrap(), Frame::Eof));
        // Torn is surfaced at most once; clean EOF stays EOF forever.
        assert!(matches!(fr.poll_line().unwrap(), Frame::Eof));
    }

    #[test]
    fn frame_reader_rejects_oversized_then_resyncs() {
        let mut data = vec![b'x'; MAX_FRAME + 10];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let mut fr = FrameReader::new(&data[..]);
        assert!(matches!(fr.poll_line(), Err(FrameError::TooLong)));
        assert!(matches!(fr.poll_line().unwrap(), Frame::Line(s) if s == "ok"));
    }

    /// A reader that hands out the stream in caller-chosen chunks, so
    /// tests control exactly where read boundaries fall.
    struct Chunked<'a> {
        data: &'a [u8],
        cuts: Vec<usize>,
        pos: usize,
    }

    impl Read for Chunked<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let next_cut = self
                .cuts
                .iter()
                .copied()
                .find(|&c| c > self.pos)
                .unwrap_or(self.data.len())
                .min(self.data.len());
            let take = (next_cut - self.pos).min(buf.len());
            buf[..take].copy_from_slice(&self.data[self.pos..self.pos + take]);
            self.pos += take;
            Ok(take)
        }
    }

    #[test]
    fn oversized_resync_works_when_newline_straddles_reads() {
        // The oversized body arrives in one read, its terminating
        // newline in the next, and the follow-up frame in a third: the
        // reader must report TooLong once and then resynchronise.
        let mut data = vec![b'x'; MAX_FRAME + 7];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let body_end = MAX_FRAME + 7;
        let mut fr = FrameReader::new(Chunked {
            cuts: vec![body_end, body_end + 1],
            data: &data,
            pos: 0,
        });
        assert!(matches!(fr.poll_line(), Err(FrameError::TooLong)));
        assert!(matches!(fr.poll_line().unwrap(), Frame::Line(s) if s == "ok"));
        assert!(matches!(fr.poll_line().unwrap(), Frame::Eof));
    }

    #[test]
    fn oversized_tail_at_eof_is_not_double_reported() {
        // Overflow reported as TooLong; the unterminated discard tail at
        // EOF must not additionally count as a torn frame.
        let data = vec![b'x'; MAX_FRAME + 100];
        let mut fr = FrameReader::new(&data[..]);
        assert!(matches!(fr.poll_line(), Err(FrameError::TooLong)));
        assert!(matches!(fr.poll_line().unwrap(), Frame::Eof));
    }

    #[test]
    fn frame_reader_rejects_invalid_utf8() {
        let data = b"\xff\xfe\n" as &[u8];
        let mut fr = FrameReader::new(data);
        assert!(matches!(fr.poll_line(), Err(FrameError::NotUtf8)));
    }
}
