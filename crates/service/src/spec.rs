//! Problem specifications: the wire-level description of *what* to
//! balance, mapped onto the concrete `gb-problems` classes.
//!
//! A [`ProblemSpec`] is fully deterministic — every field participates in
//! the [`fingerprint`](ProblemSpec::fingerprint), and building the same
//! spec twice yields problems that bisect identically. That is what makes
//! the server-side result cache sound: `(fingerprint, algorithm, N, θ)`
//! identifies the partition a request will produce.

use std::fmt;

use gb_core::fingerprint::Fingerprint;
use gb_core::problem::{AlphaBisectable, Bisectable};
use gb_problems::{
    FeTree, FeTreeProblem, Grid, GridProblem, Integrand, Region, SearchTree, SearchTreeProblem,
    SyntheticProblem, TaskList, TaskListProblem,
};

use crate::proto::{Json, ProtoError};

/// Upper limit on the processor count `N` accepted over the wire.
pub const MAX_PROCESSORS: usize = 1 << 16;

/// Upper limit on node/task/cell counts in a spec, so a single request
/// cannot ask the server to materialise a gigabyte-scale problem.
pub const MAX_SIZE: usize = 1 << 20;

fn bad(msg: impl Into<String>) -> ProtoError {
    ProtoError {
        message: msg.into(),
    }
}

/// A deterministic description of a problem instance.
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemSpec {
    /// The paper's stochastic model: split fractions uniform in `[lo, hi]`.
    Synthetic {
        /// Root weight (`> 0`, finite).
        weight: f64,
        /// Lower split fraction (`0 < lo ≤ hi`). This is the class α.
        lo: f64,
        /// Upper split fraction (`hi ≤ 1/2`).
        hi: f64,
        /// Seed of the virtual bisection tree.
        seed: u64,
    },
    /// Adaptively refined FE-tree (`2·refinements + 1` nodes).
    FeTree {
        /// Number of refinement steps.
        refinements: usize,
        /// Probability of refining the most recent leaf (`[0, 1]`).
        bias: f64,
        /// RNG seed.
        seed: u64,
    },
    /// 2-D load grid with `hotspots` Gaussian hotspots (0 = uniform).
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Hotspot count; `0` selects the uniform load model.
        hotspots: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Adaptive-quadrature region for a Genz Gaussian-peak integrand.
    Quadrature {
        /// Dimensions (`1..=6`).
        dims: usize,
        /// Peak sharpness (`> 0`).
        sharpness: f64,
        /// Atomic-region width (`0 < min_width ≤ 1/2`).
        min_width: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Random backtrack-search tree.
    SearchTree {
        /// Target node count (`≥ 1`).
        nodes: usize,
        /// Maximum branching factor (`≥ 2`).
        branch: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Weighted task list split at random pivots.
    TaskList {
        /// Number of tasks (`≥ 1`).
        tasks: usize,
        /// Heavy-tailed (Pareto-like) costs instead of uniform.
        heavy: bool,
        /// RNG seed.
        seed: u64,
    },
}

impl ProblemSpec {
    /// Wire name of the problem class.
    pub fn class(&self) -> &'static str {
        match self {
            ProblemSpec::Synthetic { .. } => "synthetic",
            ProblemSpec::FeTree { .. } => "fe_tree",
            ProblemSpec::Grid { .. } => "grid",
            ProblemSpec::Quadrature { .. } => "quadrature",
            ProblemSpec::SearchTree { .. } => "search_tree",
            ProblemSpec::TaskList { .. } => "task_list",
        }
    }

    /// The JSON form used inside a balance request.
    pub fn to_json(&self) -> Json {
        let mut e = vec![("class".into(), Json::Str(self.class().into()))];
        match *self {
            ProblemSpec::Synthetic {
                weight,
                lo,
                hi,
                seed,
            } => {
                e.push(("weight".into(), Json::Num(weight)));
                e.push(("lo".into(), Json::Num(lo)));
                e.push(("hi".into(), Json::Num(hi)));
                e.push(("seed".into(), Json::Int(seed as i64)));
            }
            ProblemSpec::FeTree {
                refinements,
                bias,
                seed,
            } => {
                e.push(("refinements".into(), Json::Int(refinements as i64)));
                e.push(("bias".into(), Json::Num(bias)));
                e.push(("seed".into(), Json::Int(seed as i64)));
            }
            ProblemSpec::Grid {
                rows,
                cols,
                hotspots,
                seed,
            } => {
                e.push(("rows".into(), Json::Int(rows as i64)));
                e.push(("cols".into(), Json::Int(cols as i64)));
                e.push(("hotspots".into(), Json::Int(hotspots as i64)));
                e.push(("seed".into(), Json::Int(seed as i64)));
            }
            ProblemSpec::Quadrature {
                dims,
                sharpness,
                min_width,
                seed,
            } => {
                e.push(("dims".into(), Json::Int(dims as i64)));
                e.push(("sharpness".into(), Json::Num(sharpness)));
                e.push(("min_width".into(), Json::Num(min_width)));
                e.push(("seed".into(), Json::Int(seed as i64)));
            }
            ProblemSpec::SearchTree {
                nodes,
                branch,
                seed,
            } => {
                e.push(("nodes".into(), Json::Int(nodes as i64)));
                e.push(("branch".into(), Json::Int(branch as i64)));
                e.push(("seed".into(), Json::Int(seed as i64)));
            }
            ProblemSpec::TaskList { tasks, heavy, seed } => {
                e.push(("tasks".into(), Json::Int(tasks as i64)));
                e.push(("heavy".into(), Json::Bool(heavy)));
                e.push(("seed".into(), Json::Int(seed as i64)));
            }
        }
        Json::Obj(e)
    }

    /// Parses and validates a spec from its JSON form.
    pub fn from_json(json: &Json) -> Result<ProblemSpec, ProtoError> {
        let class = json
            .get("class")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("problem missing \"class\""))?;
        let f64_field = |key: &str| {
            json.get(key)
                .and_then(Json::as_f64)
                .filter(|x| x.is_finite())
                .ok_or_else(|| bad(format!("problem field \"{key}\" must be a finite number")))
        };
        let size_field = |key: &str, min: usize| -> Result<usize, ProtoError> {
            let v = json
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(format!("problem field \"{key}\" must be an integer")))?;
            if (v as usize) < min || v as usize > MAX_SIZE {
                return Err(bad(format!(
                    "problem field \"{key}\" must be in {min}..={MAX_SIZE}"
                )));
            }
            Ok(v as usize)
        };
        let seed_field = || {
            json.get("seed")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("problem field \"seed\" must be a non-negative integer"))
        };
        let spec = match class {
            "synthetic" => {
                let weight = f64_field("weight")?;
                let lo = f64_field("lo")?;
                let hi = f64_field("hi")?;
                if weight <= 0.0 {
                    return Err(bad("\"weight\" must be positive"));
                }
                if !(0.0 < lo && lo <= hi && hi <= 0.5) {
                    return Err(bad("need 0 < lo <= hi <= 0.5"));
                }
                ProblemSpec::Synthetic {
                    weight,
                    lo,
                    hi,
                    seed: seed_field()?,
                }
            }
            "fe_tree" => {
                let bias = f64_field("bias")?;
                if !(0.0..=1.0).contains(&bias) {
                    return Err(bad("\"bias\" must be in [0, 1]"));
                }
                ProblemSpec::FeTree {
                    refinements: size_field("refinements", 1)?,
                    bias,
                    seed: seed_field()?,
                }
            }
            "grid" => {
                let rows = size_field("rows", 1)?;
                let cols = size_field("cols", 1)?;
                if rows.saturating_mul(cols) > MAX_SIZE {
                    return Err(bad(format!("grid larger than {MAX_SIZE} cells")));
                }
                let hotspots = json
                    .get("hotspots")
                    .map(|v| {
                        v.as_u64()
                            .filter(|&k| k <= 64)
                            .ok_or_else(|| bad("\"hotspots\" must be an integer in 0..=64"))
                    })
                    .transpose()?
                    .unwrap_or(0) as usize;
                ProblemSpec::Grid {
                    rows,
                    cols,
                    hotspots,
                    seed: seed_field()?,
                }
            }
            "quadrature" => {
                let dims = size_field("dims", 1)?;
                if dims > gb_problems::quadrature::MAX_DIMS {
                    return Err(bad(format!(
                        "\"dims\" must be at most {}",
                        gb_problems::quadrature::MAX_DIMS
                    )));
                }
                let sharpness = f64_field("sharpness")?;
                if sharpness <= 0.0 {
                    return Err(bad("\"sharpness\" must be positive"));
                }
                let min_width = match json.get("min_width") {
                    None => 1e-2,
                    Some(_) => f64_field("min_width")?,
                };
                if !(min_width > 0.0 && min_width <= 0.5) {
                    return Err(bad("\"min_width\" must be in (0, 0.5]"));
                }
                ProblemSpec::Quadrature {
                    dims,
                    sharpness,
                    min_width,
                    seed: seed_field()?,
                }
            }
            "search_tree" => {
                let branch = size_field("branch", 2)?;
                if branch > 64 {
                    return Err(bad("\"branch\" must be at most 64"));
                }
                ProblemSpec::SearchTree {
                    nodes: size_field("nodes", 1)?,
                    branch,
                    seed: seed_field()?,
                }
            }
            "task_list" => ProblemSpec::TaskList {
                tasks: size_field("tasks", 1)?,
                heavy: json.get("heavy").and_then(Json::as_bool).unwrap_or(false),
                seed: seed_field()?,
            },
            other => return Err(bad(format!("unknown problem class \"{other}\""))),
        };
        Ok(spec)
    }

    /// Binary class tag (dense, stable across releases — append only).
    fn class_tag(&self) -> u8 {
        match self {
            ProblemSpec::Synthetic { .. } => 0,
            ProblemSpec::FeTree { .. } => 1,
            ProblemSpec::Grid { .. } => 2,
            ProblemSpec::Quadrature { .. } => 3,
            ProblemSpec::SearchTree { .. } => 4,
            ProblemSpec::TaskList { .. } => 5,
        }
    }

    /// Appends the binary wire form: `class u8` followed by the class
    /// fields in declaration order — counts as `u32` LE (all capped by
    /// [`MAX_SIZE`]), floats as LE IEEE-754 bits, seeds as `u64` LE,
    /// bools as one byte.
    pub fn encode_binary(&self, out: &mut Vec<u8>) {
        out.push(self.class_tag());
        match *self {
            ProblemSpec::Synthetic {
                weight,
                lo,
                hi,
                seed,
            } => {
                out.extend_from_slice(&weight.to_le_bytes());
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
                out.extend_from_slice(&seed.to_le_bytes());
            }
            ProblemSpec::FeTree {
                refinements,
                bias,
                seed,
            } => {
                out.extend_from_slice(&(refinements as u32).to_le_bytes());
                out.extend_from_slice(&bias.to_le_bytes());
                out.extend_from_slice(&seed.to_le_bytes());
            }
            ProblemSpec::Grid {
                rows,
                cols,
                hotspots,
                seed,
            } => {
                out.extend_from_slice(&(rows as u32).to_le_bytes());
                out.extend_from_slice(&(cols as u32).to_le_bytes());
                out.extend_from_slice(&(hotspots as u32).to_le_bytes());
                out.extend_from_slice(&seed.to_le_bytes());
            }
            ProblemSpec::Quadrature {
                dims,
                sharpness,
                min_width,
                seed,
            } => {
                out.extend_from_slice(&(dims as u32).to_le_bytes());
                out.extend_from_slice(&sharpness.to_le_bytes());
                out.extend_from_slice(&min_width.to_le_bytes());
                out.extend_from_slice(&seed.to_le_bytes());
            }
            ProblemSpec::SearchTree {
                nodes,
                branch,
                seed,
            } => {
                out.extend_from_slice(&(nodes as u32).to_le_bytes());
                out.extend_from_slice(&(branch as u32).to_le_bytes());
                out.extend_from_slice(&seed.to_le_bytes());
            }
            ProblemSpec::TaskList { tasks, heavy, seed } => {
                out.extend_from_slice(&(tasks as u32).to_le_bytes());
                out.push(heavy as u8);
                out.extend_from_slice(&seed.to_le_bytes());
            }
        }
    }

    /// Decodes and validates the binary wire form; enforces the same
    /// range rules as [`from_json`](Self::from_json) via
    /// [`validate`](Self::validate).
    pub fn decode_binary(
        cur: &mut crate::proto::ByteCursor<'_>,
    ) -> Result<ProblemSpec, ProtoError> {
        let spec = match cur.u8()? {
            0 => ProblemSpec::Synthetic {
                weight: cur.f64()?,
                lo: cur.f64()?,
                hi: cur.f64()?,
                seed: cur.u64()?,
            },
            1 => ProblemSpec::FeTree {
                refinements: cur.u32()? as usize,
                bias: cur.f64()?,
                seed: cur.u64()?,
            },
            2 => ProblemSpec::Grid {
                rows: cur.u32()? as usize,
                cols: cur.u32()? as usize,
                hotspots: cur.u32()? as usize,
                seed: cur.u64()?,
            },
            3 => ProblemSpec::Quadrature {
                dims: cur.u32()? as usize,
                sharpness: cur.f64()?,
                min_width: cur.f64()?,
                seed: cur.u64()?,
            },
            4 => ProblemSpec::SearchTree {
                nodes: cur.u32()? as usize,
                branch: cur.u32()? as usize,
                seed: cur.u64()?,
            },
            5 => ProblemSpec::TaskList {
                tasks: cur.u32()? as usize,
                heavy: cur.u8()? != 0,
                seed: cur.u64()?,
            },
            other => return Err(bad(format!("unknown problem class tag {other}"))),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Range validation shared by the binary decoder (the JSON decoder
    /// enforces the same rules inline, where it can name the offending
    /// field in its wire spelling).
    pub fn validate(&self) -> Result<(), ProtoError> {
        let size = |name: &str, v: usize, min: usize| {
            if v < min || v > MAX_SIZE {
                Err(bad(format!(
                    "problem field \"{name}\" must be in {min}..={MAX_SIZE}"
                )))
            } else {
                Ok(())
            }
        };
        match *self {
            ProblemSpec::Synthetic { weight, lo, hi, .. } => {
                if !weight.is_finite() || weight <= 0.0 {
                    return Err(bad("\"weight\" must be positive"));
                }
                if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi && hi <= 0.5) {
                    return Err(bad("need 0 < lo <= hi <= 0.5"));
                }
            }
            ProblemSpec::FeTree {
                refinements, bias, ..
            } => {
                size("refinements", refinements, 1)?;
                if !(bias.is_finite() && (0.0..=1.0).contains(&bias)) {
                    return Err(bad("\"bias\" must be in [0, 1]"));
                }
            }
            ProblemSpec::Grid {
                rows,
                cols,
                hotspots,
                ..
            } => {
                size("rows", rows, 1)?;
                size("cols", cols, 1)?;
                if rows.saturating_mul(cols) > MAX_SIZE {
                    return Err(bad(format!("grid larger than {MAX_SIZE} cells")));
                }
                if hotspots > 64 {
                    return Err(bad("\"hotspots\" must be an integer in 0..=64"));
                }
            }
            ProblemSpec::Quadrature {
                dims,
                sharpness,
                min_width,
                ..
            } => {
                size("dims", dims, 1)?;
                if dims > gb_problems::quadrature::MAX_DIMS {
                    return Err(bad(format!(
                        "\"dims\" must be at most {}",
                        gb_problems::quadrature::MAX_DIMS
                    )));
                }
                if !(sharpness.is_finite() && sharpness > 0.0) {
                    return Err(bad("\"sharpness\" must be positive"));
                }
                if !(min_width.is_finite() && min_width > 0.0 && min_width <= 0.5) {
                    return Err(bad("\"min_width\" must be in (0, 0.5]"));
                }
            }
            ProblemSpec::SearchTree { nodes, branch, .. } => {
                size("nodes", nodes, 1)?;
                size("branch", branch, 2)?;
                if branch > 64 {
                    return Err(bad("\"branch\" must be at most 64"));
                }
            }
            ProblemSpec::TaskList { tasks, .. } => size("tasks", tasks, 1)?,
        }
        Ok(())
    }

    /// Process-stable fingerprint of the spec; equal specs always agree,
    /// distinct classes never collide on tag.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.str(self.class());
        match *self {
            ProblemSpec::Synthetic {
                weight,
                lo,
                hi,
                seed,
            } => {
                fp.f64(weight).f64(lo).f64(hi).u64(seed);
            }
            ProblemSpec::FeTree {
                refinements,
                bias,
                seed,
            } => {
                fp.usize(refinements).f64(bias).u64(seed);
            }
            ProblemSpec::Grid {
                rows,
                cols,
                hotspots,
                seed,
            } => {
                fp.usize(rows).usize(cols).usize(hotspots).u64(seed);
            }
            ProblemSpec::Quadrature {
                dims,
                sharpness,
                min_width,
                seed,
            } => {
                fp.usize(dims).f64(sharpness).f64(min_width).u64(seed);
            }
            ProblemSpec::SearchTree {
                nodes,
                branch,
                seed,
            } => {
                fp.usize(nodes).usize(branch).u64(seed);
            }
            ProblemSpec::TaskList { tasks, heavy, seed } => {
                fp.usize(tasks).u64(heavy as u64).u64(seed);
            }
        }
        fp.finish()
    }

    /// The class α when one is known analytically without building the
    /// problem (synthetic: `lo`, by construction).
    pub fn alpha_hint(&self) -> Option<f64> {
        match *self {
            ProblemSpec::Synthetic { lo, .. } => Some(lo),
            _ => None,
        }
    }

    /// Materialises the problem instance. Costs up to `O(MAX_SIZE)` time
    /// and memory; call from a worker, not the connection thread.
    pub fn build(&self) -> ServiceProblem {
        match *self {
            ProblemSpec::Synthetic {
                weight,
                lo,
                hi,
                seed,
            } => ServiceProblem::Synthetic(SyntheticProblem::new(weight, lo, hi, seed)),
            ProblemSpec::FeTree {
                refinements,
                bias,
                seed,
            } => ServiceProblem::FeTree(FeTree::adaptive(refinements, bias, seed).root_problem()),
            ProblemSpec::Grid {
                rows,
                cols,
                hotspots,
                seed,
            } => {
                let grid = if hotspots == 0 {
                    Grid::uniform(rows, cols, seed)
                } else {
                    Grid::hotspots(rows, cols, hotspots, seed)
                };
                ServiceProblem::Grid(grid.root_problem())
            }
            ProblemSpec::Quadrature {
                dims,
                sharpness,
                min_width,
                seed,
            } => ServiceProblem::Quadrature(
                Integrand::gaussian_peak(dims, sharpness, seed).unit_region(min_width),
            ),
            ProblemSpec::SearchTree {
                nodes,
                branch,
                seed,
            } => ServiceProblem::SearchTree(SearchTree::random(nodes, branch, seed).root_problem()),
            ProblemSpec::TaskList { tasks, heavy, seed } => {
                let list = if heavy {
                    TaskList::heavy_tailed(tasks, seed)
                } else {
                    TaskList::uniform(tasks, seed)
                };
                ServiceProblem::TaskList(list.root_problem(seed))
            }
        }
    }
}

impl fmt::Display for ProblemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{:016x}", self.class(), self.fingerprint())
    }
}

/// A problem instance of any served class, dispatching [`Bisectable`]
/// to the wrapped concrete type.
#[derive(Debug, Clone)]
pub enum ServiceProblem {
    /// Synthetic stochastic model.
    Synthetic(SyntheticProblem),
    /// FE-tree region.
    FeTree(FeTreeProblem),
    /// Grid region.
    Grid(GridProblem),
    /// Quadrature region.
    Quadrature(Region),
    /// Search-tree slice.
    SearchTree(SearchTreeProblem),
    /// Task-list slice.
    TaskList(TaskListProblem),
}

impl Bisectable for ServiceProblem {
    fn weight(&self) -> f64 {
        match self {
            ServiceProblem::Synthetic(p) => p.weight(),
            ServiceProblem::FeTree(p) => p.weight(),
            ServiceProblem::Grid(p) => p.weight(),
            ServiceProblem::Quadrature(p) => p.weight(),
            ServiceProblem::SearchTree(p) => p.weight(),
            ServiceProblem::TaskList(p) => p.weight(),
        }
    }

    fn bisect(&self) -> (Self, Self) {
        match self {
            ServiceProblem::Synthetic(p) => {
                let (a, b) = p.bisect();
                (ServiceProblem::Synthetic(a), ServiceProblem::Synthetic(b))
            }
            ServiceProblem::FeTree(p) => {
                let (a, b) = p.bisect();
                (ServiceProblem::FeTree(a), ServiceProblem::FeTree(b))
            }
            ServiceProblem::Grid(p) => {
                let (a, b) = p.bisect();
                (ServiceProblem::Grid(a), ServiceProblem::Grid(b))
            }
            ServiceProblem::Quadrature(p) => {
                let (a, b) = p.bisect();
                (ServiceProblem::Quadrature(a), ServiceProblem::Quadrature(b))
            }
            ServiceProblem::SearchTree(p) => {
                let (a, b) = p.bisect();
                (ServiceProblem::SearchTree(a), ServiceProblem::SearchTree(b))
            }
            ServiceProblem::TaskList(p) => {
                let (a, b) = p.bisect();
                (ServiceProblem::TaskList(a), ServiceProblem::TaskList(b))
            }
        }
    }

    fn can_bisect(&self) -> bool {
        match self {
            ServiceProblem::Synthetic(p) => p.can_bisect(),
            ServiceProblem::FeTree(p) => p.can_bisect(),
            ServiceProblem::Grid(p) => p.can_bisect(),
            ServiceProblem::Quadrature(p) => p.can_bisect(),
            ServiceProblem::SearchTree(p) => p.can_bisect(),
            ServiceProblem::TaskList(p) => p.can_bisect(),
        }
    }
}

impl ServiceProblem {
    /// Analytic class α when the wrapped type provides one.
    pub fn analytic_alpha(&self) -> Option<f64> {
        match self {
            ServiceProblem::Synthetic(p) => Some(p.alpha()),
            ServiceProblem::Quadrature(p) => Some(p.alpha()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_specs() -> Vec<ProblemSpec> {
        vec![
            ProblemSpec::Synthetic {
                weight: 1.0,
                lo: 0.2,
                hi: 0.5,
                seed: 1,
            },
            ProblemSpec::FeTree {
                refinements: 100,
                bias: 0.7,
                seed: 2,
            },
            ProblemSpec::Grid {
                rows: 16,
                cols: 16,
                hotspots: 3,
                seed: 3,
            },
            ProblemSpec::Quadrature {
                dims: 2,
                sharpness: 5.0,
                min_width: 0.05,
                seed: 4,
            },
            ProblemSpec::SearchTree {
                nodes: 200,
                branch: 4,
                seed: 5,
            },
            ProblemSpec::TaskList {
                tasks: 64,
                heavy: true,
                seed: 6,
            },
        ]
    }

    #[test]
    fn every_class_round_trips_through_json() {
        for spec in all_specs() {
            let json = spec.to_json();
            let back = ProblemSpec::from_json(&json).unwrap();
            assert_eq!(spec, back, "{spec}");
        }
    }

    #[test]
    fn fingerprints_are_distinct_and_stable() {
        let specs = all_specs();
        for (i, a) in specs.iter().enumerate() {
            assert_eq!(a.fingerprint(), a.clone().fingerprint());
            for b in specs.iter().skip(i + 1) {
                assert_ne!(a.fingerprint(), b.fingerprint(), "{a} vs {b}");
            }
        }
        // Seed participates in the fingerprint.
        let a = ProblemSpec::TaskList {
            tasks: 64,
            heavy: false,
            seed: 1,
        };
        let b = ProblemSpec::TaskList {
            tasks: 64,
            heavy: false,
            seed: 2,
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn every_class_builds_and_bisects() {
        for spec in all_specs() {
            let p = spec.build();
            let w = p.weight();
            assert!(w > 0.0, "{spec}");
            assert!(p.can_bisect(), "{spec}");
            let (a, b) = p.bisect();
            assert!((a.weight() + b.weight() - w).abs() <= 1e-9 * w, "{spec}");
        }
    }

    #[test]
    fn validation_rejects_out_of_range_fields() {
        // synthetic with hi > 0.5
        let j = Json::parse(r#"{"class":"synthetic","weight":1.0,"lo":0.1,"hi":0.9,"seed":0}"#)
            .unwrap();
        assert!(ProblemSpec::from_json(&j).is_err());
        // oversized grid
        let j = Json::parse(r#"{"class":"grid","rows":1048576,"cols":1048576,"seed":0}"#).unwrap();
        assert!(ProblemSpec::from_json(&j).is_err());
        // unknown class
        let j = Json::parse(r#"{"class":"mystery","seed":0}"#).unwrap();
        assert!(ProblemSpec::from_json(&j).is_err());
        // quadrature beyond MAX_DIMS
        let j = Json::parse(r#"{"class":"quadrature","dims":7,"sharpness":1.0,"seed":0}"#).unwrap();
        assert!(ProblemSpec::from_json(&j).is_err());
    }

    #[test]
    fn deterministic_rebuild_bisects_identically() {
        let spec = ProblemSpec::Grid {
            rows: 12,
            cols: 9,
            hotspots: 2,
            seed: 11,
        };
        let (a1, b1) = spec.build().bisect();
        let (a2, b2) = spec.build().bisect();
        assert_eq!(a1.weight(), a2.weight());
        assert_eq!(b1.weight(), b2.weight());
    }
}
