//! Consistent-hash routing across backend pools.
//!
//! The router places `vnodes` virtual nodes per backend on a u64 ring
//! (each vnode's position is a SplitMix64 hash of `(backend_id,
//! replica)`), and routes a key hash to the owning backend with a
//! binary search for the first vnode clockwise of the hash. Two
//! properties fall out of this construction:
//!
//! - **Stability**: adding one backend to `S` existing ones only
//!   reassigns the keys that now land on the new backend's vnodes —
//!   about `1/(S+1)` of the keyspace — and never shuffles keys between
//!   surviving backends. Removing a backend reassigns only its keys.
//! - **Determinism**: the ring depends only on the backend id set and
//!   the vnode count, not on insertion order or process history, so a
//!   restarted server re-homes every recovered record to the same
//!   backend a live router would pick.
//!
//! Keys enter as [`CacheKey::mix()`](crate::cache::CacheKey::mix)
//! fingerprints, which are already SplitMix64-finalised and uniform.

use crate::cache::splitmix64;

/// Default virtual nodes per backend; enough that the max/mean keyspace
/// imbalance across backends stays small (~sqrt(S/vnodes) relative
/// spread) without making ring construction or lookup measurable.
pub const DEFAULT_VNODES: usize = 96;

/// A consistent-hash ring over backend ids.
#[derive(Debug, Clone)]
pub struct Router {
    /// `(position, backend_id)` sorted by position.
    ring: Vec<(u64, u32)>,
    backends: usize,
    vnodes: usize,
}

impl Router {
    /// Ring over backends `0..backends` with `vnodes` virtual nodes
    /// each. Panics if either count is zero.
    pub fn new(backends: usize, vnodes: usize) -> Router {
        Self::from_ids((0..backends as u32).collect(), vnodes)
    }

    /// Ring over an explicit backend id set — the membership-change
    /// form: the ring for `{0,1,2}` is a strict subset of the ring for
    /// `{0,1,2,3}` restricted to surviving ids.
    pub fn from_ids(ids: Vec<u32>, vnodes: usize) -> Router {
        assert!(!ids.is_empty(), "router needs at least one backend");
        assert!(vnodes > 0, "router needs at least one vnode per backend");
        let backends = ids.len();
        let mut ring = Vec::with_capacity(backends * vnodes);
        for &id in &ids {
            for replica in 0..vnodes as u64 {
                // Spread id and replica into distinct bit ranges before
                // finalising so (id=1, replica=2) and (id=2, replica=1)
                // cannot collide structurally.
                let position = splitmix64((u64::from(id) << 32) | replica);
                ring.push((position, id));
            }
        }
        ring.sort_unstable();
        Router {
            ring,
            backends,
            vnodes,
        }
    }

    /// The backend owning `hash`: the first vnode at or clockwise of
    /// it, wrapping to the ring's start past the largest position.
    pub fn route(&self, hash: u64) -> u32 {
        self.ring[self.vnode_of(hash)].1
    }

    /// The ring index of the vnode owning `hash` — a stable dense id in
    /// `0..vnode_count()` (the ring is sorted by position and depends
    /// only on the id set), used to key per-vnode load accounting and
    /// explicit assignment tables.
    pub fn vnode_of(&self, hash: u64) -> usize {
        self.ring.partition_point(|&(pos, _)| pos < hash) % self.ring.len()
    }

    /// The backend the hash ring gives vnode `vnode` (its position's
    /// original owner, ignoring any assignment table).
    pub fn owner_of(&self, vnode: usize) -> u32 {
        self.ring[vnode].1
    }

    /// Total vnode count (`backends() * vnodes()`).
    pub fn vnode_count(&self) -> usize {
        self.ring.len()
    }

    /// The hash ring's vnode→backend table — the cold-start default an
    /// assignment layer overrides.
    pub fn default_owners(&self) -> Vec<u32> {
        self.ring.iter().map(|&(_, backend)| backend).collect()
    }

    /// Number of backends on the ring.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// Virtual nodes per backend.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The sorted `(position, backend_id)` vnode placements — read-only,
    /// for tests and tooling that reason about per-vnode ownership.
    pub fn positions(&self) -> &[(u64, u32)] {
        &self.ring
    }
}

// ---------------------------------------------------------------------------
// Failover view: a ring plus an alive mask
// ---------------------------------------------------------------------------

/// A consistent-hash ring with liveness: the full membership plus an
/// alive mask, routing over the alive subset only.
///
/// Built on [`Router::from_ids`]'s determinism, failover is *monotone*:
///
/// - [`mark_dead`](FailoverRing::mark_dead) re-homes exactly the dead
///   backend's vnode arcs onto survivors (consistent hashing spreads
///   them ~evenly); survivors' own assignments never move;
/// - [`mark_alive`](FailoverRing::mark_alive) restores the exact
///   pre-death mapping, because the ring depends only on the id set —
///   so a backend that bounces gets all of its keys back and nothing
///   else shuffles.
///
/// This is the structure the `gb-router` tier keys every request off;
/// it is kept here next to [`Router`] so the failover contract is
/// property-tested with the rest of the routing invariants.
///
/// On top of the hash placement sits an optional **assignment table**
/// ([`set_assignment`](FailoverRing::set_assignment)): an explicit
/// vnode→backend map, indexed by the *full* ring's vnode ids, that a
/// rebalancer (`gb-rebal`) swaps in to override hash positions with
/// load-derived ownership. Routing prefers the assigned owner while it
/// is alive and falls back to the monotone hash ring otherwise, so the
/// failover guarantees above still hold between rebalance ticks.
#[derive(Debug, Clone)]
pub struct FailoverRing {
    ids: Vec<u32>,
    alive: Vec<bool>,
    vnodes: usize,
    /// Ring over the *complete* membership — stable vnode identity for
    /// load accounting and assignment, independent of liveness.
    full: Router,
    /// Ring over the currently-alive ids; `None` when everything is dead.
    current: Option<Router>,
    /// Explicit vnode→backend override, indexed like `full`'s vnodes.
    assignment: Option<Vec<u32>>,
}

impl FailoverRing {
    /// A fully-alive ring over backends `0..backends`.
    pub fn new(backends: usize, vnodes: usize) -> FailoverRing {
        Self::from_ids((0..backends as u32).collect(), vnodes)
    }

    /// A fully-alive ring over an explicit id set.
    pub fn from_ids(ids: Vec<u32>, vnodes: usize) -> FailoverRing {
        let full = Router::from_ids(ids.clone(), vnodes);
        let alive = vec![true; ids.len()];
        FailoverRing {
            ids,
            alive,
            vnodes,
            current: Some(full.clone()),
            full,
            assignment: None,
        }
    }

    fn rebuild(&mut self) {
        let alive_ids = self.alive_ids();
        self.current = if alive_ids.is_empty() {
            None
        } else {
            Some(Router::from_ids(alive_ids, self.vnodes))
        };
    }

    fn index_of(&self, id: u32) -> Option<usize> {
        self.ids.iter().position(|&i| i == id)
    }

    /// Total membership (alive or not).
    pub fn backends(&self) -> usize {
        self.ids.len()
    }

    /// Virtual nodes per backend.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Whether `id` is currently alive (unknown ids are dead).
    pub fn is_alive(&self, id: u32) -> bool {
        self.index_of(id).is_some_and(|at| self.alive[at])
    }

    /// The ids currently marked alive, in membership order.
    pub fn alive_ids(&self) -> Vec<u32> {
        self.ids
            .iter()
            .zip(&self.alive)
            .filter(|(_, &alive)| alive)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Number of alive backends.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Marks `id` dead, re-homing its vnode arcs onto survivors.
    /// Returns `true` if the mask changed.
    pub fn mark_dead(&mut self, id: u32) -> bool {
        match self.index_of(id) {
            Some(at) if self.alive[at] => {
                self.alive[at] = false;
                self.rebuild();
                true
            }
            _ => false,
        }
    }

    /// Marks `id` alive again, restoring its exact pre-death
    /// assignments. Returns `true` if the mask changed.
    pub fn mark_alive(&mut self, id: u32) -> bool {
        match self.index_of(id) {
            Some(at) if !self.alive[at] => {
                self.alive[at] = true;
                self.rebuild();
                true
            }
            _ => false,
        }
    }

    /// The full-membership vnode owning `hash` — the index load
    /// accounting and assignment tables are keyed by. Stable across
    /// liveness changes.
    pub fn vnode_of(&self, hash: u64) -> usize {
        self.full.vnode_of(hash)
    }

    /// Total vnode count on the full ring.
    pub fn vnode_count(&self) -> usize {
        self.full.vnode_count()
    }

    /// The full ring's hash-derived vnode→backend table (the cold-start
    /// default assignment).
    pub fn default_owners(&self) -> Vec<u32> {
        self.full.default_owners()
    }

    /// Installs (or with `None` clears) an explicit vnode→backend
    /// assignment, indexed by the full ring's vnode ids.
    ///
    /// Panics if the table's length does not match
    /// [`vnode_count`](FailoverRing::vnode_count) or an owner is not a
    /// member — a planner bug, not a runtime condition: dead-but-member
    /// owners are legal and simply fall back until the next tick.
    pub fn set_assignment(&mut self, owners: Option<Vec<u32>>) {
        if let Some(owners) = &owners {
            assert_eq!(owners.len(), self.vnode_count(), "one owner per vnode");
            for &owner in owners {
                assert!(self.index_of(owner).is_some(), "owner {owner} not a member");
            }
        }
        self.assignment = owners;
    }

    /// The explicit assignment in effect, if any.
    pub fn assignment(&self) -> Option<&[u32]> {
        self.assignment.as_deref()
    }

    /// The assigned owner for `hash`, provided it is alive and not in
    /// `exclude`.
    fn assigned(&self, hash: u64, exclude: &[u32]) -> Option<u32> {
        let owners = self.assignment.as_ref()?;
        let owner = owners[self.full.vnode_of(hash)];
        (self.is_alive(owner) && !exclude.contains(&owner)).then_some(owner)
    }

    /// The alive backend owning `hash`, or `None` when every backend is
    /// dead: the assigned owner when one is installed and alive, else
    /// the monotone hash ring over the alive subset.
    pub fn route(&self, hash: u64) -> Option<u32> {
        if let Some(owner) = self.assigned(hash, &[]) {
            return Some(owner);
        }
        self.current.as_ref().map(|r| r.route(hash))
    }

    /// The backend that would own `hash` if every id in `exclude` were
    /// also dead — the hedge/failover target: guaranteed alive and not
    /// excluded, or `None` when no such backend exists. `exclude`
    /// empty is exactly [`route`](FailoverRing::route).
    pub fn route_excluding(&self, hash: u64, exclude: &[u32]) -> Option<u32> {
        if let Some(owner) = self.assigned(hash, exclude) {
            return Some(owner);
        }
        if exclude.is_empty() {
            return self.current.as_ref().map(|r| r.route(hash));
        }
        let rest: Vec<u32> = self
            .alive_ids()
            .into_iter()
            .filter(|id| !exclude.contains(id))
            .collect();
        if rest.is_empty() {
            return None;
        }
        Some(Router::from_ids(rest, self.vnodes).route(hash))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_backend_owns_everything() {
        let router = Router::new(1, DEFAULT_VNODES);
        for k in [0, 1, u64::MAX / 2, u64::MAX] {
            assert_eq!(router.route(k), 0);
        }
    }

    #[test]
    fn routing_is_deterministic_and_membership_ordered() {
        let a = Router::new(4, 64);
        let b = Router::from_ids(vec![0, 1, 2, 3], 64);
        for k in (0..10_000u64).map(splitmix64) {
            assert_eq!(a.route(k), b.route(k));
        }
    }

    #[test]
    fn load_split_is_roughly_uniform() {
        let router = Router::new(4, DEFAULT_VNODES);
        let mut counts = [0u64; 4];
        const SAMPLES: u64 = 40_000;
        for k in 0..SAMPLES {
            counts[router.route(splitmix64(k)) as usize] += 1;
        }
        let mean = SAMPLES as f64 / 4.0;
        for (backend, &count) in counts.iter().enumerate() {
            let skew = count as f64 / mean;
            assert!(
                (0.5..2.0).contains(&skew),
                "backend {backend} holds {count}/{SAMPLES} (skew {skew:.2})"
            );
        }
    }

    #[test]
    fn wraparound_routes_to_the_first_vnode() {
        let router = Router::new(3, 8);
        let (first_pos, first_backend) = router.ring[0];
        let (last_pos, _) = *router.ring.last().unwrap();
        assert!(last_pos < u64::MAX, "test assumes the ring top is free");
        assert_eq!(router.route(last_pos + 1), first_backend);
        assert_eq!(router.route(first_pos), first_backend);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_backends_panics() {
        let _ = Router::new(0, 8);
    }

    #[test]
    fn failover_moves_only_the_dead_backends_keys() {
        let mut ring = FailoverRing::new(4, 64);
        let full = Router::new(4, 64);
        assert!(ring.mark_dead(2));
        assert!(!ring.mark_dead(2), "second mark is a no-op");
        for k in (0..10_000u64).map(splitmix64) {
            let before = full.route(k);
            let after = ring.route(k).expect("survivors remain");
            assert_ne!(after, 2, "routed to a dead backend");
            if before != 2 {
                assert_eq!(before, after, "a survivor's key moved");
            }
        }
    }

    #[test]
    fn revival_restores_the_exact_mapping() {
        let mut ring = FailoverRing::new(5, 48);
        let keys: Vec<u64> = (0..5_000u64).map(splitmix64).collect();
        let before: Vec<_> = keys.iter().map(|&k| ring.route(k)).collect();
        assert!(ring.mark_dead(1));
        assert!(ring.mark_dead(3));
        assert!(ring.mark_alive(3));
        assert!(ring.mark_alive(1));
        let after: Vec<_> = keys.iter().map(|&k| ring.route(k)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn all_dead_routes_to_none_and_revives() {
        let mut ring = FailoverRing::new(2, 16);
        assert!(ring.mark_dead(0));
        assert!(ring.mark_dead(1));
        assert_eq!(ring.alive_count(), 0);
        assert_eq!(ring.route(42), None);
        assert!(ring.mark_alive(0));
        assert_eq!(ring.route(42), Some(0));
    }

    #[test]
    fn route_excluding_skips_the_primary() {
        let mut ring = FailoverRing::new(3, 32);
        for k in (0..2_000u64).map(splitmix64) {
            let primary = ring.route(k).unwrap();
            assert_eq!(ring.route_excluding(k, &[]), Some(primary));
            let hedge = ring.route_excluding(k, &[primary]).unwrap();
            assert_ne!(primary, hedge);
            assert!(ring.route_excluding(k, &[0, 1, 2]).is_none());
        }
        // With one survivor there is no hedge target.
        ring.mark_dead(1);
        ring.mark_dead(2);
        assert_eq!(ring.route_excluding(7, &[0]), None);
        // Unknown ids are reported dead, known-alive ones alive.
        assert!(ring.is_alive(0));
        assert!(!ring.is_alive(9));
    }

    #[test]
    fn assignment_overrides_hash_placement() {
        let mut ring = FailoverRing::new(3, 16);
        // Assign every vnode to backend 2, regardless of position.
        ring.set_assignment(Some(vec![2; ring.vnode_count()]));
        for k in (0..2_000u64).map(splitmix64) {
            assert_eq!(ring.route(k), Some(2));
        }
        // Clearing restores the hash ring exactly.
        ring.set_assignment(None);
        let hash_ring = Router::new(3, 16);
        for k in (0..2_000u64).map(splitmix64) {
            assert_eq!(ring.route(k), Some(hash_ring.route(k)));
        }
    }

    #[test]
    fn dead_assigned_owner_falls_back_and_revives() {
        let mut ring = FailoverRing::new(3, 16);
        ring.set_assignment(Some(vec![1; ring.vnode_count()]));
        assert!(ring.mark_dead(1));
        for k in (0..1_000u64).map(splitmix64) {
            let owner = ring.route(k).expect("survivors remain");
            assert_ne!(owner, 1, "routed to the dead assigned owner");
        }
        // Revival restores the assignment, not just the hash mapping.
        assert!(ring.mark_alive(1));
        for k in (0..1_000u64).map(splitmix64) {
            assert_eq!(ring.route(k), Some(1));
        }
    }

    #[test]
    fn route_excluding_respects_assignment() {
        let mut ring = FailoverRing::new(3, 16);
        let owners: Vec<u32> = (0..ring.vnode_count() as u32).map(|v| v % 3).collect();
        ring.set_assignment(Some(owners.clone()));
        for k in (0..1_000u64).map(splitmix64) {
            let primary = ring.route(k).unwrap();
            assert_eq!(primary, owners[ring.vnode_of(k)]);
            let hedge = ring.route_excluding(k, &[primary]).unwrap();
            assert_ne!(hedge, primary, "hedge must avoid the assigned owner");
        }
    }

    #[test]
    #[should_panic(expected = "one owner per vnode")]
    fn wrong_length_assignment_panics() {
        let mut ring = FailoverRing::new(2, 8);
        ring.set_assignment(Some(vec![0; 3]));
    }
}
