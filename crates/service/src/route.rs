//! Consistent-hash routing across backend pools.
//!
//! The router places `vnodes` virtual nodes per backend on a u64 ring
//! (each vnode's position is a SplitMix64 hash of `(backend_id,
//! replica)`), and routes a key hash to the owning backend with a
//! binary search for the first vnode clockwise of the hash. Two
//! properties fall out of this construction:
//!
//! - **Stability**: adding one backend to `S` existing ones only
//!   reassigns the keys that now land on the new backend's vnodes —
//!   about `1/(S+1)` of the keyspace — and never shuffles keys between
//!   surviving backends. Removing a backend reassigns only its keys.
//! - **Determinism**: the ring depends only on the backend id set and
//!   the vnode count, not on insertion order or process history, so a
//!   restarted server re-homes every recovered record to the same
//!   backend a live router would pick.
//!
//! Keys enter as [`CacheKey::mix()`](crate::cache::CacheKey::mix)
//! fingerprints, which are already SplitMix64-finalised and uniform.

use crate::cache::splitmix64;

/// Default virtual nodes per backend; enough that the max/mean keyspace
/// imbalance across backends stays small (~sqrt(S/vnodes) relative
/// spread) without making ring construction or lookup measurable.
pub const DEFAULT_VNODES: usize = 96;

/// A consistent-hash ring over backend ids.
#[derive(Debug, Clone)]
pub struct Router {
    /// `(position, backend_id)` sorted by position.
    ring: Vec<(u64, u32)>,
    backends: usize,
    vnodes: usize,
}

impl Router {
    /// Ring over backends `0..backends` with `vnodes` virtual nodes
    /// each. Panics if either count is zero.
    pub fn new(backends: usize, vnodes: usize) -> Router {
        Self::from_ids((0..backends as u32).collect(), vnodes)
    }

    /// Ring over an explicit backend id set — the membership-change
    /// form: the ring for `{0,1,2}` is a strict subset of the ring for
    /// `{0,1,2,3}` restricted to surviving ids.
    pub fn from_ids(ids: Vec<u32>, vnodes: usize) -> Router {
        assert!(!ids.is_empty(), "router needs at least one backend");
        assert!(vnodes > 0, "router needs at least one vnode per backend");
        let backends = ids.len();
        let mut ring = Vec::with_capacity(backends * vnodes);
        for &id in &ids {
            for replica in 0..vnodes as u64 {
                // Spread id and replica into distinct bit ranges before
                // finalising so (id=1, replica=2) and (id=2, replica=1)
                // cannot collide structurally.
                let position = splitmix64((u64::from(id) << 32) | replica);
                ring.push((position, id));
            }
        }
        ring.sort_unstable();
        Router {
            ring,
            backends,
            vnodes,
        }
    }

    /// The backend owning `hash`: the first vnode at or clockwise of
    /// it, wrapping to the ring's start past the largest position.
    pub fn route(&self, hash: u64) -> u32 {
        let at = self.ring.partition_point(|&(pos, _)| pos < hash);
        let (_, backend) = self.ring[at % self.ring.len()];
        backend
    }

    /// Number of backends on the ring.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// Virtual nodes per backend.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_backend_owns_everything() {
        let router = Router::new(1, DEFAULT_VNODES);
        for k in [0, 1, u64::MAX / 2, u64::MAX] {
            assert_eq!(router.route(k), 0);
        }
    }

    #[test]
    fn routing_is_deterministic_and_membership_ordered() {
        let a = Router::new(4, 64);
        let b = Router::from_ids(vec![0, 1, 2, 3], 64);
        for k in (0..10_000u64).map(splitmix64) {
            assert_eq!(a.route(k), b.route(k));
        }
    }

    #[test]
    fn load_split_is_roughly_uniform() {
        let router = Router::new(4, DEFAULT_VNODES);
        let mut counts = [0u64; 4];
        const SAMPLES: u64 = 40_000;
        for k in 0..SAMPLES {
            counts[router.route(splitmix64(k)) as usize] += 1;
        }
        let mean = SAMPLES as f64 / 4.0;
        for (backend, &count) in counts.iter().enumerate() {
            let skew = count as f64 / mean;
            assert!(
                (0.5..2.0).contains(&skew),
                "backend {backend} holds {count}/{SAMPLES} (skew {skew:.2})"
            );
        }
    }

    #[test]
    fn wraparound_routes_to_the_first_vnode() {
        let router = Router::new(3, 8);
        let (first_pos, first_backend) = router.ring[0];
        let (last_pos, _) = *router.ring.last().unwrap();
        assert!(last_pos < u64::MAX, "test assumes the ring top is free");
        assert_eq!(router.route(last_pos + 1), first_backend);
        assert_eq!(router.route(first_pos), first_backend);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_backends_panics() {
        let _ = Router::new(0, 8);
    }
}
