//! `loadgen` — drive a gb-service server with concurrent clients.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--clients K] [--requests R] [--n N]
//!         [--distinct D] [--algorithms hf,ba,bahf,phf] [--theta X]
//!         [--deadline-ms MS]
//! ```
//!
//! Without `--addr` an in-process server is spawned on an ephemeral port
//! (and shut down gracefully at the end), so
//! `cargo run -p gb-service --release --bin loadgen` is self-contained.
//!
//! `R` requests are spread over `K` connections. Problem seeds cycle
//! through `D` distinct values, so with `R > D·|algorithms|` the run
//! revisits earlier requests and exercises the server's result cache.
//! Prints throughput, the client-observed latency distribution
//! (p50/p95/p99) and the server's own `stats` snapshot.

use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use gb_service::client::Client;
use gb_service::proto::{Algorithm, BalanceRequest, ErrorCode, Request, Response};
use gb_service::server::{Server, ServerConfig};
use gb_service::spec::ProblemSpec;

struct Options {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    n: usize,
    distinct: usize,
    algorithms: Vec<Algorithm>,
    theta: f64,
    deadline_ms: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            addr: None,
            clients: 8,
            requests: 1000,
            n: 64,
            distinct: 64,
            algorithms: Algorithm::ALL.to_vec(),
            theta: 1.0,
            deadline_ms: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--clients K] [--requests R] [--n N] \
         [--distinct D] [--algorithms hf,ba,bahf,phf] [--theta X] [--deadline-ms MS]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => opts.addr = Some(value("--addr")),
            "--clients" => opts.clients = parse_usize(&value("--clients"), "--clients").max(1),
            "--requests" => opts.requests = parse_usize(&value("--requests"), "--requests"),
            "--n" => opts.n = parse_usize(&value("--n"), "--n").max(1),
            "--distinct" => opts.distinct = parse_usize(&value("--distinct"), "--distinct").max(1),
            "--theta" => {
                opts.theta = value("--theta").parse().unwrap_or_else(|_| {
                    eprintln!("--theta expects a number");
                    usage()
                })
            }
            "--deadline-ms" => {
                opts.deadline_ms =
                    Some(parse_usize(&value("--deadline-ms"), "--deadline-ms") as u64)
            }
            "--algorithms" => {
                let list = value("--algorithms");
                opts.algorithms = list
                    .split(',')
                    .map(|s| {
                        Algorithm::from_name(s.trim()).unwrap_or_else(|| {
                            eprintln!("unknown algorithm {s:?}");
                            usage()
                        })
                    })
                    .collect();
                if opts.algorithms.is_empty() {
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    opts
}

fn parse_usize(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects an integer, got {text:?}");
        usage()
    })
}

#[derive(Default)]
struct ClientTally {
    ok: u64,
    cached: u64,
    errors: Vec<(ErrorCode, u64)>,
    latencies_us: Vec<u64>,
}

impl ClientTally {
    fn record_error(&mut self, code: ErrorCode) {
        for (c, n) in &mut self.errors {
            if *c == code {
                *n += 1;
                return;
            }
        }
        self.errors.push((code, 1));
    }
}

fn request_for(opts: &Options, index: usize) -> Request {
    let algorithm = opts.algorithms[index % opts.algorithms.len()];
    let seed = (index / opts.algorithms.len()) % opts.distinct;
    Request::Balance(BalanceRequest {
        id: Some(index as u64),
        algorithm,
        n: opts.n,
        theta: opts.theta,
        deadline_ms: opts.deadline_ms,
        // Piece weights are large; loadgen only needs ratio/bound.
        want_pieces: false,
        problem: ProblemSpec::Synthetic {
            weight: 1.0,
            lo: 0.2,
            hi: 0.5,
            seed: seed as u64,
        },
    })
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).max(1) - 1;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn main() -> ExitCode {
    let opts = Arc::new(parse_args());

    // Spawn an in-process server unless one was pointed at.
    let local_server = if opts.addr.is_none() {
        match Server::start(ServerConfig::default()) {
            Ok(s) => {
                println!("loadgen: spawned in-process server on {}", s.local_addr());
                Some(s)
            }
            Err(e) => {
                eprintln!("loadgen: failed to start in-process server: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = match &local_server {
        Some(s) => s.local_addr(),
        None => {
            let text = opts.addr.as_deref().expect("addr flag present");
            match text.parse() {
                Ok(a) => a,
                Err(_) => {
                    eprintln!("loadgen: --addr must be HOST:PORT, got {text:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    println!(
        "loadgen: {} requests over {} clients against {} (n={}, algorithms: {})",
        opts.requests,
        opts.clients,
        addr,
        opts.n,
        opts.algorithms
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join(",")
    );

    let started = Instant::now();
    let mut handles = Vec::new();
    for client_index in 0..opts.clients {
        let opts = Arc::clone(&opts);
        handles.push(thread::spawn(move || -> Result<ClientTally, String> {
            let mut client = Client::connect(addr)
                .map_err(|e| format!("client {client_index}: connect: {e}"))?;
            let mut tally = ClientTally::default();
            // Request k of client c is global index c + k·K: all clients
            // interleave through the same seed cycle.
            let mut index = client_index;
            while index < opts.requests {
                let request = request_for(&opts, index);
                let sent = Instant::now();
                let response = client
                    .call(&request)
                    .map_err(|e| format!("client {client_index}: call: {e}"))?;
                let us = sent.elapsed().as_micros().min(u64::MAX as u128) as u64;
                tally.latencies_us.push(us);
                match response {
                    Response::Ok(ok) => {
                        tally.ok += 1;
                        if ok.cached {
                            tally.cached += 1;
                        }
                    }
                    Response::Error { code, .. } => tally.record_error(code),
                    other => return Err(format!("client {client_index}: unexpected {other:?}")),
                }
                index += opts.clients;
            }
            Ok(tally)
        }));
    }

    let mut ok = 0u64;
    let mut cached = 0u64;
    let mut errors: Vec<(ErrorCode, u64)> = Vec::new();
    let mut latencies = Vec::with_capacity(opts.requests);
    let mut failures = Vec::new();
    for handle in handles {
        match handle.join().expect("client thread panicked") {
            Ok(tally) => {
                ok += tally.ok;
                cached += tally.cached;
                latencies.extend(tally.latencies_us);
                for (code, count) in tally.errors {
                    match errors.iter_mut().find(|(c, _)| *c == code) {
                        Some((_, n)) => *n += count,
                        None => errors.push((code, count)),
                    }
                }
            }
            Err(e) => failures.push(e),
        }
    }
    let elapsed = started.elapsed();

    let answered = latencies.len() as u64;
    latencies.sort_unstable();
    let throughput = answered as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "loadgen: {answered} responses in {:.3} s  ({throughput:.0} req/s)",
        elapsed.as_secs_f64()
    );
    println!(
        "  ok {ok} (cached {cached}), p50 {} us, p95 {} us, p99 {} us, max {} us",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
        latencies.last().copied().unwrap_or(0),
    );
    for (code, count) in &errors {
        println!("  {}: {count}", code.name());
    }
    for failure in &failures {
        eprintln!("loadgen: {failure}");
    }

    // Ask the server for its own view of the run.
    match Client::connect(addr).and_then(|mut c| c.call(&Request::Stats)) {
        Ok(Response::Stats(stats)) => {
            let hit_rate = stats
                .get("cache")
                .and_then(|c| c.get("hit_rate"))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            let total = stats
                .get("requests")
                .and_then(|r| r.get("total"))
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            println!(
                "server: {total} requests served, cache hit rate {:.1}%",
                hit_rate * 100.0
            );
            println!("server stats: {}", stats.encode());
        }
        Ok(other) => eprintln!("loadgen: unexpected stats reply {other:?}"),
        Err(e) => eprintln!("loadgen: stats request failed: {e}"),
    }

    if let Some(server) = local_server {
        server.shutdown();
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
