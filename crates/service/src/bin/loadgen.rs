//! `loadgen` — drive a gb-service server with concurrent clients.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--clients K] [--requests R] [--n N]
//!         [--distinct D] [--algorithms hf,ba,bahf,phf] [--theta X]
//!         [--deadline-ms MS] [--read-timeout-ms MS] [--write-timeout-ms MS]
//! loadgen --bench [--duration-ms MS] [--out FILE] [--store-dir PATH]
//! loadgen --chaos [--duration-ms MS] [--seed S] [--shutdown] [--store-dir PATH]
//! loadgen --warm-load --addr HOST:PORT [--distinct D]
//! loadgen --warm-replay --addr HOST:PORT [--distinct D] [--min-warm-rate X]
//!         [--metrics-out FILE] [--shutdown]
//! loadgen --warm-bench [--distinct D] [--out FILE]
//! loadgen --shard-bench [--duration-ms MS] [--out FILE]
//! loadgen --router-bench [--duration-ms MS] [--out FILE]
//! loadgen --soak [--conns N] [--active K] [--duration-ms MS] [--out FILE]
//! ```
//!
//! Without `--addr` an in-process server is spawned on an ephemeral port
//! (and shut down gracefully at the end), so
//! `cargo run -p gb-service --release --bin loadgen` is self-contained.
//!
//! `R` requests are spread over `K` connections. Problem seeds cycle
//! through `D` distinct values, so with `R > D·|algorithms|` the run
//! revisits earlier requests and exercises the server's result cache.
//! Prints throughput, the client-observed latency distribution
//! (p50/p95/p99) and the server's own `stats` snapshot.
//!
//! `--bench` runs the fixed before/after serving benchmark instead: the
//! same hot-cache workload against the legacy threaded engine and the
//! event engine (8 workers, 64 connections), plus scan-resistance
//! hit-rate probes at `--distinct` 16 and 4096 with TinyLFU admission on
//! and off. Results are written as pretty-printed JSON (default
//! `BENCH_serving.json`). `--duration-ms` caps each throughput phase's
//! wall time for smoke runs; the hit-rate phases are fixed-size.
//!
//! `--chaos` runs hostile clients instead: for `--duration-ms` (default
//! 5 s) each of `--clients` threads randomly drops connections mid-frame,
//! abandons requests without reading the reply, interleaves garbage and
//! oversized frames with valid traffic, and pipelines normally — all from
//! a deterministic `--seed`. Afterwards it asserts the "never wedges"
//! invariants: queue depth and in-flight count drain to zero and a fresh
//! client still gets a correct `Balance` answer. `--shutdown` then stops
//! the server via a `shutdown` frame (used by the CI chaos-smoke step).
//!
//! `--store-dir` gives any in-process server (the default mode, `--chaos`
//! and `--bench`) a crash-safe `gb-store` result store, so those runs
//! also exercise the spill/recovery path. Directories the run creates
//! are removed on exit; a pre-existing directory is left alone. Bench
//! phases use fresh per-phase subdirectories so no phase warm-starts
//! from another's records.
//!
//! The warm trio drives the crash-recovery story end to end:
//! `--warm-load` primes an external server's hot set and waits until
//! every record is durably appended to its store (safe to SIGKILL);
//! `--warm-replay` replays the same hot set against a restarted server
//! and fails unless the warm hit rate reaches `--min-warm-rate`
//! (default 0.9) with `store.recovered > 0`, optionally writing the
//! stats-endpoint store section to `--metrics-out`; `--warm-bench` runs
//! the committed warm-vs-cold restart experiment in-process and writes
//! `BENCH_store.json`. When the server runs with `--store-sync data|full`
//! (reported in its stats), `--warm-load` additionally waits until the
//! store has *fsynced* every record, so SUCCESS means the set survives
//! power loss, not just a process kill.
//!
//! `--backends N` / `--backend-vnodes V` shard any in-process server the
//! run spawns (the default mode and `--chaos`), and `--store-sync`
//! selects its durability mode when `--store-dir` is also set.
//!
//! `--router-bench` runs the committed cross-process router-tier
//! experiment and writes `results/BENCH_router.json`. It spawns real
//! `gb-serve` and `gb-router` child processes (found as siblings of this
//! binary, built on demand) and measures four things: direct
//! single-process throughput, the same workload proxied through the
//! router (the run fails unless proxied stays within 2x of direct),
//! the client-visible error count when one upstream is SIGKILLed under a
//! pinned flood (plus the vnode re-home window), and tail latency
//! against a deliberately stalled upstream with hedged retries off vs on
//! (the run fails unless hedging lowers p99). `--duration-ms` shrinks
//! every phase for smoke runs.
//!
//! In the default (plain) mode, `--metrics-out FILE` snapshots the
//! server's stats endpoint to FILE after the run and `--shutdown` then
//! stops the server via a `shutdown` frame — together they let CI drive
//! an external server end to end and keep the evidence.
//!
//! `--soak` runs the committed connection-scaling experiment and writes
//! `results/BENCH_soak.json`: `--conns` mostly-idle connections (default
//! 10000) with an `--active` minority (default 1%) sending paced
//! cache-hit requests, held for `--duration-ms` against a real
//! `gb-serve` child per engine — the sweep (event) engine first as the
//! baseline, then epoll. Poller CPU comes from the child's
//! `/proc/<pid>/task/*/stat` deltas over the window. The run fails
//! unless the epoll pollers burn at most 0.2x the sweep pollers' CPU
//! and the active p99 stays within 1.2x of the sweep engine's.
//!
//! `--shard-bench` runs the committed hot-class isolation experiment and
//! writes `BENCH_sharding.json`: a hot problem class floods the one
//! backend that owns it while a victim class (keys owned by the *other*
//! backends) is probed for latency. Three phases: victims alone
//! (isolated baseline), victims + flood on a 4-backend server (sharded),
//! and victims + flood on a 1-backend server (the unsharded control,
//! where the flood shares the victims' queue and cache). The run fails
//! unless the sharded victim p99 stays within 2x the isolated baseline.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use gb_service::cache::CacheKey;
use gb_service::client::Client;
use gb_service::persist::StoreSettings;
use gb_service::proto::{
    Algorithm, BalanceRequest, Codec, ErrorCode, Json, Request, Response, WireCodec, BIN_HDR,
    MAGIC, MAX_FRAME,
};
use gb_service::route::Router;
use gb_service::server::{Engine, Server, ServerConfig, Tuning};
use gb_service::spec::ProblemSpec;

struct Options {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    n: usize,
    distinct: usize,
    algorithms: Vec<Algorithm>,
    theta: f64,
    deadline_ms: Option<u64>,
    bench: bool,
    codec_bench: bool,
    codec: WireCodec,
    chaos: bool,
    seed: u64,
    send_shutdown: bool,
    read_timeout_ms: Option<u64>,
    write_timeout_ms: Option<u64>,
    duration_ms: Option<u64>,
    out: String,
    store_dir: Option<String>,
    warm_load: bool,
    warm_replay: bool,
    warm_bench: bool,
    shard_bench: bool,
    skew_bench: bool,
    router_bench: bool,
    soak: bool,
    conns: usize,
    active: usize,
    min_warm_rate: f64,
    metrics_out: Option<String>,
    backends: usize,
    backend_vnodes: usize,
    store_sync: Option<gb_store::SyncMode>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            addr: None,
            clients: 8,
            requests: 1000,
            n: 64,
            distinct: 64,
            algorithms: Algorithm::ALL.to_vec(),
            theta: 1.0,
            deadline_ms: None,
            bench: false,
            codec_bench: false,
            codec: WireCodec::Json,
            chaos: false,
            seed: 1,
            send_shutdown: false,
            read_timeout_ms: None,
            write_timeout_ms: None,
            duration_ms: None,
            out: "BENCH_serving.json".into(),
            store_dir: None,
            warm_load: false,
            warm_replay: false,
            warm_bench: false,
            shard_bench: false,
            skew_bench: false,
            router_bench: false,
            soak: false,
            conns: 10_000,
            active: 0,
            min_warm_rate: 0.9,
            metrics_out: None,
            backends: 0,
            backend_vnodes: 0,
            store_sync: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--clients K] [--requests R] [--n N] \
         [--distinct D] [--algorithms hf,ba,bahf,phf] [--theta X] [--deadline-ms MS] \
         [--read-timeout-ms MS] [--write-timeout-ms MS] \
         [--backends N] [--backend-vnodes V] [--store-sync none|data|full] \
         [--codec json|binary]\n\
         \x20      loadgen --bench [--duration-ms MS] [--out FILE] [--store-dir PATH]\n\
         \x20      loadgen --codec-bench [--duration-ms MS] [--out FILE]\n\
         \x20      loadgen --chaos [--duration-ms MS] [--seed S] [--shutdown] [--store-dir PATH] \
         [--backends N] [--metrics-out FILE]\n\
         \x20      loadgen --warm-load --addr HOST:PORT [--distinct D]\n\
         \x20      loadgen --warm-replay --addr HOST:PORT [--distinct D] [--min-warm-rate X] \
         [--metrics-out FILE] [--shutdown]\n\
         \x20      loadgen --warm-bench [--distinct D] [--out FILE]\n\
         \x20      loadgen --shard-bench [--duration-ms MS] [--out FILE]\n\
         \x20      loadgen --skew-bench [--duration-ms MS] [--out FILE]\n\
         \x20      loadgen --router-bench [--duration-ms MS] [--out FILE]\n\
         \x20      loadgen --soak [--conns N] [--active K] [--duration-ms MS] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => opts.addr = Some(value("--addr")),
            "--clients" => opts.clients = parse_usize(&value("--clients"), "--clients").max(1),
            "--requests" => opts.requests = parse_usize(&value("--requests"), "--requests"),
            "--n" => opts.n = parse_usize(&value("--n"), "--n").max(1),
            "--distinct" => opts.distinct = parse_usize(&value("--distinct"), "--distinct").max(1),
            "--theta" => {
                opts.theta = value("--theta").parse().unwrap_or_else(|_| {
                    eprintln!("--theta expects a number");
                    usage()
                })
            }
            "--deadline-ms" => {
                opts.deadline_ms =
                    Some(parse_usize(&value("--deadline-ms"), "--deadline-ms") as u64)
            }
            "--algorithms" => {
                let list = value("--algorithms");
                opts.algorithms = list
                    .split(',')
                    .map(|s| {
                        Algorithm::from_name(s.trim()).unwrap_or_else(|| {
                            eprintln!("unknown algorithm {s:?}");
                            usage()
                        })
                    })
                    .collect();
                if opts.algorithms.is_empty() {
                    usage();
                }
            }
            "--bench" => opts.bench = true,
            "--codec-bench" => opts.codec_bench = true,
            "--codec" => {
                opts.codec = match value("--codec").as_str() {
                    "json" => WireCodec::Json,
                    "binary" => WireCodec::Binary,
                    other => {
                        eprintln!("--codec expects json|binary, got {other:?}");
                        usage()
                    }
                }
            }
            "--chaos" => opts.chaos = true,
            "--seed" => opts.seed = parse_usize(&value("--seed"), "--seed") as u64,
            "--shutdown" => opts.send_shutdown = true,
            "--read-timeout-ms" => {
                opts.read_timeout_ms =
                    Some(parse_usize(&value("--read-timeout-ms"), "--read-timeout-ms") as u64)
            }
            "--write-timeout-ms" => {
                opts.write_timeout_ms =
                    Some(parse_usize(&value("--write-timeout-ms"), "--write-timeout-ms") as u64)
            }
            "--duration-ms" => {
                opts.duration_ms =
                    Some(parse_usize(&value("--duration-ms"), "--duration-ms") as u64)
            }
            "--out" => opts.out = value("--out"),
            "--store-dir" => opts.store_dir = Some(value("--store-dir")),
            "--warm-load" => opts.warm_load = true,
            "--warm-replay" => opts.warm_replay = true,
            "--warm-bench" => opts.warm_bench = true,
            "--shard-bench" => opts.shard_bench = true,
            "--skew-bench" => opts.skew_bench = true,
            "--router-bench" => opts.router_bench = true,
            "--soak" => opts.soak = true,
            "--conns" => opts.conns = parse_usize(&value("--conns"), "--conns").max(1),
            "--active" => opts.active = parse_usize(&value("--active"), "--active"),
            "--backends" => opts.backends = parse_usize(&value("--backends"), "--backends"),
            "--backend-vnodes" => {
                opts.backend_vnodes = parse_usize(&value("--backend-vnodes"), "--backend-vnodes")
            }
            "--store-sync" => {
                let text = value("--store-sync");
                opts.store_sync = Some(gb_store::SyncMode::parse(&text).unwrap_or_else(|| {
                    eprintln!("--store-sync expects none|data|full, got {text:?}");
                    usage()
                }))
            }
            "--min-warm-rate" => {
                opts.min_warm_rate = value("--min-warm-rate").parse().unwrap_or_else(|_| {
                    eprintln!("--min-warm-rate expects a number in [0, 1]");
                    usage()
                })
            }
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    opts
}

fn parse_usize(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects an integer, got {text:?}");
        usage()
    })
}

#[derive(Default)]
struct ClientTally {
    ok: u64,
    cached: u64,
    errors: Vec<(ErrorCode, u64)>,
    latencies_us: Vec<u64>,
}

impl ClientTally {
    fn record_error(&mut self, code: ErrorCode) {
        for (c, n) in &mut self.errors {
            if *c == code {
                *n += 1;
                return;
            }
        }
        self.errors.push((code, 1));
    }
}

fn request_for(opts: &Options, index: usize) -> Request {
    let algorithm = opts.algorithms[index % opts.algorithms.len()];
    let seed = (index / opts.algorithms.len()) % opts.distinct;
    Request::Balance(BalanceRequest {
        id: Some(index as u64),
        algorithm,
        n: opts.n,
        theta: opts.theta,
        deadline_ms: opts.deadline_ms,
        // Piece weights are large; loadgen only needs ratio/bound.
        want_pieces: false,
        problem: ProblemSpec::Synthetic {
            weight: 1.0,
            lo: 0.2,
            hi: 0.5,
            seed: seed as u64,
        },
    })
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).max(1) - 1;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

// ---------------------------------------------------------------------------
// Store-directory plumbing shared by the modes that honor --store-dir
// ---------------------------------------------------------------------------

/// A store directory claimed for this run. Removed on drop only when the
/// run created it — a pre-existing directory the user pointed at is
/// theirs to keep.
struct StoreDir {
    path: PathBuf,
    owned: bool,
}

impl StoreDir {
    /// Claims `path`, noting whether it already existed.
    fn claim(path: &str) -> StoreDir {
        let path = PathBuf::from(path);
        let owned = !path.exists();
        StoreDir { path, owned }
    }

    /// A fresh run-scoped directory under the system temp dir.
    fn temp(tag: &str) -> StoreDir {
        let path =
            std::env::temp_dir().join(format!("gb-loadgen-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        StoreDir { path, owned: true }
    }
}

impl Drop for StoreDir {
    fn drop(&mut self) {
        if self.owned {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

static PHASE_DIR: AtomicUsize = AtomicUsize::new(0);

/// A bench phase's private store subdirectory: always fresh (so no phase
/// warm-starts from another phase's records) and removed on drop.
struct PhaseStore(Option<PathBuf>);

impl PhaseStore {
    fn new(root: Option<&Path>, tag: &str) -> PhaseStore {
        PhaseStore(root.map(|root| {
            let n = PHASE_DIR.fetch_add(1, Ordering::Relaxed);
            let path = root.join(format!("{tag}-{n}"));
            let _ = std::fs::remove_dir_all(&path);
            path
        }))
    }

    /// Attaches this phase's store (if any) to `tuning`.
    fn apply(&self, mut tuning: Tuning) -> Tuning {
        if let Some(path) = &self.0 {
            tuning.store = Some(StoreSettings::new(path));
        }
        tuning
    }
}

impl Drop for PhaseStore {
    fn drop(&mut self) {
        if let Some(path) = &self.0 {
            let _ = std::fs::remove_dir_all(path);
        }
    }
}

/// Fetches the server's full stats object.
fn fetch_stats(addr: std::net::SocketAddr) -> Option<Json> {
    match Client::connect(addr).and_then(|mut c| c.call(&Request::Stats)) {
        Ok(Response::Stats(stats)) => Some(stats),
        _ => None,
    }
}

/// Reads `store.<name>` out of a stats object.
fn store_counter(stats: &Json, name: &str) -> Option<u64> {
    stats.get("store")?.get(name)?.as_u64()
}

/// Polls the server until `store.<name> >= want` or the timeout passes.
/// Returns the last observed value (`None` when the server reports no
/// store section at all).
fn await_store_counter(
    addr: std::net::SocketAddr,
    name: &str,
    want: u64,
    timeout: Duration,
) -> Option<u64> {
    let deadline = Instant::now() + timeout;
    let mut last = None;
    loop {
        if let Some(stats) = fetch_stats(addr) {
            last = store_counter(&stats, name);
            if last.is_some_and(|v| v >= want) {
                return last;
            }
        }
        if Instant::now() >= deadline {
            return last;
        }
        thread::sleep(Duration::from_millis(50));
    }
}

// ---------------------------------------------------------------------------
// --bench: the before/after serving benchmark behind BENCH_serving.json
// ---------------------------------------------------------------------------

/// Server shape shared by both throughput phases (the issue's "8 workers,
/// 64 connections" configuration).
const BENCH_WORKERS: usize = 8;
const BENCH_CLIENTS: usize = 64;
const BENCH_QUEUE_CAP: usize = 256;
const BENCH_CACHE_CAP: usize = 1024;
const BENCH_POOL_THREADS: usize = 2;
const BENCH_N: usize = 16;
const BENCH_DISTINCT: u64 = 16;
/// Total requests per throughput phase when no `--duration-ms` cap is set.
const BENCH_REQUESTS: usize = 24_000;
/// Requests kept in flight per connection. The protocol is
/// newline-delimited with request ids, so clients may pipeline; a burst
/// of 16 is what a batching client library would send and it exercises
/// the server's multi-line sweep reads.
const BENCH_PIPELINE: usize = 16;
/// The hit-rate phases squeeze traffic through a small cache so the scan
/// actually evicts: 64 slots against a 2 000-key cold scan.
const HITRATE_CACHE_CAP: usize = 64;
const HITRATE_SCAN_KEYS: u64 = 2_000;

fn bench_request(id: u64, seed: u64) -> Request {
    Request::Balance(BalanceRequest {
        id: Some(id),
        algorithm: Algorithm::Hf,
        n: BENCH_N,
        theta: 1.0,
        deadline_ms: None,
        want_pieces: false,
        problem: ProblemSpec::Synthetic {
            weight: 1.0,
            lo: 0.2,
            hi: 0.5,
            seed,
        },
    })
}

/// Throughput rounds per engine; the best round is reported. A single
/// shared core makes individual rounds noisy (scheduler interference),
/// so best-of-N is the stable point estimate. Capped runs do one round.
const BENCH_ROUNDS: usize = 3;

struct PhaseStats {
    engine: &'static str,
    answered: u64,
    ok: u64,
    cached: u64,
    errors: u64,
    elapsed_s: f64,
    rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    max_us: u64,
    server_hit_rate: f64,
    rounds_rps: Vec<f64>,
}

impl PhaseStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("engine".into(), Json::Str(self.engine.into())),
            ("requests".into(), Json::Int(self.answered as i64)),
            ("ok".into(), Json::Int(self.ok as i64)),
            ("cached".into(), Json::Int(self.cached as i64)),
            ("errors".into(), Json::Int(self.errors as i64)),
            ("elapsed_s".into(), Json::Num(self.elapsed_s)),
            ("throughput_rps".into(), Json::Num(self.rps)),
            ("p50_us".into(), Json::Int(self.p50_us as i64)),
            ("p95_us".into(), Json::Int(self.p95_us as i64)),
            ("p99_us".into(), Json::Int(self.p99_us as i64)),
            ("max_us".into(), Json::Int(self.max_us as i64)),
            ("cache_hit_rate".into(), Json::Num(self.server_hit_rate)),
            (
                "rounds_rps".into(),
                Json::Arr(self.rounds_rps.iter().map(|&r| Json::Num(r)).collect()),
            ),
        ])
    }
}

fn server_hit_rate(addr: std::net::SocketAddr) -> f64 {
    Client::connect(addr)
        .and_then(|mut c| c.call(&Request::Stats))
        .ok()
        .and_then(|r| match r {
            Response::Stats(stats) => stats
                .get("cache")
                .and_then(|c| c.get("hit_rate"))
                .and_then(|v| v.as_f64()),
            _ => None,
        })
        .unwrap_or(0.0)
}

/// One throughput phase: a warmed 16-key hot set served to 64 concurrent
/// connections. The threaded engine runs with a single cache shard and no
/// admission (the pre-refactor configuration); the event engine runs with
/// its defaults (sharded cache, TinyLFU, inline fast path).
fn throughput_phase(
    engine: Engine,
    cap: Option<Duration>,
    store_root: Option<&Path>,
) -> Result<PhaseStats, String> {
    let store = PhaseStore::new(store_root, engine.name());
    let tuning = store.apply(match engine {
        Engine::Threaded => Tuning {
            engine,
            cache_shards: 1,
            admission: false,
            ..Tuning::default()
        },
        Engine::Event | Engine::Epoll => Tuning {
            engine,
            ..Tuning::default()
        },
    });
    let server = Server::start_tuned(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: BENCH_WORKERS,
            queue_capacity: BENCH_QUEUE_CAP,
            cache_capacity: BENCH_CACHE_CAP,
            pool_threads: BENCH_POOL_THREADS,
        },
        tuning,
    )
    .map_err(|e| format!("bench server ({}): {e}", engine.name()))?;
    let addr = server.local_addr();

    // Warm every distinct key once so the measured section is the steady
    // state — hot cache, where lock contention used to dominate.
    {
        let mut client = Client::connect(addr).map_err(|e| format!("warm connect: {e}"))?;
        for seed in 0..BENCH_DISTINCT {
            client
                .call(&bench_request(seed, seed))
                .map_err(|e| format!("warm call: {e}"))?;
        }
    }

    let counter = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let deadline = cap.map(|d| started + d);
    let mut handles = Vec::new();
    for client_index in 0..BENCH_CLIENTS {
        let counter = Arc::clone(&counter);
        handles.push(thread::spawn(move || -> Result<ClientTally, String> {
            // A raw pipelined connection: write a burst of requests as one
            // buffer, then collect the replies in order. Both engines see
            // the identical byte stream.
            let stream = TcpStream::connect(addr)
                .map_err(|e| format!("bench client {client_index}: connect: {e}"))?;
            stream
                .set_nodelay(true)
                .map_err(|e| format!("bench client {client_index}: nodelay: {e}"))?;
            let mut writer = stream
                .try_clone()
                .map_err(|e| format!("bench client {client_index}: clone: {e}"))?;
            let mut reader = BufReader::new(stream);
            let mut tally = ClientTally::default();
            let mut out = String::new();
            let mut line = String::new();
            loop {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        break;
                    }
                }
                let start = counter.fetch_add(BENCH_PIPELINE, Ordering::Relaxed);
                if start >= BENCH_REQUESTS {
                    break;
                }
                let burst = BENCH_PIPELINE.min(BENCH_REQUESTS - start);
                out.clear();
                for j in 0..burst {
                    let index = (start + j) as u64;
                    out.push_str(&bench_request(index, index % BENCH_DISTINCT).encode());
                    out.push('\n');
                }
                let sent = Instant::now();
                writer
                    .write_all(out.as_bytes())
                    .map_err(|e| format!("bench client {client_index}: write: {e}"))?;
                for _ in 0..burst {
                    line.clear();
                    let k = reader
                        .read_line(&mut line)
                        .map_err(|e| format!("bench client {client_index}: read: {e}"))?;
                    if k == 0 {
                        return Err(format!("bench client {client_index}: server closed"));
                    }
                    let us = sent.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    tally.latencies_us.push(us);
                    // A load generator should not burn its single core on
                    // full JSON decodes; scan for the success markers and
                    // only fully decode unexpected lines.
                    if line.contains("\"status\":\"ok\"") {
                        tally.ok += 1;
                        if line.contains("\"cached\":true") {
                            tally.cached += 1;
                        }
                    } else {
                        match Response::decode(line.trim_end())
                            .map_err(|e| format!("bench client {client_index}: decode: {e:?}"))?
                        {
                            Response::Error { code, .. } => tally.record_error(code),
                            other => {
                                return Err(format!(
                                    "bench client {client_index}: unexpected {other:?}"
                                ))
                            }
                        }
                    }
                }
            }
            Ok(tally)
        }));
    }

    let mut ok = 0u64;
    let mut cached = 0u64;
    let mut errors = 0u64;
    let mut latencies = Vec::new();
    for handle in handles {
        let tally = handle.join().expect("bench client panicked")?;
        ok += tally.ok;
        cached += tally.cached;
        errors += tally.errors.iter().map(|(_, n)| n).sum::<u64>();
        latencies.extend(tally.latencies_us);
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    let answered = latencies.len() as u64;
    let hit_rate = server_hit_rate(addr);
    server.shutdown();

    let rps = answered as f64 / elapsed.as_secs_f64().max(1e-9);
    Ok(PhaseStats {
        engine: engine.name(),
        answered,
        ok,
        cached,
        errors,
        elapsed_s: elapsed.as_secs_f64(),
        rps,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        server_hit_rate: hit_rate,
        rounds_rps: vec![rps],
    })
}

/// Best-of-N throughput rounds for one engine (one round when capped).
fn throughput_best(
    engine: Engine,
    cap: Option<Duration>,
    store_root: Option<&Path>,
) -> Result<PhaseStats, String> {
    let rounds = if cap.is_some() { 1 } else { BENCH_ROUNDS };
    let mut best: Option<PhaseStats> = None;
    let mut rounds_rps = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let round = throughput_phase(engine, cap, store_root)?;
        rounds_rps.push(round.rps);
        if best.as_ref().is_none_or(|b| round.rps > b.rps) {
            best = Some(round);
        }
    }
    let mut best = best.expect("at least one round");
    best.rounds_rps = rounds_rps;
    Ok(best)
}

/// One hit-rate phase: warm a working set of `distinct` keys, wreck the
/// cache with a one-pass cold scan, then probe the working set again and
/// report the probe hit rate. With TinyLFU admission the hot set should
/// survive the scan; with plain LRU it is flushed.
fn hitrate_phase(
    distinct: u64,
    admission: bool,
    store_root: Option<&Path>,
) -> Result<Json, String> {
    let store = PhaseStore::new(store_root, "hitrate");
    let server = Server::start_tuned(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: BENCH_QUEUE_CAP,
            cache_capacity: HITRATE_CACHE_CAP,
            pool_threads: 1,
        },
        store.apply(Tuning {
            admission,
            ..Tuning::default()
        }),
    )
    .map_err(|e| format!("hitrate server: {e}"))?;
    let addr = server.local_addr();
    let mut client = Client::connect(addr).map_err(|e| format!("hitrate connect: {e}"))?;

    let mut next_id = 0u64;
    let mut call = |client: &mut Client, seed: u64| -> Result<bool, String> {
        next_id += 1;
        match client
            .call(&bench_request(next_id, seed))
            .map_err(|e| format!("hitrate call: {e}"))?
        {
            Response::Ok(ok) => Ok(ok.cached),
            other => Err(format!("hitrate: unexpected {other:?}")),
        }
    };

    // More warm passes when the working set fits the cache (reuse is what
    // earns admission); a set larger than the cache gets a single pass.
    let warm_passes = if distinct <= HITRATE_CACHE_CAP as u64 {
        4
    } else {
        1
    };
    let probe_passes = if distinct <= HITRATE_CACHE_CAP as u64 {
        2
    } else {
        1
    };
    for _ in 0..warm_passes {
        for k in 0..distinct {
            call(&mut client, k)?;
        }
    }
    for c in 0..HITRATE_SCAN_KEYS {
        call(&mut client, 1_000_000 + c)?;
    }
    let mut probes = 0u64;
    let mut probe_hits = 0u64;
    for _ in 0..probe_passes {
        for k in 0..distinct {
            probes += 1;
            if call(&mut client, k)? {
                probe_hits += 1;
            }
        }
    }
    let overall = server_hit_rate(addr);
    server.shutdown();

    Ok(Json::Obj(vec![
        ("distinct".into(), Json::Int(distinct as i64)),
        ("admission".into(), Json::Bool(admission)),
        ("warm_passes".into(), Json::Int(warm_passes as i64)),
        ("scan_keys".into(), Json::Int(HITRATE_SCAN_KEYS as i64)),
        ("probes".into(), Json::Int(probes as i64)),
        ("probe_hits".into(), Json::Int(probe_hits as i64)),
        (
            "probe_hit_rate".into(),
            Json::Num(probe_hits as f64 / probes.max(1) as f64),
        ),
        ("overall_hit_rate".into(), Json::Num(overall)),
    ]))
}

fn run_bench(opts: &Options) -> ExitCode {
    let cap = opts.duration_ms.map(Duration::from_millis);
    // Honor --store-dir: phases run with per-phase store subdirectories
    // so the spill path is exercised under load; the guard removes a
    // directory this run created.
    let store_guard = opts.store_dir.as_deref().map(StoreDir::claim);
    let store_root = store_guard.as_ref().map(|g| g.path.as_path());
    match bench_report(cap, opts.duration_ms, store_root) {
        Ok(report) => {
            let out = &opts.out;
            let text = report.encode_pretty() + "\n";
            if let Err(e) = std::fs::write(out, text) {
                eprintln!("bench: failed to write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!("bench: wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench: {e}");
            ExitCode::FAILURE
        }
    }
}

fn bench_report(
    cap: Option<Duration>,
    duration_ms: Option<u64>,
    store_root: Option<&Path>,
) -> Result<Json, String> {
    println!(
        "bench: throughput, hot {}-key working set, {} clients x {} workers",
        BENCH_DISTINCT, BENCH_CLIENTS, BENCH_WORKERS
    );
    let before = throughput_best(Engine::Threaded, cap, store_root)?;
    println!(
        "  threaded: {:>8.0} req/s  p50 {} us  p95 {} us  p99 {} us  ({} requests)",
        before.rps, before.p50_us, before.p95_us, before.p99_us, before.answered
    );
    let after = throughput_best(Engine::Event, cap, store_root)?;
    println!(
        "  event:    {:>8.0} req/s  p50 {} us  p95 {} us  p99 {} us  ({} requests)",
        after.rps, after.p50_us, after.p95_us, after.p99_us, after.answered
    );
    let speedup = after.rps / before.rps.max(1e-9);
    println!("  speedup:  {speedup:.2}x");

    let mut cache_results = Vec::new();
    for &distinct in &[16u64, 4096] {
        for &admission in &[true, false] {
            let result = hitrate_phase(distinct, admission, store_root)?;
            let rate = result
                .get("probe_hit_rate")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            println!(
                "bench: hit rate, distinct {distinct}, admission {}: {:.1}% after cold scan",
                if admission { "on" } else { "off" },
                rate * 100.0
            );
            cache_results.push(result);
        }
    }

    Ok(Json::Obj(vec![
        (
            "schema".into(),
            Json::Str("gb-service/bench-serving/v1".into()),
        ),
        (
            "config".into(),
            Json::Obj(vec![
                ("workers".into(), Json::Int(BENCH_WORKERS as i64)),
                ("clients".into(), Json::Int(BENCH_CLIENTS as i64)),
                ("queue_capacity".into(), Json::Int(BENCH_QUEUE_CAP as i64)),
                ("cache_capacity".into(), Json::Int(BENCH_CACHE_CAP as i64)),
                ("pool_threads".into(), Json::Int(BENCH_POOL_THREADS as i64)),
                ("n".into(), Json::Int(BENCH_N as i64)),
                ("distinct".into(), Json::Int(BENCH_DISTINCT as i64)),
                ("requests".into(), Json::Int(BENCH_REQUESTS as i64)),
                ("pipeline".into(), Json::Int(BENCH_PIPELINE as i64)),
                (
                    "duration_ms".into(),
                    match duration_ms {
                        Some(ms) => Json::Int(ms as i64),
                        None => Json::Null,
                    },
                ),
                (
                    "hitrate_cache_capacity".into(),
                    Json::Int(HITRATE_CACHE_CAP as i64),
                ),
            ]),
        ),
        (
            "throughput".into(),
            Json::Obj(vec![
                ("before".into(), before.to_json()),
                ("after".into(), after.to_json()),
                ("speedup".into(), Json::Num(speedup)),
            ]),
        ),
        ("cache".into(), Json::Arr(cache_results)),
    ]))
}

// ---------------------------------------------------------------------------
// --codec-bench: JSON vs binary wire codec on the hot hit path
// ---------------------------------------------------------------------------

/// The committed event-engine hot-hit throughput from before the binary
/// codec and the encoded-reply cache existed (`results/BENCH_serving.json`,
/// `throughput.after`). Full codec-bench runs gate the binary hit path
/// at [`CODEC_MIN_SPEEDUP`]x this number.
const CODEC_BASELINE_RPS: f64 = 104_374.9;
const CODEC_MIN_SPEEDUP: f64 = 2.0;
/// Capped (smoke) runs land on arbitrary CI boxes where an absolute
/// req/s gate is meaningless; they assert the relative floor instead:
/// binary must not fall below this fraction of same-run JSON.
const CODEC_SMOKE_FLOOR: f64 = 0.8;

fn codec_name(codec: WireCodec) -> &'static str {
    match codec {
        WireCodec::Json => "json",
        WireCodec::Binary => "binary",
    }
}

/// One hot-hit throughput phase in one codec: the event engine serving
/// the warmed 16-key working set to 64 pipelined connections, identical
/// to the `--bench` "after" phase except for the wire encoding.
fn codec_phase(codec: WireCodec, cap: Option<Duration>) -> Result<PhaseStats, String> {
    let server = Server::start_tuned(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: BENCH_WORKERS,
            queue_capacity: BENCH_QUEUE_CAP,
            cache_capacity: BENCH_CACHE_CAP,
            pool_threads: BENCH_POOL_THREADS,
        },
        Tuning {
            engine: Engine::Event,
            ..Tuning::default()
        },
    )
    .map_err(|e| format!("codec bench server: {e}"))?;
    let addr = server.local_addr();

    // Warm every distinct key once in the measured codec, so the phase
    // starts with the encoded-reply tails already built.
    {
        let mut client = Client::connect(addr).map_err(|e| format!("warm connect: {e}"))?;
        client.set_codec(codec);
        for seed in 0..BENCH_DISTINCT {
            client
                .call(&bench_request(seed, seed))
                .map_err(|e| format!("warm call: {e}"))?;
        }
    }

    let counter = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let deadline = cap.map(|d| started + d);
    let mut handles = Vec::new();
    for client_index in 0..BENCH_CLIENTS {
        let counter = Arc::clone(&counter);
        handles.push(thread::spawn(move || -> Result<ClientTally, String> {
            let stream = TcpStream::connect(addr)
                .map_err(|e| format!("codec client {client_index}: connect: {e}"))?;
            stream
                .set_nodelay(true)
                .map_err(|e| format!("codec client {client_index}: nodelay: {e}"))?;
            let mut writer = stream
                .try_clone()
                .map_err(|e| format!("codec client {client_index}: clone: {e}"))?;
            let mut reader = BufReader::new(stream);
            let mut tally = ClientTally::default();
            let mut out: Vec<u8> = Vec::new();
            let mut line = String::new();
            let mut payload: Vec<u8> = Vec::new();
            loop {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        break;
                    }
                }
                let start = counter.fetch_add(BENCH_PIPELINE, Ordering::Relaxed);
                if start >= BENCH_REQUESTS {
                    break;
                }
                let burst = BENCH_PIPELINE.min(BENCH_REQUESTS - start);
                out.clear();
                for j in 0..burst {
                    let index = (start + j) as u64;
                    let request = bench_request(index, index % BENCH_DISTINCT);
                    match codec {
                        WireCodec::Json => {
                            out.extend_from_slice(request.encode().as_bytes());
                            out.push(b'\n');
                        }
                        WireCodec::Binary => WireCodec::Binary.encode_request(&request, &mut out),
                    }
                }
                let sent = Instant::now();
                writer
                    .write_all(&out)
                    .map_err(|e| format!("codec client {client_index}: write: {e}"))?;
                for _ in 0..burst {
                    match codec {
                        WireCodec::Json => {
                            line.clear();
                            let k = reader
                                .read_line(&mut line)
                                .map_err(|e| format!("codec client {client_index}: read: {e}"))?;
                            if k == 0 {
                                return Err(format!("codec client {client_index}: server closed"));
                            }
                            if line.contains("\"status\":\"ok\"") {
                                tally.ok += 1;
                                if line.contains("\"cached\":true") {
                                    tally.cached += 1;
                                }
                            } else {
                                match Response::decode(line.trim_end()).map_err(|e| {
                                    format!("codec client {client_index}: decode: {e:?}")
                                })? {
                                    Response::Error { code, .. } => tally.record_error(code),
                                    other => {
                                        return Err(format!(
                                            "codec client {client_index}: unexpected {other:?}"
                                        ))
                                    }
                                }
                            }
                        }
                        WireCodec::Binary => {
                            let mut header = [0u8; BIN_HDR];
                            reader.read_exact(&mut header).map_err(|e| {
                                format!("codec client {client_index}: read header: {e}")
                            })?;
                            if header[0] != MAGIC {
                                return Err(format!(
                                    "codec client {client_index}: bad magic {:#04x}",
                                    header[0]
                                ));
                            }
                            let len = u32::from_le_bytes(header[1..].try_into().unwrap()) as usize;
                            if len > MAX_FRAME {
                                return Err(format!(
                                    "codec client {client_index}: oversized reply ({len})"
                                ));
                            }
                            payload.resize(len, 0);
                            reader.read_exact(&mut payload).map_err(|e| {
                                format!("codec client {client_index}: read payload: {e}")
                            })?;
                            match WireCodec::Binary.decode_response(&payload).map_err(|e| {
                                format!("codec client {client_index}: decode: {e:?}")
                            })? {
                                Response::Ok(ok) => {
                                    tally.ok += 1;
                                    if ok.cached {
                                        tally.cached += 1;
                                    }
                                }
                                Response::Error { code, .. } => tally.record_error(code),
                                other => {
                                    return Err(format!(
                                        "codec client {client_index}: unexpected {other:?}"
                                    ))
                                }
                            }
                        }
                    }
                    let us = sent.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    tally.latencies_us.push(us);
                }
            }
            Ok(tally)
        }));
    }

    let mut ok = 0u64;
    let mut cached = 0u64;
    let mut errors = 0u64;
    let mut latencies = Vec::new();
    for handle in handles {
        let tally = handle.join().expect("codec bench client panicked")?;
        ok += tally.ok;
        cached += tally.cached;
        errors += tally.errors.iter().map(|(_, n)| n).sum::<u64>();
        latencies.extend(tally.latencies_us);
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    let answered = latencies.len() as u64;
    let hit_rate = server_hit_rate(addr);
    server.shutdown();

    let rps = answered as f64 / elapsed.as_secs_f64().max(1e-9);
    Ok(PhaseStats {
        engine: codec_name(codec),
        answered,
        ok,
        cached,
        errors,
        elapsed_s: elapsed.as_secs_f64(),
        rps,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        server_hit_rate: hit_rate,
        rounds_rps: vec![rps],
    })
}

/// Best-of-N rounds per codec (one round when capped).
fn codec_best(codec: WireCodec, cap: Option<Duration>) -> Result<PhaseStats, String> {
    let rounds = if cap.is_some() { 1 } else { BENCH_ROUNDS };
    let mut best: Option<PhaseStats> = None;
    let mut rounds_rps = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let round = codec_phase(codec, cap)?;
        rounds_rps.push(round.rps);
        if best.as_ref().is_none_or(|b| round.rps > b.rps) {
            best = Some(round);
        }
    }
    let mut best = best.expect("at least one round");
    best.rounds_rps = rounds_rps;
    Ok(best)
}

fn run_codec_bench(opts: &Options) -> ExitCode {
    let cap = opts.duration_ms.map(Duration::from_millis);
    let smoke = cap.is_some();
    println!(
        "codec-bench: hot {}-key hit path, {} clients x {} workers, event engine",
        BENCH_DISTINCT, BENCH_CLIENTS, BENCH_WORKERS
    );
    let report = (|| -> Result<(Json, bool), String> {
        let json = codec_best(WireCodec::Json, cap)?;
        println!(
            "  json:    {:>8.0} req/s  p50 {} us  p99 {} us  ({} requests, hit rate {:.1}%)",
            json.rps,
            json.p50_us,
            json.p99_us,
            json.answered,
            json.server_hit_rate * 100.0
        );
        let binary = codec_best(WireCodec::Binary, cap)?;
        println!(
            "  binary:  {:>8.0} req/s  p50 {} us  p99 {} us  ({} requests, hit rate {:.1}%)",
            binary.rps,
            binary.p50_us,
            binary.p99_us,
            binary.answered,
            binary.server_hit_rate * 100.0
        );
        let vs_json = binary.rps / json.rps.max(1e-9);
        let vs_baseline = binary.rps / CODEC_BASELINE_RPS;
        println!(
            "  speedup: {vs_baseline:.2}x vs the committed pre-codec baseline \
             ({CODEC_BASELINE_RPS:.0} req/s), {vs_json:.2}x vs same-run json"
        );
        let pass = if smoke {
            binary.rps >= CODEC_SMOKE_FLOOR * json.rps
        } else {
            vs_baseline >= CODEC_MIN_SPEEDUP
        };
        let assertion = Json::Obj(vec![
            ("pass".into(), Json::Bool(pass)),
            ("smoke".into(), Json::Bool(smoke)),
            ("binary_rps".into(), Json::Num(binary.rps)),
            ("json_rps".into(), Json::Num(json.rps)),
            ("baseline_rps".into(), Json::Num(CODEC_BASELINE_RPS)),
            ("speedup_vs_baseline".into(), Json::Num(vs_baseline)),
            (
                "min_speedup_vs_baseline".into(),
                Json::Num(CODEC_MIN_SPEEDUP),
            ),
            ("speedup_vs_json".into(), Json::Num(vs_json)),
            ("smoke_floor_vs_json".into(), Json::Num(CODEC_SMOKE_FLOOR)),
        ]);
        let report = Json::Obj(vec![
            (
                "schema".into(),
                Json::Str("gb-service/bench-codec/v1".into()),
            ),
            (
                "config".into(),
                Json::Obj(vec![
                    ("engine".into(), Json::Str("event".into())),
                    ("workers".into(), Json::Int(BENCH_WORKERS as i64)),
                    ("clients".into(), Json::Int(BENCH_CLIENTS as i64)),
                    ("n".into(), Json::Int(BENCH_N as i64)),
                    ("distinct".into(), Json::Int(BENCH_DISTINCT as i64)),
                    ("requests".into(), Json::Int(BENCH_REQUESTS as i64)),
                    ("pipeline".into(), Json::Int(BENCH_PIPELINE as i64)),
                    (
                        "duration_ms".into(),
                        match opts.duration_ms {
                            Some(ms) => Json::Int(ms as i64),
                            None => Json::Null,
                        },
                    ),
                ]),
            ),
            ("json".into(), json.to_json()),
            ("binary".into(), binary.to_json()),
            ("assertion".into(), assertion),
        ]);
        Ok((report, pass))
    })();
    match report {
        Ok((report, pass)) => {
            let out = if opts.out == "BENCH_serving.json" {
                "results/BENCH_codec.json"
            } else {
                opts.out.as_str()
            };
            if let Some(parent) = Path::new(out).parent() {
                if !parent.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(parent);
                }
            }
            if let Err(e) = std::fs::write(out, report.encode_pretty() + "\n") {
                eprintln!("codec-bench: failed to write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!("codec-bench: wrote {out}");
            if !pass {
                eprintln!("codec-bench: gate failed (see assertion section of {out})");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("codec-bench: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// --chaos: hostile clients + never-wedges invariant check
// ---------------------------------------------------------------------------

/// Deterministic split-mix style generator so a chaos run is replayable
/// from its `--seed`.
struct ChaosRng(u64);

impl ChaosRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Per-thread tally of hostile actions performed.
#[derive(Default)]
struct ChaosTally {
    valid_ok: u64,
    valid_err: u64,
    dropped_mid_frame: u64,
    abandoned_replies: u64,
    garbage_frames: u64,
    oversized_frames: u64,
    instant_drops: u64,
    io_errors: u64,
}

impl ChaosTally {
    fn merge(&mut self, other: &ChaosTally) {
        self.valid_ok += other.valid_ok;
        self.valid_err += other.valid_err;
        self.dropped_mid_frame += other.dropped_mid_frame;
        self.abandoned_replies += other.abandoned_replies;
        self.garbage_frames += other.garbage_frames;
        self.oversized_frames += other.oversized_frames;
        self.instant_drops += other.instant_drops;
        self.io_errors += other.io_errors;
    }
}

fn chaos_connect(addr: std::net::SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    Ok(stream)
}

/// Reads one reply line; `Ok(true)` if it was a `status: ok` frame.
fn chaos_read_reply(stream: &TcpStream) -> std::io::Result<bool> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(std::io::ErrorKind::UnexpectedEof.into());
    }
    Ok(line.contains("\"status\":\"ok\"") || line.contains("\"status\":\"pong\""))
}

/// One hostile exchange on a fresh connection. Every arm is allowed to
/// fail with an I/O error — the server may legitimately kill us — but
/// nothing here may wedge: timeouts bound every read and write.
fn chaos_action(
    rng: &mut ChaosRng,
    opts: &Options,
    addr: std::net::SocketAddr,
    tally: &mut ChaosTally,
) -> std::io::Result<()> {
    let frame = {
        let index = (rng.next() % 1024) as usize;
        let mut f = request_for(opts, index).encode();
        f.push('\n');
        f
    };
    match rng.next() % 8 {
        // Half the actions are plain valid traffic so the hostile ones
        // always interleave with real work.
        0..=2 => {
            let mut stream = chaos_connect(addr)?;
            stream.write_all(frame.as_bytes())?;
            if chaos_read_reply(&stream)? {
                tally.valid_ok += 1;
            } else {
                tally.valid_err += 1;
            }
        }
        3 => {
            // Drop mid-frame: half a JSON object, no newline, close.
            let mut stream = chaos_connect(addr)?;
            let cut = frame.len() / 2;
            stream.write_all(&frame.as_bytes()[..cut.max(1)])?;
            tally.dropped_mid_frame += 1;
        }
        4 => {
            // Send a full request, never read the reply, close. The
            // worker's answer lands on a dead socket.
            let mut stream = chaos_connect(addr)?;
            stream.write_all(frame.as_bytes())?;
            tally.abandoned_replies += 1;
        }
        5 => {
            // Garbage pipelined with a valid request: both must be
            // answered, in order.
            let mut stream = chaos_connect(addr)?;
            stream.write_all(b"!! not json !!\n")?;
            stream.write_all(frame.as_bytes())?;
            let first_ok = chaos_read_reply(&stream)?;
            let second_ok = chaos_read_reply(&stream)?;
            tally.garbage_frames += 1;
            if !first_ok && second_ok {
                tally.valid_ok += 1;
            } else {
                tally.valid_err += 1;
            }
        }
        6 => {
            // Oversized frame, then a valid one after the resync.
            let mut stream = chaos_connect(addr)?;
            let huge = vec![b'x'; gb_service::proto::MAX_FRAME + 64];
            stream.write_all(&huge)?;
            stream.write_all(b"\n")?;
            stream.write_all(frame.as_bytes())?;
            let _ = chaos_read_reply(&stream)?; // the too-long error
            if chaos_read_reply(&stream)? {
                tally.valid_ok += 1;
            } else {
                tally.valid_err += 1;
            }
            tally.oversized_frames += 1;
        }
        _ => {
            // Connect and vanish before sending anything.
            let stream = chaos_connect(addr)?;
            drop(stream);
            tally.instant_drops += 1;
        }
    }
    Ok(())
}

/// Polls the server's stats until queue depth and in-flight count are
/// both zero (or the deadline passes). Returns the final (depth,
/// inflight) pair.
fn await_drained(addr: std::net::SocketAddr, timeout: Duration) -> (i64, i64) {
    let deadline = Instant::now() + timeout;
    let mut last = (i64::MAX, i64::MAX);
    loop {
        if let Ok(Response::Stats(stats)) =
            Client::connect(addr).and_then(|mut c| c.call(&Request::Stats))
        {
            let depth = stats
                .get("queue")
                .and_then(|q| q.get("depth"))
                .and_then(|v| v.as_u64())
                .map_or(i64::MAX, |v| v as i64);
            let inflight = stats
                .get("connections")
                .and_then(|c| c.get("inflight"))
                .and_then(|v| v.as_u64())
                .map_or(i64::MAX, |v| v as i64);
            last = (depth, inflight);
            if depth == 0 && inflight == 0 {
                return last;
            }
        }
        if Instant::now() >= deadline {
            return last;
        }
        thread::sleep(Duration::from_millis(100));
    }
}

fn run_chaos(
    opts: &Arc<Options>,
    addr: std::net::SocketAddr,
    local_server: Option<Server>,
) -> ExitCode {
    let duration = Duration::from_millis(opts.duration_ms.unwrap_or(5_000));
    println!(
        "chaos: {} hostile clients against {} for {:.1} s (seed {})",
        opts.clients,
        addr,
        duration.as_secs_f64(),
        opts.seed
    );
    let deadline = Instant::now() + duration;
    let mut handles = Vec::new();
    for thread_index in 0..opts.clients {
        let opts = Arc::clone(opts);
        handles.push(thread::spawn(move || {
            let mut rng = ChaosRng(opts.seed.wrapping_add(thread_index as u64 * 0x5851_f42d));
            let mut tally = ChaosTally::default();
            while Instant::now() < deadline {
                if chaos_action(&mut rng, &opts, addr, &mut tally).is_err() {
                    // The server is allowed to kill hostile connections;
                    // what matters is that it keeps serving afterwards.
                    tally.io_errors += 1;
                }
            }
            tally
        }));
    }
    let mut total = ChaosTally::default();
    for handle in handles {
        total.merge(&handle.join().expect("chaos thread panicked"));
    }
    println!(
        "chaos: ok {} err {} | mid-frame drops {} abandoned {} garbage {} oversized {} \
         instant drops {} io errors {}",
        total.valid_ok,
        total.valid_err,
        total.dropped_mid_frame,
        total.abandoned_replies,
        total.garbage_frames,
        total.oversized_frames,
        total.instant_drops,
        total.io_errors
    );

    // Invariants: the wreckage must fully drain (no leaked queue slots or
    // in-flight gates) and a fresh, well-behaved client must still get a
    // correct answer.
    let (depth, inflight) = await_drained(addr, Duration::from_secs(15));
    let drained = depth == 0 && inflight == 0;
    println!("chaos: post-run queue depth {depth}, inflight {inflight}");
    let final_ok = Client::connect(addr)
        .and_then(|mut c| c.call(&request_for(opts, 0)))
        .ok()
        .is_some_and(|r| match r {
            Response::Ok(ok) => ok.ratio >= 1.0 && ok.ratio <= ok.bound,
            _ => false,
        });
    println!(
        "chaos: fresh balance request after the storm: {}",
        if final_ok { "ok" } else { "FAILED" }
    );

    // Snapshot the server's own view (including the per-backend rollup
    // when sharded) before tearing it down — CI keeps this as an
    // artifact of the sharded chaos run.
    if let Some(path) = &opts.metrics_out {
        match fetch_stats(addr) {
            Some(stats) => {
                if let Err(e) = std::fs::write(path, stats.encode_pretty() + "\n") {
                    eprintln!("chaos: failed to write {path}: {e}");
                } else {
                    println!("chaos: wrote {path}");
                }
            }
            None => eprintln!("chaos: stats snapshot for {path} failed"),
        }
    }

    if opts.send_shutdown {
        match Client::connect(addr).and_then(|mut c| c.call(&Request::Shutdown)) {
            Ok(_) => println!("chaos: shutdown frame acknowledged"),
            Err(e) => eprintln!("chaos: shutdown frame failed: {e}"),
        }
    }
    if let Some(server) = local_server {
        server.shutdown();
    }
    if drained && final_ok && total.valid_ok > 0 {
        println!("chaos: invariants held");
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos: INVARIANT VIOLATION (drained={drained}, final_ok={final_ok})");
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// --warm-load / --warm-replay / --warm-bench: the crash-recovery story
// ---------------------------------------------------------------------------

/// One sequential pass over the hot set (`distinct` bench keys);
/// returns how many answers came from cache.
fn hot_set_pass(addr: std::net::SocketAddr, distinct: u64, id_base: u64) -> Result<u64, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("hot-set connect: {e}"))?;
    let mut cached = 0u64;
    for seed in 0..distinct {
        match client
            .call(&bench_request(id_base + seed, seed))
            .map_err(|e| format!("hot-set call (seed {seed}): {e}"))?
        {
            Response::Ok(ok) => {
                if ok.cached {
                    cached += 1;
                }
            }
            other => return Err(format!("hot-set: unexpected {other:?}")),
        }
    }
    Ok(cached)
}

/// Primes an external server's hot set and blocks until every record is
/// durably appended to its store — after this returns SUCCESS the server
/// can be SIGKILLed and a successor must recover the set.
fn run_warm_load(opts: &Options, addr: std::net::SocketAddr) -> ExitCode {
    let distinct = opts.distinct as u64;
    println!("warm-load: priming {distinct} keys on {addr}");
    // Two passes: the first computes (and spills), the second proves the
    // set is resident in cache.
    let cached = match hot_set_pass(addr, distinct, 0)
        .and_then(|_| hot_set_pass(addr, distinct, distinct))
    {
        Ok(cached) => cached,
        Err(e) => {
            eprintln!("warm-load: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("warm-load: second pass served {cached}/{distinct} from cache");
    // Durability gate: the spill writer is asynchronous, so wait until
    // the store counted every append before declaring the set safe.
    match await_store_counter(addr, "appended", distinct, Duration::from_secs(10)) {
        Some(appended) if appended >= distinct => {
            println!("warm-load: store.appended = {appended}, hot set survives SIGKILL");
        }
        Some(appended) => {
            eprintln!("warm-load: store.appended stuck at {appended} (< {distinct})");
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!(
                "warm-load: server reports no store section — was it started with --store-dir?"
            );
            return ExitCode::FAILURE;
        }
    }
    // Stronger gate when the server runs a durability mode: every record
    // must also be *fsynced* before the set is declared power-loss safe.
    let sync_mode = fetch_stats(addr)
        .as_ref()
        .and_then(|s| s.get("store")?.get("sync")?.as_str().map(str::to_owned));
    match sync_mode.as_deref() {
        None | Some("none") => ExitCode::SUCCESS,
        Some(mode) => {
            match await_store_counter(addr, "synced", distinct, Duration::from_secs(10)) {
                Some(synced) if synced >= distinct => {
                    println!(
                        "warm-load: store.synced = {synced} under sync mode {mode:?}, \
                         hot set survives power loss"
                    );
                    ExitCode::SUCCESS
                }
                synced => {
                    eprintln!(
                        "warm-load: sync mode is {mode:?} but store.synced stuck at {synced:?} \
                         (< {distinct})"
                    );
                    ExitCode::FAILURE
                }
            }
        }
    }
}

/// Replays the pre-kill hot set against a restarted server and verifies
/// the warm hit rate and recovery counters.
fn run_warm_replay(opts: &Options, addr: std::net::SocketAddr) -> ExitCode {
    let distinct = opts.distinct as u64;
    println!("warm-replay: replaying {distinct} keys on {addr}");
    let cached = match hot_set_pass(addr, distinct, 10 * distinct) {
        Ok(cached) => cached,
        Err(e) => {
            eprintln!("warm-replay: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warm_rate = cached as f64 / distinct.max(1) as f64;
    let stats = fetch_stats(addr);
    let store = stats.as_ref().and_then(|s| s.get("store")).cloned();
    let recovered = stats
        .as_ref()
        .and_then(|s| store_counter(s, "recovered"))
        .unwrap_or(0);
    let corrupt_skipped = stats
        .as_ref()
        .and_then(|s| store_counter(s, "corrupt_skipped"))
        .unwrap_or(0);
    println!(
        "warm-replay: {cached}/{distinct} warm hits ({:.1}%), store.recovered {recovered}, \
         store.corrupt_skipped {corrupt_skipped}",
        warm_rate * 100.0
    );

    if let Some(path) = &opts.metrics_out {
        let report = Json::Obj(vec![
            (
                "schema".into(),
                Json::Str("gb-service/warm-replay/v1".into()),
            ),
            ("distinct".into(), Json::Int(distinct as i64)),
            ("warm_hits".into(), Json::Int(cached as i64)),
            ("warm_hit_rate".into(), Json::Num(warm_rate)),
            ("min_warm_rate".into(), Json::Num(opts.min_warm_rate)),
            ("store".into(), store.unwrap_or(Json::Null)),
        ]);
        if let Err(e) = std::fs::write(path, report.encode_pretty() + "\n") {
            eprintln!("warm-replay: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("warm-replay: wrote {path}");
    }
    if opts.send_shutdown {
        match Client::connect(addr).and_then(|mut c| c.call(&Request::Shutdown)) {
            Ok(_) => println!("warm-replay: shutdown frame acknowledged"),
            Err(e) => eprintln!("warm-replay: shutdown frame failed: {e}"),
        }
    }

    if warm_rate >= opts.min_warm_rate && recovered > 0 {
        println!("warm-replay: hot set survived the restart");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "warm-replay: FAILED (warm rate {:.3} < {:.3}, or store.recovered {recovered} == 0)",
            warm_rate, opts.min_warm_rate
        );
        ExitCode::FAILURE
    }
}

/// The committed warm-vs-cold restart experiment, fully in-process:
/// a restart without a store serves the old hot set cold (~0% hits); a
/// restart with a store serves it warm from recovered records.
fn run_warm_bench(opts: &Options) -> ExitCode {
    let distinct = opts.distinct as u64;
    let config = || ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: BENCH_QUEUE_CAP,
        cache_capacity: BENCH_CACHE_CAP,
        pool_threads: 2,
    };
    let restart_phase =
        |label: &str, store: Option<&Path>| -> Result<(f64, Option<Json>), String> {
            let tuning = |store: Option<&Path>| {
                let mut t = Tuning::default();
                if let Some(path) = store {
                    t.store = Some(StoreSettings::new(path));
                }
                t
            };
            // Life 1: compute the hot set, then shut down gracefully (with a
            // store this drains the spill queue to disk).
            let first = Server::start_tuned(config(), tuning(store))
                .map_err(|e| format!("{label}: first server: {e}"))?;
            hot_set_pass(first.local_addr(), distinct, 0)?;
            first.shutdown();
            // Life 2: a fresh process image — the cache starts empty and only
            // store recovery (if any) can rewarm it.
            let second = Server::start_tuned(config(), tuning(store))
                .map_err(|e| format!("{label}: second server: {e}"))?;
            let addr = second.local_addr();
            let cached = hot_set_pass(addr, distinct, distinct)?;
            let store_section = fetch_stats(addr)
                .as_ref()
                .and_then(|s| s.get("store"))
                .cloned();
            second.shutdown();
            Ok((cached as f64 / distinct.max(1) as f64, store_section))
        };

    println!("warm-bench: {distinct}-key hot set, restart without vs with a store");
    let (cold_rate, _) = match restart_phase("cold", None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("warm-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "  cold restart (no store):  {:.1}% warm hits",
        cold_rate * 100.0
    );
    let store_guard = StoreDir::temp("warm-bench");
    let (warm_rate, store_section) = match restart_phase("warm", Some(store_guard.path.as_path())) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("warm-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "  warm restart (gb-store):  {:.1}% warm hits",
        warm_rate * 100.0
    );

    let out = if opts.out == "BENCH_serving.json" {
        "BENCH_store.json"
    } else {
        opts.out.as_str()
    };
    let report = Json::Obj(vec![
        (
            "schema".into(),
            Json::Str("gb-service/warm-bench/v1".into()),
        ),
        (
            "config".into(),
            Json::Obj(vec![
                ("distinct".into(), Json::Int(distinct as i64)),
                ("n".into(), Json::Int(BENCH_N as i64)),
                ("workers".into(), Json::Int(2)),
                ("cache_capacity".into(), Json::Int(BENCH_CACHE_CAP as i64)),
            ]),
        ),
        (
            "cold_restart".into(),
            Json::Obj(vec![("warm_hit_rate".into(), Json::Num(cold_rate))]),
        ),
        (
            "warm_restart".into(),
            Json::Obj(vec![
                ("warm_hit_rate".into(), Json::Num(warm_rate)),
                ("store".into(), store_section.unwrap_or(Json::Null)),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write(out, report.encode_pretty() + "\n") {
        eprintln!("warm-bench: failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("warm-bench: wrote {out}");
    if warm_rate >= opts.min_warm_rate && cold_rate < opts.min_warm_rate {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "warm-bench: FAILED (warm {:.3} should be >= {:.3} and cold {:.3} below it)",
            warm_rate, opts.min_warm_rate, cold_rate
        );
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// --shard-bench: hot-class isolation experiment behind BENCH_sharding.json
// ---------------------------------------------------------------------------

const SHARD_BACKENDS: usize = 4;
const SHARD_VNODES: usize = 64;
const SHARD_WORKERS: usize = 4;
const SHARD_QUEUE_CAP: usize = 256;
const SHARD_CACHE_CAP: usize = 256;
/// Victim working set: keys owned by the non-hot backends, small enough
/// to stay resident in their caches.
const SHARD_VICTIM_KEYS: usize = 24;
/// Victim probe passes per phase (one latency sample per key per pass),
/// paced [`SHARD_ROUND_PACE`] apart so the contended phases observe the
/// flood's steady state — cache churn included — rather than its first
/// half-second.
const SHARD_ROUNDS: usize = 150;
const SHARD_SMOKE_ROUNDS: usize = 8;
const SHARD_ROUND_PACE: Duration = Duration::from_millis(2);
const SHARD_HOT_THREADS: usize = 2;
const SHARD_HOT_PIPELINE: usize = 128;
/// Distinct flood keys — far more than one backend's cache slice, so the
/// flood stays a compute-bound cold scan instead of going cache-warm.
const SHARD_HOT_KEYS: usize = 8192;
/// The hot class asks for a much larger partition than the victims do:
/// each flood miss costs ~0.7 ms of worker compute, so an unsharded
/// queue in front of it visibly delays whoever shares it.
const SHARD_HOT_N: usize = 1024;
/// Sub-millisecond p99 baselines on a single shared core are scheduler
/// noise, so the 2x bound is taken against at least this much.
const SHARD_NOISE_FLOOR_US: u64 = 1_000;

/// The cache key the server derives for a seed at processor count `n` —
/// used to pre-classify seeds by owning backend with the same `Router`
/// the server builds (`n` is part of the key, so the hot and victim
/// classes classify at their own request shapes).
fn shard_cache_key(seed: u64, n: usize) -> CacheKey {
    let spec = ProblemSpec::Synthetic {
        weight: 1.0,
        lo: 0.2,
        hi: 0.5,
        seed,
    };
    CacheKey::new(spec.fingerprint(), Algorithm::Hf, n, 1.0)
}

/// A flood request: same problem family as the victims, but a heavier
/// `n` so every miss costs real worker time.
fn shard_hot_request(seed: u64) -> Request {
    Request::Balance(BalanceRequest {
        id: Some(seed),
        algorithm: Algorithm::Hf,
        n: SHARD_HOT_N,
        theta: 1.0,
        deadline_ms: None,
        want_pieces: false,
        problem: ProblemSpec::Synthetic {
            weight: 1.0,
            lo: 0.2,
            hi: 0.5,
            seed,
        },
    })
}

struct ShardPhase {
    label: &'static str,
    backends: usize,
    contended: bool,
    warm_resident: u64,
    samples: u64,
    ok: u64,
    cached: u64,
    errors: u64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    max_us: u64,
    hot_answered: u64,
    hot_ok: u64,
    hot_shed: u64,
    backend_stats: Option<Json>,
}

impl ShardPhase {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.into())),
            ("backends".into(), Json::Int(self.backends as i64)),
            ("contended".into(), Json::Bool(self.contended)),
            ("warm_resident".into(), Json::Int(self.warm_resident as i64)),
            ("victim_samples".into(), Json::Int(self.samples as i64)),
            ("victim_ok".into(), Json::Int(self.ok as i64)),
            ("victim_cached".into(), Json::Int(self.cached as i64)),
            ("victim_errors".into(), Json::Int(self.errors as i64)),
            ("victim_p50_us".into(), Json::Int(self.p50_us as i64)),
            ("victim_p95_us".into(), Json::Int(self.p95_us as i64)),
            ("victim_p99_us".into(), Json::Int(self.p99_us as i64)),
            ("victim_max_us".into(), Json::Int(self.max_us as i64)),
            ("hot_answered".into(), Json::Int(self.hot_answered as i64)),
            ("hot_ok".into(), Json::Int(self.hot_ok as i64)),
            ("hot_shed".into(), Json::Int(self.hot_shed as i64)),
            (
                "server_backends".into(),
                self.backend_stats.clone().unwrap_or(Json::Null),
            ),
        ])
    }
}

/// One flood connection: pipelines bursts of hot-class requests until
/// told to stop, tallying answered/ok/shed. The server may shed most of
/// these (the hot backend's local queue is a quarter of the global cap)
/// — that per-class shedding is part of what the bench demonstrates.
fn shard_hot_flood(
    addr: std::net::SocketAddr,
    seeds: Arc<Vec<u64>>,
    stop: Arc<AtomicBool>,
    thread_index: usize,
) -> (u64, u64, u64) {
    let mut answered = 0u64;
    let mut ok = 0u64;
    let mut shed = 0u64;
    let Ok(stream) = TcpStream::connect(addr) else {
        return (0, 0, 0);
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let Ok(mut writer) = stream.try_clone() else {
        return (0, 0, 0);
    };
    let mut reader = BufReader::new(stream);
    let mut cursor = thread_index * seeds.len() / SHARD_HOT_THREADS;
    let mut out = String::new();
    let mut line = String::new();
    while !stop.load(Ordering::Relaxed) {
        out.clear();
        for j in 0..SHARD_HOT_PIPELINE {
            let seed = seeds[(cursor + j) % seeds.len()];
            out.push_str(&shard_hot_request(seed).encode());
            out.push('\n');
        }
        cursor = (cursor + SHARD_HOT_PIPELINE) % seeds.len();
        if writer.write_all(out.as_bytes()).is_err() {
            break;
        }
        for _ in 0..SHARD_HOT_PIPELINE {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return (answered, ok, shed),
                Ok(_) => {}
            }
            answered += 1;
            if line.contains("\"status\":\"ok\"") {
                ok += 1;
            } else if line.contains("\"overloaded\"") {
                shed += 1;
            }
        }
    }
    (answered, ok, shed)
}

/// One phase: warm the victim class, optionally start the hot flood,
/// probe victim latency for `rounds` passes, snapshot the per-backend
/// stats while the flood is still running, then tear everything down.
fn shard_phase(
    label: &'static str,
    backends: usize,
    contended: bool,
    victims: &Arc<Vec<u64>>,
    hot: &Arc<Vec<u64>>,
    rounds: usize,
) -> Result<ShardPhase, String> {
    let server = Server::start_tuned(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: SHARD_WORKERS,
            queue_capacity: SHARD_QUEUE_CAP,
            cache_capacity: SHARD_CACHE_CAP,
            pool_threads: 1,
        },
        Tuning {
            backends,
            backend_vnodes: SHARD_VNODES,
            // Plain LRU everywhere: TinyLFU's scan resistance would let
            // even the *unsharded* control keep the victims cached
            // through the flood, masking exactly the cache-sharing
            // failure the control exists to show. Sharded isolation must
            // not depend on the admission policy.
            admission: false,
            ..Tuning::default()
        },
    )
    .map_err(|e| format!("{label}: server: {e}"))?;
    let addr = server.local_addr();

    // Warm the victim class: first pass computes, second proves residency.
    let mut client = Client::connect(addr).map_err(|e| format!("{label}: connect: {e}"))?;
    let mut warm = |id_base: u64| -> Result<u64, String> {
        let mut resident = 0u64;
        for (i, &seed) in victims.iter().enumerate() {
            match client
                .call(&bench_request(id_base + i as u64, seed))
                .map_err(|e| format!("{label}: warm call: {e}"))?
            {
                Response::Ok(ok) => {
                    if ok.cached {
                        resident += 1;
                    }
                }
                other => return Err(format!("{label}: warm: unexpected {other:?}")),
            }
        }
        Ok(resident)
    };
    warm(0)?;
    let warm_resident = warm(victims.len() as u64)?;

    let stop = Arc::new(AtomicBool::new(false));
    let mut flood = Vec::new();
    if contended {
        for thread_index in 0..SHARD_HOT_THREADS {
            let hot = Arc::clone(hot);
            let stop = Arc::clone(&stop);
            flood.push(thread::spawn(move || {
                shard_hot_flood(addr, hot, stop, thread_index)
            }));
        }
        // Let the flood fill the hot backend's queue before sampling.
        thread::sleep(Duration::from_millis(200));
    }

    let mut latencies = Vec::with_capacity(rounds * victims.len());
    let mut ok_count = 0u64;
    let mut cached = 0u64;
    let mut errors = 0u64;
    for round in 0..rounds {
        if round > 0 {
            thread::sleep(SHARD_ROUND_PACE);
        }
        for (i, &seed) in victims.iter().enumerate() {
            let id = 1_000 + (round * victims.len() + i) as u64;
            let sent = Instant::now();
            match client
                .call(&bench_request(id, seed))
                .map_err(|e| format!("{label}: victim call: {e}"))?
            {
                Response::Ok(ok) => {
                    ok_count += 1;
                    if ok.cached {
                        cached += 1;
                    }
                }
                Response::Error { .. } => errors += 1,
                other => return Err(format!("{label}: victim: unexpected {other:?}")),
            }
            latencies.push(sent.elapsed().as_micros().min(u64::MAX as u128) as u64);
        }
    }

    // Per-backend rollup while the flood is still applying pressure.
    let backend_stats = if contended {
        fetch_stats(addr).and_then(|s| s.get("backends").cloned())
    } else {
        None
    };

    stop.store(true, Ordering::Relaxed);
    let mut hot_answered = 0u64;
    let mut hot_ok = 0u64;
    let mut hot_shed = 0u64;
    for handle in flood {
        let (answered, ok, shed) = handle.join().expect("flood thread panicked");
        hot_answered += answered;
        hot_ok += ok;
        hot_shed += shed;
    }
    server.shutdown();

    latencies.sort_unstable();
    Ok(ShardPhase {
        label,
        backends,
        contended,
        warm_resident,
        samples: latencies.len() as u64,
        ok: ok_count,
        cached,
        errors,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        hot_answered,
        hot_ok,
        hot_shed,
        backend_stats,
    })
}

fn run_shard_bench(opts: &Options) -> ExitCode {
    let rounds = if opts.duration_ms.is_some() {
        SHARD_SMOKE_ROUNDS
    } else {
        SHARD_ROUNDS
    };
    // Classify seeds with the same ring the 4-backend server will build:
    // the flood all lands on one backend, the victims on the others.
    let router = Router::new(SHARD_BACKENDS, SHARD_VNODES);
    let hot_backend = router.route(shard_cache_key(1_000_000, SHARD_HOT_N).mix());
    let mut hot = Vec::with_capacity(SHARD_HOT_KEYS);
    let mut seed = 1_000_000u64;
    while hot.len() < SHARD_HOT_KEYS {
        if router.route(shard_cache_key(seed, SHARD_HOT_N).mix()) == hot_backend {
            hot.push(seed);
        }
        seed += 1;
    }
    let mut victims = Vec::with_capacity(SHARD_VICTIM_KEYS);
    let mut seed = 0u64;
    while victims.len() < SHARD_VICTIM_KEYS {
        if router.route(shard_cache_key(seed, BENCH_N).mix()) != hot_backend {
            victims.push(seed);
        }
        seed += 1;
    }
    println!(
        "shard-bench: hot class pinned to backend {hot_backend} ({} flood keys), \
         {} victim keys on the other {} backends, {rounds} probe rounds",
        hot.len(),
        victims.len(),
        SHARD_BACKENDS - 1
    );
    let victims = Arc::new(victims);
    let hot = Arc::new(hot);

    let phase = |label, backends, contended| {
        let result = shard_phase(label, backends, contended, &victims, &hot, rounds);
        if let Ok(p) = &result {
            println!(
                "  {label:<22} p50 {:>6} us  p95 {:>6} us  p99 {:>6} us  \
                 (victim ok {} cached {} err {}; hot ok {} shed {})",
                p.p50_us, p.p95_us, p.p99_us, p.ok, p.cached, p.errors, p.hot_ok, p.hot_shed
            );
        }
        result
    };
    let (isolated, sharded, control) = match (|| {
        Ok::<_, String>((
            phase("isolated", SHARD_BACKENDS, false)?,
            phase("sharded + flood", SHARD_BACKENDS, true)?,
            phase("unsharded + flood", 1, true)?,
        ))
    })() {
        Ok(phases) => phases,
        Err(e) => {
            eprintln!("shard-bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let baseline_us = isolated.p99_us.max(SHARD_NOISE_FLOOR_US);
    let bound_us = 2 * baseline_us;
    let pass = sharded.p99_us <= bound_us;
    let ratio = sharded.p99_us as f64 / isolated.p99_us.max(1) as f64;
    let control_ratio = control.p99_us as f64 / isolated.p99_us.max(1) as f64;
    println!(
        "shard-bench: sharded victim p99 {} us vs bound {} us (2 x max(isolated p99, \
         {SHARD_NOISE_FLOOR_US} us noise floor)) — {}",
        sharded.p99_us,
        bound_us,
        if pass { "within bound" } else { "EXCEEDED" }
    );
    println!(
        "shard-bench: victim p99 blowup without sharding: {control_ratio:.1}x \
         (with sharding: {ratio:.1}x)"
    );

    let report = Json::Obj(vec![
        (
            "schema".into(),
            Json::Str("gb-service/bench-sharding/v1".into()),
        ),
        (
            "config".into(),
            Json::Obj(vec![
                ("backends".into(), Json::Int(SHARD_BACKENDS as i64)),
                ("backend_vnodes".into(), Json::Int(SHARD_VNODES as i64)),
                ("hot_backend".into(), Json::Int(i64::from(hot_backend))),
                ("workers".into(), Json::Int(SHARD_WORKERS as i64)),
                ("queue_capacity".into(), Json::Int(SHARD_QUEUE_CAP as i64)),
                ("cache_capacity".into(), Json::Int(SHARD_CACHE_CAP as i64)),
                ("victim_keys".into(), Json::Int(SHARD_VICTIM_KEYS as i64)),
                ("probe_rounds".into(), Json::Int(rounds as i64)),
                ("hot_keys".into(), Json::Int(SHARD_HOT_KEYS as i64)),
                (
                    "hot_connections".into(),
                    Json::Int(SHARD_HOT_THREADS as i64),
                ),
                ("hot_pipeline".into(), Json::Int(SHARD_HOT_PIPELINE as i64)),
                (
                    "noise_floor_us".into(),
                    Json::Int(SHARD_NOISE_FLOOR_US as i64),
                ),
            ]),
        ),
        ("isolated".into(), isolated.to_json()),
        ("sharded".into(), sharded.to_json()),
        ("unsharded_control".into(), control.to_json()),
        (
            "assertion".into(),
            Json::Obj(vec![
                ("bound_us".into(), Json::Int(bound_us as i64)),
                ("sharded_p99_us".into(), Json::Int(sharded.p99_us as i64)),
                ("sharded_over_isolated".into(), Json::Num(ratio)),
                ("control_over_isolated".into(), Json::Num(control_ratio)),
                ("pass".into(), Json::Bool(pass)),
            ]),
        ),
    ]);
    let out = if opts.out == "BENCH_serving.json" {
        "BENCH_sharding.json"
    } else {
        opts.out.as_str()
    };
    if let Err(e) = std::fs::write(out, report.encode_pretty() + "\n") {
        eprintln!("shard-bench: failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("shard-bench: wrote {out}");
    if pass {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "shard-bench: FAILED — victim p99 {} us exceeds {} us under a sharded hot flood",
            sharded.p99_us, bound_us
        );
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// --skew-bench: the self-balancing placement experiment behind
// results/BENCH_skew.json
// ---------------------------------------------------------------------------

const SKEW_BACKENDS: usize = 4;
const SKEW_VNODES: usize = 16;
const SKEW_WORKERS: usize = 4;
const SKEW_QUEUE_CAP: usize = 256;
const SKEW_CACHE_CAP: usize = 256;
/// Distinct keys in the zipf working set. With s = 1.0 the hottest key
/// carries ~21% of the traffic — under the 25% per-backend mean, so a
/// balanced assignment exists and HF can find it.
const SKEW_KEYS: usize = 64;
const SKEW_N: usize = 24;
const SKEW_CLIENTS: usize = 2;
const SKEW_WARM_MS: u64 = 2_500;
const SKEW_WINDOW_MS: u64 = 2_500;
const SKEW_SMOKE_FLOOR_MS: u64 = 600;
const SKEW_REBAL_INTERVAL_MS: u64 = 150;
const SKEW_TRIGGER: f64 = 1.05;
const SKEW_BUDGET: usize = 8;
/// Full-run gates: steady-state max/mean of the rebalanced fleet vs
/// the static-ring control over the same measurement window.
const SKEW_REBAL_GATE: f64 = 1.15;
const SKEW_CONTROL_GATE: f64 = 1.3;
/// Minimum expected (analytic) static imbalance when picking the seed
/// block — guarantees the control has something to show.
const SKEW_PICK_FLOOR: f64 = 1.5;

/// Zipf(s=1) selection probabilities for ranks `0..count`, cumulative.
fn skew_zipf_cumulative(count: usize) -> Vec<f64> {
    let weights: Vec<f64> = (0..count).map(|k| 1.0 / (k + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut cum = Vec::with_capacity(count);
    let mut acc = 0.0;
    for w in weights {
        acc += w / total;
        cum.push(acc);
    }
    cum
}

/// Picks a deterministic block of seeds whose *static* hash placement is
/// lopsided under the zipf weights: the control phase then demonstrates
/// the imbalance the rebalancer erases. Pure function of the ring.
fn skew_pick_seeds(cum: &[f64]) -> (u64, Vec<u64>, f64) {
    let router = Router::new(SKEW_BACKENDS, SKEW_VNODES);
    let ideal = 1.0 / SKEW_BACKENDS as f64;
    let mut base = 0u64;
    loop {
        let seeds: Vec<u64> = (0..SKEW_KEYS as u64).map(|k| base + k).collect();
        let mut per = [0.0f64; SKEW_BACKENDS];
        for (rank, &seed) in seeds.iter().enumerate() {
            let prob = cum[rank] - if rank == 0 { 0.0 } else { cum[rank - 1] };
            per[router.route(shard_cache_key(seed, SKEW_N).mix()) as usize] += prob;
        }
        let expected = per.iter().cloned().fold(0.0, f64::max) / ideal;
        if expected >= SKEW_PICK_FLOOR {
            return (base, seeds, expected);
        }
        base += SKEW_KEYS as u64;
        assert!(base < 1_000_000, "no skewed seed block found");
    }
}

fn skew_request(id: u64, seed: u64) -> Request {
    Request::Balance(BalanceRequest {
        id: Some(id),
        algorithm: Algorithm::Hf,
        n: SKEW_N,
        theta: 1.0,
        deadline_ms: None,
        want_pieces: false,
        // Same spec family as shard_cache_key, so pre-classification by
        // Router matches the server's placement exactly.
        problem: ProblemSpec::Synthetic {
            weight: 1.0,
            lo: 0.2,
            hi: 0.5,
            seed,
        },
    })
}

/// One closed-loop client: draws keys from the zipf distribution with a
/// deterministic per-thread RNG (both phases replay the identical
/// request stream) until told to stop.
fn skew_traffic(
    addr: std::net::SocketAddr,
    seeds: Arc<Vec<u64>>,
    cum: Arc<Vec<f64>>,
    stop: Arc<AtomicBool>,
    thread_index: usize,
) -> u64 {
    let Ok(mut client) = Client::connect(addr) else {
        return 0;
    };
    let mut rng = ChaosRng(0x5eed_ba5e + thread_index as u64);
    let mut sent = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let u = rng.next() as f64 / u64::MAX as f64;
        let rank = cum.partition_point(|&c| c < u).min(seeds.len() - 1);
        if client.call(&skew_request(sent, seeds[rank])).is_err() {
            break;
        }
        sent += 1;
    }
    sent
}

/// Per-backend `(load_hits, load_micros)` from a live stats frame.
fn skew_loads(addr: std::net::SocketAddr) -> Result<Vec<(u64, u64)>, String> {
    let stats = fetch_stats(addr).ok_or("stats fetch failed")?;
    let per = stats
        .get("backends")
        .and_then(|b| b.get("per_backend"))
        .and_then(|p| match p {
            Json::Arr(items) => Some(items.clone()),
            _ => None,
        })
        .ok_or("stats missing backends.per_backend")?;
    per.iter()
        .map(|entry| {
            let hits = entry.get("load_hits").and_then(|v| v.as_u64());
            let micros = entry.get("load_micros").and_then(|v| v.as_u64());
            match (hits, micros) {
                (Some(h), Some(m)) => Ok((h, m)),
                _ => Err("per_backend missing load counters".into()),
            }
        })
        .collect()
}

struct SkewPhase {
    label: &'static str,
    /// max/mean of per-backend load deltas over the window, where load
    /// = micros + HIT_COST_MICROS x hits (the rebalancer's own metric).
    imbalance: f64,
    per_backend: Vec<f64>,
    requests: u64,
    rebal: Option<Json>,
}

impl SkewPhase {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.into())),
            ("imbalance".into(), Json::Num(self.imbalance)),
            (
                "per_backend_load".into(),
                Json::Arr(self.per_backend.iter().map(|&w| Json::Num(w)).collect()),
            ),
            ("requests".into(), Json::Int(self.requests as i64)),
            ("rebal".into(), self.rebal.clone().unwrap_or(Json::Null)),
        ])
    }
}

/// One phase: start a 4-backend server (rebalancing or static), prime
/// the working set, drive zipf traffic, let placement settle for
/// `warm_ms`, then measure the per-backend load deltas over a
/// `window_ms` steady-state window.
fn skew_phase(
    label: &'static str,
    rebalance: Option<gb_rebal::RebalanceSettings>,
    seeds: &Arc<Vec<u64>>,
    cum: &Arc<Vec<f64>>,
    warm_ms: u64,
    window_ms: u64,
) -> Result<SkewPhase, String> {
    let rebalancing = rebalance.is_some();
    let server = Server::start_tuned(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: SKEW_WORKERS,
            queue_capacity: SKEW_QUEUE_CAP,
            cache_capacity: SKEW_CACHE_CAP,
            pool_threads: 1,
        },
        Tuning {
            backends: SKEW_BACKENDS,
            backend_vnodes: SKEW_VNODES,
            rebalance,
            ..Tuning::default()
        },
    )
    .map_err(|e| format!("{label}: server: {e}"))?;
    let addr = server.local_addr();

    // Prime every key once so the measurement window is hit-dominated
    // (the rebalancer then acts on traffic skew, not compute noise).
    let mut client = Client::connect(addr).map_err(|e| format!("{label}: connect: {e}"))?;
    for (i, &seed) in seeds.iter().enumerate() {
        match client
            .call(&skew_request(1_000_000 + i as u64, seed))
            .map_err(|e| format!("{label}: prime: {e}"))?
        {
            Response::Ok(_) => {}
            other => return Err(format!("{label}: prime: unexpected {other:?}")),
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut drivers = Vec::new();
    for thread_index in 0..SKEW_CLIENTS {
        let seeds = Arc::clone(seeds);
        let cum = Arc::clone(cum);
        let stop = Arc::clone(&stop);
        drivers.push(thread::spawn(move || {
            skew_traffic(addr, seeds, cum, stop, thread_index)
        }));
    }
    thread::sleep(Duration::from_millis(warm_ms));
    let before = skew_loads(addr).map_err(|e| format!("{label}: {e}"))?;
    thread::sleep(Duration::from_millis(window_ms));
    let after = skew_loads(addr).map_err(|e| format!("{label}: {e}"))?;
    let rebal = if rebalancing {
        fetch_stats(addr).and_then(|s| s.get("rebal").cloned())
    } else {
        None
    };
    stop.store(true, Ordering::Relaxed);
    let requests = drivers
        .into_iter()
        .map(|h| h.join().expect("skew traffic thread panicked"))
        .sum();
    server.shutdown();

    let per_backend: Vec<f64> = before
        .iter()
        .zip(&after)
        .map(|(&(h0, m0), &(h1, m1))| {
            (m1 - m0) as f64 + gb_rebal::HIT_COST_MICROS * (h1 - h0) as f64
        })
        .collect();
    let mean = per_backend.iter().sum::<f64>() / per_backend.len() as f64;
    let max = per_backend.iter().cloned().fold(0.0, f64::max);
    let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
    Ok(SkewPhase {
        label,
        imbalance,
        per_backend,
        requests,
        rebal,
    })
}

fn run_skew_bench(opts: &Options) -> ExitCode {
    // --duration-ms D shrinks both the settle and measurement windows
    // (CI smoke); the full run uses the fixed defaults.
    let (warm_ms, window_ms) = match opts.duration_ms {
        Some(d) => (
            (d / 2).max(SKEW_SMOKE_FLOOR_MS),
            (d / 2).max(SKEW_SMOKE_FLOOR_MS),
        ),
        None => (SKEW_WARM_MS, SKEW_WINDOW_MS),
    };
    let smoke = opts.duration_ms.is_some();
    let cum = skew_zipf_cumulative(SKEW_KEYS);
    let (base, seeds, expected) = skew_pick_seeds(&cum);
    println!(
        "skew-bench: {SKEW_KEYS} zipf keys from seed base {base} \
         (expected static imbalance {expected:.2}), {SKEW_BACKENDS} backends x \
         {SKEW_VNODES} vnodes, settle {warm_ms} ms + window {window_ms} ms"
    );
    let seeds = Arc::new(seeds);
    let cum = Arc::new(cum);

    let settings = gb_rebal::RebalanceSettings {
        interval: Duration::from_millis(SKEW_REBAL_INTERVAL_MS),
        trigger: SKEW_TRIGGER,
        move_budget: SKEW_BUDGET,
        ..gb_rebal::RebalanceSettings::default()
    };
    let phase = |label, rebalance| {
        let result = skew_phase(label, rebalance, &seeds, &cum, warm_ms, window_ms);
        if let Ok(p) = &result {
            println!(
                "  {label:<18} imbalance {:.3}  ({} requests)",
                p.imbalance, p.requests
            );
        }
        result
    };
    let (rebalanced, control) = match (|| {
        Ok::<_, String>((
            phase("rebalanced", Some(settings.clone()))?,
            phase("static control", None)?,
        ))
    })() {
        Ok(phases) => phases,
        Err(e) => {
            eprintln!("skew-bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let max_tick_moves = rebalanced
        .rebal
        .as_ref()
        .and_then(|r| r.get("max_tick_moves"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let ticks = rebalanced
        .rebal
        .as_ref()
        .and_then(|r| r.get("ticks"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    // No backend dies in this bench, so every move is voluntary and the
    // per-tick budget is a hard cap.
    let moves_ok = max_tick_moves <= SKEW_BUDGET as u64;
    let pass = if smoke {
        // Smoke gate: rebalancing must beat the static ring, and the
        // tick loop must actually have run.
        rebalanced.imbalance < control.imbalance && ticks > 0 && moves_ok
    } else {
        rebalanced.imbalance <= SKEW_REBAL_GATE
            && control.imbalance >= SKEW_CONTROL_GATE
            && ticks > 0
            && moves_ok
    };
    println!(
        "skew-bench: rebalanced {:.3} (gate <= {SKEW_REBAL_GATE}) vs static {:.3} \
         (gate >= {SKEW_CONTROL_GATE}); max tick moves {max_tick_moves} \
         (budget {SKEW_BUDGET}) — {}",
        rebalanced.imbalance,
        control.imbalance,
        if pass { "pass" } else { "FAILED" }
    );

    let report = Json::Obj(vec![
        (
            "schema".into(),
            Json::Str("gb-service/bench-skew/v1".into()),
        ),
        (
            "config".into(),
            Json::Obj(vec![
                ("backends".into(), Json::Int(SKEW_BACKENDS as i64)),
                ("backend_vnodes".into(), Json::Int(SKEW_VNODES as i64)),
                ("workers".into(), Json::Int(SKEW_WORKERS as i64)),
                ("keys".into(), Json::Int(SKEW_KEYS as i64)),
                ("zipf_s".into(), Json::Num(1.0)),
                ("seed_base".into(), Json::Int(base as i64)),
                ("expected_static_imbalance".into(), Json::Num(expected)),
                ("clients".into(), Json::Int(SKEW_CLIENTS as i64)),
                ("n".into(), Json::Int(SKEW_N as i64)),
                ("warm_ms".into(), Json::Int(warm_ms as i64)),
                ("window_ms".into(), Json::Int(window_ms as i64)),
                (
                    "rebalance_interval_ms".into(),
                    Json::Int(SKEW_REBAL_INTERVAL_MS as i64),
                ),
                ("trigger".into(), Json::Num(SKEW_TRIGGER)),
                ("move_budget".into(), Json::Int(SKEW_BUDGET as i64)),
                ("smoke".into(), Json::Bool(smoke)),
            ]),
        ),
        ("rebalanced".into(), rebalanced.to_json()),
        ("static_control".into(), control.to_json()),
        (
            "assertion".into(),
            Json::Obj(vec![
                ("rebalanced_gate".into(), Json::Num(SKEW_REBAL_GATE)),
                ("control_gate".into(), Json::Num(SKEW_CONTROL_GATE)),
                (
                    "rebalanced_imbalance".into(),
                    Json::Num(rebalanced.imbalance),
                ),
                ("control_imbalance".into(), Json::Num(control.imbalance)),
                ("max_tick_moves".into(), Json::Int(max_tick_moves as i64)),
                ("move_budget".into(), Json::Int(SKEW_BUDGET as i64)),
                ("pass".into(), Json::Bool(pass)),
            ]),
        ),
    ]);
    let out = if opts.out == "BENCH_serving.json" {
        "results/BENCH_skew.json"
    } else {
        opts.out.as_str()
    };
    if let Some(parent) = Path::new(out).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    if let Err(e) = std::fs::write(out, report.encode_pretty() + "\n") {
        eprintln!("skew-bench: failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("skew-bench: wrote {out}");
    if pass {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "skew-bench: FAILED — rebalanced {:.3} vs static {:.3} (ticks {ticks}, \
             max tick moves {max_tick_moves})",
            rebalanced.imbalance, control.imbalance
        );
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// --router-bench: the cross-process router-tier experiment behind
// results/BENCH_router.json
// ---------------------------------------------------------------------------

const RB_VNODES: usize = 32;
const RB_CLIENTS: usize = 8;
const RB_REQUESTS: usize = 8_000;
const RB_SMOKE_REQUESTS: usize = 1_500;
const RB_DISTINCT: u64 = 64;
/// Cold-pass partition size: large enough that every request costs real
/// solver time, so the comparison measures the tier's overhead against
/// the work it fronts (the hot pass isolates the per-hop overhead
/// itself).
const RB_COLD_N: usize = 256;
const RB_COLD_REQUESTS: usize = 4_000;
const RB_SMOKE_COLD_REQUESTS: usize = 800;
const RB_FLOOD_THREADS: usize = 3;
const RB_STALL_MS: u64 = 40;
const RB_HEDGE_MS: u64 = 5;
const RB_TAIL_PROBES: usize = 24;
const RB_SMOKE_TAIL_PROBES: usize = 10;

/// Locates a sibling binary of this loadgen (`target/<profile>/<name>`),
/// building the owning package on demand if it is missing.
fn sibling_binary(name: &str, package: &str) -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe.parent().ok_or("loadgen has no parent dir")?;
    let bin = dir.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        let mut args: Vec<String> = ["build", "-p", package, "--bin", name]
            .iter()
            .map(|s| s.to_string())
            .collect();
        if !cfg!(debug_assertions) {
            args.push("--release".into());
        }
        let status = std::process::Command::new(cargo)
            .args(&args)
            .status()
            .map_err(|e| format!("cargo build {name}: {e}"))?;
        if !status.success() {
            return Err(format!("building {name} failed"));
        }
    }
    if bin.exists() {
        Ok(bin)
    } else {
        Err(format!("{name} missing at {}", bin.display()))
    }
}

/// A spawned child daemon (`gb-serve` or `gb-router`); killed on drop if
/// it has not already exited.
struct ChildProc {
    child: std::process::Child,
    addr: std::net::SocketAddr,
    // Holding the pipe open keeps the child's shutdown println from
    // landing on a closed fd.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl ChildProc {
    fn spawn(bin: &Path, args: &[String]) -> Result<ChildProc, String> {
        let mut child = std::process::Command::new(bin)
            .args(args)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
        let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut banner = String::new();
        stdout
            .read_line(&mut banner)
            .map_err(|e| format!("read banner from {}: {e}", bin.display()))?;
        // Both daemons print "<name> listening on HOST:PORT ...".
        let addr = banner
            .split_whitespace()
            .nth(3)
            .and_then(|a| a.parse().ok())
            .ok_or_else(|| format!("unexpected banner {banner:?}"))?;
        Ok(ChildProc {
            child,
            addr,
            _stdout: stdout,
        })
    }

    /// The child's OS pid (for /proc CPU accounting).
    fn pid(&self) -> u32 {
        self.child.id()
    }

    /// SIGKILL — the hard-crash case.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Waits up to `timeout` for a voluntary exit (a forwarded shutdown
    /// frame), then falls back to killing.
    fn wait_or_kill(&mut self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if Instant::now() < deadline => thread::sleep(Duration::from_millis(25)),
                _ => {
                    self.kill();
                    return;
                }
            }
        }
    }
}

impl Drop for ChildProc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn spawn_serve_child(extra: &[&str]) -> Result<ChildProc, String> {
    let bin = sibling_binary("gb-serve", "gb-service")?;
    let mut args: Vec<String> = [
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "4",
        "--pool-threads",
        "2",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    args.extend(extra.iter().map(|s| s.to_string()));
    ChildProc::spawn(&bin, &args)
}

/// `--hedge-ms 0` disables hedging; `--wait-upstreams-ms` makes the
/// spawn order race-free (the banner only prints once the fleet answers).
fn spawn_router_child(
    upstreams: &[std::net::SocketAddr],
    hedge_ms: u64,
) -> Result<ChildProc, String> {
    let bin = sibling_binary("gb-router", "gb-router")?;
    let mut args: Vec<String> = Vec::new();
    for (flag, value) in [
        ("--addr", "127.0.0.1:0".to_string()),
        ("--vnodes", RB_VNODES.to_string()),
        ("--health-interval-ms", "50".into()),
        ("--probe-timeout-ms", "250".into()),
        ("--fail-threshold", "2".into()),
        ("--poll-interval-ms", "20".into()),
        ("--hedge-ms", hedge_ms.to_string()),
        ("--wait-upstreams-ms", "3000".into()),
    ] {
        args.push(flag.into());
        args.push(value);
    }
    for upstream in upstreams {
        args.push("--upstream".into());
        args.push(upstream.to_string());
    }
    ChildProc::spawn(&bin, &args)
}

/// Sends a `shutdown` frame; a router forwards it to its upstreams.
fn send_shutdown(addr: std::net::SocketAddr) {
    let _ = Client::connect(addr).and_then(|mut c| c.call(&Request::Shutdown));
}

struct RouterPass {
    answered: u64,
    ok: u64,
    errors: u64,
    elapsed_s: f64,
    rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    max_us: u64,
}

impl RouterPass {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("requests".into(), Json::Int(self.answered as i64)),
            ("ok".into(), Json::Int(self.ok as i64)),
            ("errors".into(), Json::Int(self.errors as i64)),
            ("elapsed_s".into(), Json::Num(self.elapsed_s)),
            ("throughput_rps".into(), Json::Num(self.rps)),
            ("p50_us".into(), Json::Int(self.p50_us as i64)),
            ("p95_us".into(), Json::Int(self.p95_us as i64)),
            ("p99_us".into(), Json::Int(self.p99_us as i64)),
            ("max_us".into(), Json::Int(self.max_us as i64)),
        ])
    }
}

/// One request of the throughput workload. The hot pass cycles a warmed
/// `RB_DISTINCT`-key working set (nearly every answer is a cache hit, so
/// the measured cost is the serving/proxy path itself); the cold pass
/// gives every request a unique seed at a heavier `n`, so each one costs
/// real solver time and the router's overhead is measured against the
/// work it fronts.
fn rb_request(index: usize, cold: bool) -> Request {
    if cold {
        Request::Balance(BalanceRequest {
            id: Some(index as u64),
            algorithm: Algorithm::Hf,
            n: RB_COLD_N,
            theta: 1.0,
            deadline_ms: None,
            want_pieces: false,
            problem: ProblemSpec::Synthetic {
                weight: 1.0,
                lo: 0.2,
                hi: 0.5,
                seed: 10_000_000 + index as u64,
            },
        })
    } else {
        bench_request(index as u64, index as u64 % RB_DISTINCT)
    }
}

/// A throughput pass from `RB_CLIENTS` synchronous connections. Both the
/// direct and the proxied phase see the identical workload, so the ratio
/// of their rates is the router's overhead.
fn router_throughput(
    addr: std::net::SocketAddr,
    requests: usize,
    cold: bool,
) -> Result<RouterPass, String> {
    if !cold {
        let mut client = Client::connect(addr).map_err(|e| format!("warm connect: {e}"))?;
        for seed in 0..RB_DISTINCT {
            match client
                .call(&bench_request(seed, seed))
                .map_err(|e| format!("warm call: {e}"))?
            {
                Response::Ok(_) => {}
                other => return Err(format!("warm: unexpected {other:?}")),
            }
        }
    }
    let counter = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let mut handles = Vec::new();
    for client_index in 0..RB_CLIENTS {
        let counter = Arc::clone(&counter);
        handles.push(thread::spawn(move || -> Result<ClientTally, String> {
            let mut client =
                Client::connect(addr).map_err(|e| format!("client {client_index}: {e}"))?;
            let mut tally = ClientTally::default();
            loop {
                let index = counter.fetch_add(1, Ordering::Relaxed);
                if index >= requests {
                    break;
                }
                let sent = Instant::now();
                match client
                    .call(&rb_request(index, cold))
                    .map_err(|e| format!("client {client_index}: call: {e}"))?
                {
                    Response::Ok(_) => tally.ok += 1,
                    Response::Error { code, .. } => tally.record_error(code),
                    other => return Err(format!("client {client_index}: unexpected {other:?}")),
                }
                tally
                    .latencies_us
                    .push(sent.elapsed().as_micros().min(u64::MAX as u128) as u64);
            }
            Ok(tally)
        }));
    }
    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut latencies = Vec::new();
    for handle in handles {
        let tally = handle.join().expect("throughput client panicked")?;
        ok += tally.ok;
        errors += tally.errors.iter().map(|(_, n)| n).sum::<u64>();
        latencies.extend(tally.latencies_us);
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    let answered = latencies.len() as u64;
    Ok(RouterPass {
        answered,
        ok,
        errors,
        elapsed_s: elapsed.as_secs_f64(),
        rps: answered as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
    })
}

/// Cold seeds >= `base` whose keys the two-upstream ring pins to `owner`
/// (the same ring + key derivation `gb-router` uses).
fn rb_seeds_pinned_to(owner: u32, base: u64, count: usize) -> Vec<u64> {
    let ring = Router::new(2, RB_VNODES);
    (base..)
        .filter(|&s| ring.route(shard_cache_key(s, BENCH_N).mix()) == owner)
        .take(count)
        .collect()
}

/// Reads `router.<name>` out of a router stats snapshot.
fn router_counter(stats: &Json, name: &str) -> Option<u64> {
    stats.get("router")?.get(name)?.as_u64()
}

/// SIGKILL one upstream under a pinned flood through the router; report
/// the client-visible error count and the vnode re-home window.
fn router_failover_phase() -> Result<Json, String> {
    let survivor = spawn_serve_child(&[])?;
    let mut victim = spawn_serve_child(&[])?;
    let mut router = spawn_router_child(&[survivor.addr, victim.addr], 0)?;
    let addr = router.addr;

    // The victim is upstream id 1; pin the whole flood onto it.
    let stop = Arc::new(AtomicBool::new(false));
    let oks = Arc::new(AtomicUsize::new(0));
    let errors = Arc::new(AtomicUsize::new(0));
    let mut floods = Vec::new();
    for t in 0..RB_FLOOD_THREADS {
        let seeds = rb_seeds_pinned_to(1, 70_000_000 + t as u64 * 1_000_000, 4_000);
        let (stop, oks, errors) = (stop.clone(), oks.clone(), errors.clone());
        floods.push(thread::spawn(move || {
            let Ok(mut client) = Client::connect(addr) else {
                errors.fetch_add(1, Ordering::Relaxed);
                return;
            };
            for seed in seeds {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                match client.call(&bench_request(seed, seed)) {
                    Ok(Response::Ok(_)) => {
                        oks.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        if let Ok(fresh) = Client::connect(addr) {
                            client = fresh;
                        }
                    }
                }
            }
        }));
    }

    thread::sleep(Duration::from_millis(300));
    let killed_at = Instant::now();
    victim.kill();
    // The re-home window: how long until the router's ring drops to one
    // alive upstream.
    let mut window_ms = None;
    let deadline = killed_at + Duration::from_secs(5);
    while Instant::now() < deadline {
        if let Some(stats) = fetch_stats(addr) {
            if router_counter(&stats, "alive") == Some(1) {
                window_ms = Some(killed_at.elapsed().as_millis() as u64);
                break;
            }
        }
        thread::sleep(Duration::from_millis(5));
    }
    thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    for flood in floods {
        flood.join().expect("flood thread panicked");
    }
    let stats = fetch_stats(addr);
    let failovers = stats
        .as_ref()
        .and_then(|s| router_counter(s, "failovers"))
        .unwrap_or(0);
    let retries = stats
        .as_ref()
        .and_then(|s| router_counter(s, "retries"))
        .unwrap_or(0);

    send_shutdown(addr);
    router.wait_or_kill(Duration::from_secs(3));

    let ok_count = oks.load(Ordering::Relaxed) as u64;
    let err_count = errors.load(Ordering::Relaxed) as u64;
    let window = window_ms.ok_or("router never re-homed the dead upstream's vnodes")?;
    println!(
        "  failover: {ok_count} ok, {err_count} client-visible errors across the kill, \
         re-home window {window} ms ({retries} in-request retries)"
    );
    if failovers == 0 {
        return Err("router never counted a failover".into());
    }
    if err_count > 2 * RB_FLOOD_THREADS as u64 {
        return Err(format!(
            "failover lost {err_count} requests; the loss bound is the flood's concurrency"
        ));
    }
    Ok(Json::Obj(vec![
        ("flood_threads".into(), Json::Int(RB_FLOOD_THREADS as i64)),
        ("ok".into(), Json::Int(ok_count as i64)),
        ("client_errors".into(), Json::Int(err_count as i64)),
        ("error_bound".into(), Json::Int(2 * RB_FLOOD_THREADS as i64)),
        ("rehome_window_ms".into(), Json::Int(window as i64)),
        ("failovers".into(), Json::Int(failovers as i64)),
        ("in_request_retries".into(), Json::Int(retries as i64)),
    ]))
}

/// Tail latency of cold requests pinned to a stalled upstream, with the
/// given hedge delay (0 = off). Returns the phase report and its p99.
fn router_tail_phase(hedge_ms: u64, probes: usize, base: u64) -> Result<(Json, u64), String> {
    let stall = RB_STALL_MS.to_string();
    let stalled = spawn_serve_child(&["--stall-ms", &stall])?;
    let clean = spawn_serve_child(&[])?;
    let mut router = spawn_router_child(&[stalled.addr, clean.addr], hedge_ms)?;
    let addr = router.addr;

    let mut client = Client::connect(addr).map_err(|e| format!("tail connect: {e}"))?;
    let mut latencies = Vec::with_capacity(probes);
    for (i, seed) in rb_seeds_pinned_to(0, base, probes).into_iter().enumerate() {
        let sent = Instant::now();
        match client
            .call(&bench_request(i as u64, seed))
            .map_err(|e| format!("tail call: {e}"))?
        {
            Response::Ok(_) => {}
            other => return Err(format!("tail: unexpected {other:?}")),
        }
        latencies.push(sent.elapsed().as_micros().min(u64::MAX as u128) as u64);
    }
    let stats = fetch_stats(addr);
    let hedges_sent = stats
        .as_ref()
        .and_then(|s| router_counter(s, "hedges_sent"))
        .unwrap_or(0);
    let hedges_won = stats
        .as_ref()
        .and_then(|s| router_counter(s, "hedges_won"))
        .unwrap_or(0);
    send_shutdown(addr);
    router.wait_or_kill(Duration::from_secs(3));

    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    println!(
        "  tail (hedge {}): p50 {p50} us  p99 {p99} us  (hedges sent {hedges_sent}, won {hedges_won})",
        if hedge_ms == 0 {
            "off".into()
        } else {
            format!("{hedge_ms} ms")
        }
    );
    let report = Json::Obj(vec![
        ("hedge_ms".into(), Json::Int(hedge_ms as i64)),
        ("stall_ms".into(), Json::Int(RB_STALL_MS as i64)),
        ("probes".into(), Json::Int(latencies.len() as i64)),
        ("p50_us".into(), Json::Int(p50 as i64)),
        ("p99_us".into(), Json::Int(p99 as i64)),
        (
            "max_us".into(),
            Json::Int(latencies.last().copied().unwrap_or(0) as i64),
        ),
        ("hedges_sent".into(), Json::Int(hedges_sent as i64)),
        ("hedges_won".into(), Json::Int(hedges_won as i64)),
    ]);
    Ok((report, p99))
}

fn run_router_bench(opts: &Options) -> ExitCode {
    let smoke = opts.duration_ms.is_some();
    let requests = if smoke {
        RB_SMOKE_REQUESTS
    } else {
        RB_REQUESTS
    };
    let probes = if smoke {
        RB_SMOKE_TAIL_PROBES
    } else {
        RB_TAIL_PROBES
    };
    let cold_requests = if smoke {
        RB_SMOKE_COLD_REQUESTS
    } else {
        RB_COLD_REQUESTS
    };
    match router_bench_report(requests, cold_requests, probes) {
        Ok(report) => {
            let out = if opts.out == "BENCH_serving.json" {
                "results/BENCH_router.json"
            } else {
                opts.out.as_str()
            };
            if let Some(parent) = Path::new(out).parent() {
                if !parent.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(parent);
                }
            }
            if let Err(e) = std::fs::write(out, report.encode_pretty() + "\n") {
                eprintln!("router-bench: failed to write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!("router-bench: wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("router-bench: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One throughput comparison = a direct pass against one gb-serve
/// child, then the identical workload proxied through gb-router over
/// two upstream children (one extra hop, no re-parse).
fn router_compare(
    label: &str,
    count: usize,
    cold: bool,
) -> Result<(RouterPass, RouterPass, f64), String> {
    println!("router-bench: {count} {label} requests over {RB_CLIENTS} clients, direct vs proxied");
    let direct = {
        let mut upstream = spawn_serve_child(&[])?;
        let pass = router_throughput(upstream.addr, count, cold)?;
        send_shutdown(upstream.addr);
        upstream.wait_or_kill(Duration::from_secs(3));
        pass
    };
    println!(
        "  direct:  {:>8.0} req/s  p50 {} us  p99 {} us",
        direct.rps, direct.p50_us, direct.p99_us
    );
    let proxied = {
        let a = spawn_serve_child(&[])?;
        let b = spawn_serve_child(&[])?;
        let mut router = spawn_router_child(&[a.addr, b.addr], 0)?;
        let pass = router_throughput(router.addr, count, cold)?;
        // The router forwards the shutdown to both upstreams.
        send_shutdown(router.addr);
        router.wait_or_kill(Duration::from_secs(3));
        pass
    };
    let ratio = proxied.rps / direct.rps.max(1e-9);
    println!(
        "  proxied: {:>8.0} req/s  p50 {} us  p99 {} us  ({ratio:.2}x of direct)",
        proxied.rps, proxied.p50_us, proxied.p99_us
    );
    Ok((direct, proxied, ratio))
}

fn router_bench_report(
    requests: usize,
    cold_requests: usize,
    probes: usize,
) -> Result<Json, String> {
    // The hot pass isolates the per-hop cost (nearly every request is a
    // cache hit, so proxy overhead is ALL there is to measure); it is
    // reported, not gated. The cold pass is the acceptance comparison:
    // requests cost real solver time, the regime the tier exists for.
    let (hot_direct, hot_proxied, hot_ratio) = router_compare("hot-cache", requests, false)?;
    let added = hot_proxied.p50_us.saturating_sub(hot_direct.p50_us);
    println!("  per-request overhead at p50: +{added} us");
    let (cold_direct, cold_proxied, cold_ratio) = router_compare("cold-miss", cold_requests, true)?;
    if cold_ratio < 0.5 {
        return Err(format!(
            "proxied cold-miss throughput is {cold_ratio:.2}x of direct; \
             the router must stay within 2x"
        ));
    }

    // Phase 3: SIGKILL one upstream under a pinned flood.
    println!("router-bench: failover (SIGKILL one upstream mid-flood)");
    let failover = router_failover_phase()?;

    // Phase 4: tail latency against a stalled upstream, hedging off vs on.
    println!("router-bench: tail latency vs a {RB_STALL_MS} ms stalled upstream");
    let (unhedged, unhedged_p99) = router_tail_phase(0, probes, 80_000_000)?;
    let (hedged, hedged_p99) = router_tail_phase(RB_HEDGE_MS, probes, 90_000_000)?;
    if hedged_p99 >= unhedged_p99 {
        return Err(format!(
            "hedging must cut tail latency: hedged p99 {hedged_p99} us >= \
             unhedged p99 {unhedged_p99} us"
        ));
    }
    println!(
        "  hedging cut p99 {unhedged_p99} us -> {hedged_p99} us ({:.1}x)",
        unhedged_p99 as f64 / hedged_p99.max(1) as f64
    );

    Ok(Json::Obj(vec![
        (
            "schema".into(),
            Json::Str("gb-service/bench-router/v1".into()),
        ),
        (
            "config".into(),
            Json::Obj(vec![
                ("clients".into(), Json::Int(RB_CLIENTS as i64)),
                ("requests".into(), Json::Int(requests as i64)),
                ("distinct".into(), Json::Int(RB_DISTINCT as i64)),
                ("n".into(), Json::Int(BENCH_N as i64)),
                ("cold_requests".into(), Json::Int(cold_requests as i64)),
                ("cold_n".into(), Json::Int(RB_COLD_N as i64)),
                ("vnodes".into(), Json::Int(RB_VNODES as i64)),
                ("upstreams".into(), Json::Int(2)),
                ("upstream_workers".into(), Json::Int(4)),
            ]),
        ),
        (
            "throughput".into(),
            Json::Obj(vec![
                (
                    // Cache-hit workload: isolates the per-hop proxy cost
                    // (reported, not gated — on one core the extra hop's
                    // context switches dominate a ~200 us request).
                    "hot".into(),
                    Json::Obj(vec![
                        ("direct".into(), hot_direct.to_json()),
                        ("proxied".into(), hot_proxied.to_json()),
                        ("proxied_over_direct".into(), Json::Num(hot_ratio)),
                        ("added_p50_us".into(), Json::Int(added as i64)),
                    ]),
                ),
                (
                    // Cache-miss workload: every request pays real solver
                    // time (n = RB_COLD_N), the regime the tier serves.
                    "cold".into(),
                    Json::Obj(vec![
                        ("direct".into(), cold_direct.to_json()),
                        ("proxied".into(), cold_proxied.to_json()),
                        ("proxied_over_direct".into(), Json::Num(cold_ratio)),
                        ("min_ratio".into(), Json::Num(0.5)),
                    ]),
                ),
            ]),
        ),
        ("failover".into(), failover),
        (
            "tail_latency".into(),
            Json::Obj(vec![
                ("unhedged".into(), unhedged),
                ("hedged".into(), hedged),
                (
                    "p99_speedup".into(),
                    Json::Num(unhedged_p99 as f64 / hedged_p99.max(1) as f64),
                ),
            ]),
        ),
    ]))
}

// ---------------------------------------------------------------------------
// --soak: the mostly-idle connection-scaling experiment behind
// results/BENCH_soak.json
// ---------------------------------------------------------------------------

/// Measurement window when no `--duration-ms` cap is set.
const SOAK_WINDOW_MS: u64 = 10_000;
/// Interval between requests on each active connection: slow enough
/// that the herd stays >99% idle, fast enough for a real p99 sample.
const SOAK_PACE: Duration = Duration::from_millis(100);
/// Gates: over the window the epoll pollers must burn at most this
/// fraction of the sweep pollers' CPU, without giving back active-path
/// latency.
const SOAK_MAX_CPU_RATIO: f64 = 0.2;
const SOAK_MAX_P99_RATIO: f64 = 1.2;

struct SoakPhase {
    engine: &'static str,
    io_cpu_s: f64,
    io_cpu_frac: f64,
    window_s: f64,
    requests: u64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    open_conns: u64,
    accept_errors: u64,
}

impl SoakPhase {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("engine".into(), Json::Str(self.engine.into())),
            ("io_cpu_s".into(), Json::Num(self.io_cpu_s)),
            ("io_cpu_frac".into(), Json::Num(self.io_cpu_frac)),
            ("window_s".into(), Json::Num(self.window_s)),
            ("requests".into(), Json::Int(self.requests as i64)),
            ("p50_us".into(), Json::Int(self.p50_us as i64)),
            ("p95_us".into(), Json::Int(self.p95_us as i64)),
            ("p99_us".into(), Json::Int(self.p99_us as i64)),
            ("open_conns".into(), Json::Int(self.open_conns as i64)),
            ("accept_errors".into(), Json::Int(self.accept_errors as i64)),
        ])
    }
}

/// Connects with retries: a mass connect can transiently overflow the
/// listener backlog while the accepting poller catches up.
fn soak_connect(addr: std::net::SocketAddr) -> std::io::Result<TcpStream> {
    let mut delay = Duration::from_millis(1);
    for _ in 0..60 {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(_) => {
                thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(100));
            }
        }
    }
    TcpStream::connect(addr)
}

/// One engine's soak: a real `gb-serve` child (its own fd budget), a
/// herd of idle connections, an active minority paced at
/// [`SOAK_PACE`], and the io-poller CPU delta over the window.
fn soak_phase(
    engine: &'static str,
    conns: usize,
    active: usize,
    window: Duration,
) -> Result<SoakPhase, String> {
    let mut server = spawn_serve_child(&["--engine", engine, "--io-threads", "1"])?;
    let addr = server.addr;
    let pid = server.pid();

    // Warm the one hot key so active requests measure wakeup-to-reply
    // latency, not solver time.
    Client::connect(addr)
        .and_then(|mut c| c.call(&bench_request(0, 0)))
        .map_err(|e| format!("soak[{engine}]: warm: {e}"))?;

    println!("soak[{engine}]: opening {conns} connections ({active} active)");
    let idle_count = conns.saturating_sub(active);
    let mut idle: Vec<TcpStream> = Vec::with_capacity(idle_count);
    for i in 0..idle_count {
        idle.push(soak_connect(addr).map_err(|e| format!("soak[{engine}]: conn {i}: {e}"))?);
    }
    let open_conns = fetch_stats(addr)
        .and_then(|s| s.get("connections")?.get("open")?.as_u64())
        .unwrap_or(0);

    // The active minority: one paced client per connection. CPU is
    // sampled strictly inside the driving interval, after a settle.
    let stop = Arc::new(AtomicBool::new(false));
    let drivers: Vec<_> = (0..active)
        .map(|i| {
            let stop = Arc::clone(&stop);
            thread::spawn(move || -> Result<Vec<u64>, String> {
                let mut client =
                    Client::connect(addr).map_err(|e| format!("active {i}: connect: {e}"))?;
                let mut latencies = Vec::new();
                let mut id = (i as u64) << 32;
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    client
                        .call(&bench_request(id, 0))
                        .map_err(|e| format!("active {i}: call: {e}"))?;
                    latencies.push(t.elapsed().as_micros() as u64);
                    id += 1;
                    thread::sleep(SOAK_PACE);
                }
                Ok(latencies)
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(500));
    let cpu0 = gb_sys::thread_cpu_seconds(pid, "gb-serve-io-")
        .map_err(|e| format!("soak[{engine}]: cpu sample: {e}"))?;
    let t0 = Instant::now();
    thread::sleep(window);
    let window_s = t0.elapsed().as_secs_f64();
    let cpu1 = gb_sys::thread_cpu_seconds(pid, "gb-serve-io-")
        .map_err(|e| format!("soak[{engine}]: cpu sample: {e}"))?;

    stop.store(true, Ordering::Relaxed);
    let mut latencies: Vec<u64> = Vec::new();
    for driver in drivers {
        latencies.extend(driver.join().map_err(|_| "active client panicked")??);
    }
    latencies.sort_unstable();

    let accept_errors = fetch_stats(addr)
        .and_then(|s| s.get("faults")?.get("accept_errors")?.as_u64())
        .unwrap_or(0);

    // Close the herd before asking for shutdown so the drain is instant.
    drop(idle);
    send_shutdown(addr);
    server.wait_or_kill(Duration::from_secs(5));

    let io_cpu_s = (cpu1 - cpu0).max(0.0);
    let phase = SoakPhase {
        engine,
        io_cpu_s,
        io_cpu_frac: io_cpu_s / window_s.max(1e-9),
        window_s,
        requests: latencies.len() as u64,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        open_conns,
        accept_errors,
    };
    println!(
        "soak[{engine}]: io cpu {:.3}s over {:.1}s ({:.1}% of a core), \
         {} requests, p50 {} us, p99 {} us",
        phase.io_cpu_s,
        phase.window_s,
        phase.io_cpu_frac * 100.0,
        phase.requests,
        phase.p50_us,
        phase.p99_us
    );
    Ok(phase)
}

fn run_soak(opts: &Options) -> ExitCode {
    let conns = opts.conns;
    let active = if opts.active > 0 {
        opts.active
    } else {
        (conns / 100).max(1)
    };
    let window = Duration::from_millis(opts.duration_ms.unwrap_or(SOAK_WINDOW_MS));
    // Client-side fd headroom for the herd (best-effort: the child
    // server raises its own limit the same way).
    let _ = gb_sys::raise_nofile_limit(conns as u64 + 4096);

    let sweep = match soak_phase("event", conns, active, window) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("soak: {e}");
            return ExitCode::FAILURE;
        }
    };
    let epoll = match soak_phase("epoll", conns, active, window) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("soak: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cpu_ratio = epoll.io_cpu_s / sweep.io_cpu_s.max(1e-9);
    let p99_ratio = epoll.p99_us as f64 / (sweep.p99_us as f64).max(1.0);
    let pass = cpu_ratio <= SOAK_MAX_CPU_RATIO && p99_ratio <= SOAK_MAX_P99_RATIO;
    let report = Json::Obj(vec![
        (
            "schema".into(),
            Json::Str("gb-service/bench-soak/v1".into()),
        ),
        (
            "config".into(),
            Json::Obj(vec![
                ("conns".into(), Json::Int(conns as i64)),
                ("active".into(), Json::Int(active as i64)),
                ("window_ms".into(), Json::Int(window.as_millis() as i64)),
                ("pace_ms".into(), Json::Int(SOAK_PACE.as_millis() as i64)),
                ("io_threads".into(), Json::Int(1)),
                ("upstream_workers".into(), Json::Int(4)),
            ]),
        ),
        ("sweep".into(), sweep.to_json()),
        ("epoll".into(), epoll.to_json()),
        (
            "assertion".into(),
            Json::Obj(vec![
                ("cpu_ratio".into(), Json::Num(cpu_ratio)),
                ("max_cpu_ratio".into(), Json::Num(SOAK_MAX_CPU_RATIO)),
                ("p99_ratio".into(), Json::Num(p99_ratio)),
                ("max_p99_ratio".into(), Json::Num(SOAK_MAX_P99_RATIO)),
                ("pass".into(), Json::Bool(pass)),
            ]),
        ),
    ]);

    let out = if opts.out == "BENCH_serving.json" {
        "results/BENCH_soak.json"
    } else {
        opts.out.as_str()
    };
    if let Some(parent) = Path::new(out).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    if let Err(e) = std::fs::write(out, report.encode_pretty() + "\n") {
        eprintln!("soak: failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("soak: wrote {out}");
    if pass {
        println!(
            "soak: epoll io cpu is {cpu_ratio:.3}x of sweep (max {SOAK_MAX_CPU_RATIO}), \
             active p99 {p99_ratio:.2}x (max {SOAK_MAX_P99_RATIO})"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "soak: FAILED — epoll io cpu {cpu_ratio:.3}x of sweep (max {SOAK_MAX_CPU_RATIO}), \
             active p99 {p99_ratio:.2}x (max {SOAK_MAX_P99_RATIO})"
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let opts = Arc::new(parse_args());
    if opts.soak {
        return run_soak(&opts);
    }
    if opts.warm_bench {
        return run_warm_bench(&opts);
    }
    if opts.shard_bench {
        return run_shard_bench(&opts);
    }
    if opts.skew_bench {
        return run_skew_bench(&opts);
    }
    if opts.router_bench {
        return run_router_bench(&opts);
    }
    if opts.bench {
        return run_bench(&opts);
    }
    if opts.codec_bench {
        return run_codec_bench(&opts);
    }

    // Claimed before the server starts; dropped (removing a directory
    // this run created) after everything below finishes.
    let store_guard = opts.store_dir.as_deref().map(StoreDir::claim);

    // Spawn an in-process server unless one was pointed at.
    let local_server = if opts.addr.is_none() {
        let mut tuning = Tuning {
            backends: opts.backends,
            backend_vnodes: opts.backend_vnodes,
            ..Tuning::default()
        };
        if let Some(guard) = &store_guard {
            let mut settings = StoreSettings::new(&guard.path);
            if let Some(sync) = opts.store_sync {
                settings.sync = sync;
            }
            tuning.store = Some(settings);
        }
        match Server::start_tuned(ServerConfig::default(), tuning) {
            Ok(s) => {
                println!("loadgen: spawned in-process server on {}", s.local_addr());
                Some(s)
            }
            Err(e) => {
                eprintln!("loadgen: failed to start in-process server: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = match &local_server {
        Some(s) => s.local_addr(),
        None => {
            let text = opts.addr.as_deref().expect("addr flag present");
            match text.parse() {
                Ok(a) => a,
                Err(_) => {
                    eprintln!("loadgen: --addr must be HOST:PORT, got {text:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    if opts.warm_load {
        let code = run_warm_load(&opts, addr);
        if let Some(server) = local_server {
            server.shutdown();
        }
        return code;
    }
    if opts.warm_replay {
        let code = run_warm_replay(&opts, addr);
        if let Some(server) = local_server {
            server.shutdown();
        }
        return code;
    }
    if opts.chaos {
        return run_chaos(&opts, addr, local_server);
    }

    println!(
        "loadgen: {} requests over {} clients against {} (n={}, algorithms: {})",
        opts.requests,
        opts.clients,
        addr,
        opts.n,
        opts.algorithms
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join(",")
    );

    let started = Instant::now();
    let mut handles = Vec::new();
    for client_index in 0..opts.clients {
        let opts = Arc::clone(&opts);
        handles.push(thread::spawn(move || -> Result<ClientTally, String> {
            // 0 disables the timeout; unset flags keep the client default.
            let timeout = |ms: Option<u64>| match ms {
                Some(0) => None,
                Some(ms) => Some(Duration::from_millis(ms)),
                None => Some(gb_service::client::DEFAULT_TIMEOUT),
            };
            let mut client = Client::connect_timeouts(
                addr,
                timeout(opts.read_timeout_ms),
                timeout(opts.write_timeout_ms),
            )
            .map_err(|e| format!("client {client_index}: connect: {e}"))?;
            client.set_codec(opts.codec);
            let mut tally = ClientTally::default();
            // Request k of client c is global index c + k·K: all clients
            // interleave through the same seed cycle.
            let mut index = client_index;
            while index < opts.requests {
                let request = request_for(&opts, index);
                let sent = Instant::now();
                let response = client
                    .call(&request)
                    .map_err(|e| format!("client {client_index}: call: {e}"))?;
                let us = sent.elapsed().as_micros().min(u64::MAX as u128) as u64;
                tally.latencies_us.push(us);
                match response {
                    Response::Ok(ok) => {
                        tally.ok += 1;
                        if ok.cached {
                            tally.cached += 1;
                        }
                    }
                    Response::Error { code, .. } => tally.record_error(code),
                    other => return Err(format!("client {client_index}: unexpected {other:?}")),
                }
                index += opts.clients;
            }
            Ok(tally)
        }));
    }

    let mut ok = 0u64;
    let mut cached = 0u64;
    let mut errors: Vec<(ErrorCode, u64)> = Vec::new();
    let mut latencies = Vec::with_capacity(opts.requests);
    let mut failures = Vec::new();
    for handle in handles {
        match handle.join().expect("client thread panicked") {
            Ok(tally) => {
                ok += tally.ok;
                cached += tally.cached;
                latencies.extend(tally.latencies_us);
                for (code, count) in tally.errors {
                    match errors.iter_mut().find(|(c, _)| *c == code) {
                        Some((_, n)) => *n += count,
                        None => errors.push((code, count)),
                    }
                }
            }
            Err(e) => failures.push(e),
        }
    }
    let elapsed = started.elapsed();

    let answered = latencies.len() as u64;
    latencies.sort_unstable();
    let throughput = answered as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "loadgen: {answered} responses in {:.3} s  ({throughput:.0} req/s)",
        elapsed.as_secs_f64()
    );
    println!(
        "  ok {ok} (cached {cached}), p50 {} us, p95 {} us, p99 {} us, max {} us",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
        latencies.last().copied().unwrap_or(0),
    );
    for (code, count) in &errors {
        println!("  {}: {count}", code.name());
    }
    for failure in &failures {
        eprintln!("loadgen: {failure}");
    }

    // Ask the server for its own view of the run.
    match Client::connect(addr).and_then(|mut c| c.call(&Request::Stats)) {
        Ok(Response::Stats(stats)) => {
            let hit_rate = stats
                .get("cache")
                .and_then(|c| c.get("hit_rate"))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            let total = stats
                .get("requests")
                .and_then(|r| r.get("total"))
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            println!(
                "server: {total} requests served, cache hit rate {:.1}%",
                hit_rate * 100.0
            );
            println!("server stats: {}", stats.encode());
        }
        Ok(other) => eprintln!("loadgen: unexpected stats reply {other:?}"),
        Err(e) => eprintln!("loadgen: stats request failed: {e}"),
    }

    // Snapshot the stats endpoint (a router's rollup included) and/or
    // stop an external server — the CI smoke steps drive both.
    if let Some(path) = &opts.metrics_out {
        match fetch_stats(addr) {
            Some(stats) => match std::fs::write(path, stats.encode_pretty() + "\n") {
                Ok(()) => println!("loadgen: wrote {path}"),
                Err(e) => eprintln!("loadgen: failed to write {path}: {e}"),
            },
            None => eprintln!("loadgen: stats snapshot for {path} failed"),
        }
    }
    if opts.send_shutdown {
        match Client::connect(addr).and_then(|mut c| c.call(&Request::Shutdown)) {
            Ok(_) => println!("loadgen: shutdown frame acknowledged"),
            Err(e) => eprintln!("loadgen: shutdown frame failed: {e}"),
        }
    }

    if let Some(server) = local_server {
        server.shutdown();
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
