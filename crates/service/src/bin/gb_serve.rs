//! `gb-serve` — run the partition-serving daemon.
//!
//! ```text
//! gb-serve [--addr HOST:PORT] [--workers K] [--queue-cap Q]
//!          [--cache-cap C] [--pool-threads T]
//!          [--engine event|epoll|threaded] [--io-threads I]
//!          [--max-conns N] [--cache-shards S] [--admission on|off]
//!          [--backends N] [--backend-vnodes V]
//!          [--rebalance-ms MS] [--rebalance-trigger R] [--rebalance-budget B]
//!          [--reply-timeout-ms MS] [--poll-interval-ms MS]
//!          [--write-stall-ms MS] [--stall-ms MS]
//!          [--store-dir PATH] [--store-segment-bytes N]
//!          [--store-budget-bytes N] [--store-sync none|data|full]
//! ```
//!
//! Prints the bound address on stdout (useful with `--addr 127.0.0.1:0`)
//! and serves until a client sends a `shutdown` frame.
//!
//! `--engine epoll` (Linux only) swaps the sweep-everything event
//! pollers for `epoll_wait` readiness: idle connections cost nothing,
//! so tens of thousands of mostly-idle peers leave the pollers near
//! 0% CPU. `--max-conns N` caps live connections; peers past the cap
//! get a best-effort `overloaded` reply and an immediate close instead
//! of driving the process into fd exhaustion.
//!
//! `--backends N` shards the server into N independent backend pools
//! behind a consistent-hash router: each backend owns its queue, worker
//! threads and cache, so one hot problem class cannot starve the rest.
//!
//! `--rebalance-ms MS` turns on self-balancing vnode placement
//! (`gb-rebal`): every MS milliseconds a tick re-partitions the vnode
//! set across the backends with HF over the observed per-vnode load,
//! driving the `stats.backends.imbalance` gauge toward 1.0 under
//! skewed traffic. `--rebalance-trigger R` (default 1.15) is the
//! minimum max/mean imbalance before a tick moves anything, and
//! `--rebalance-budget B` (default 16) caps voluntary vnode moves per
//! tick so cache-cold churn stays bounded.
//!
//! `--stall-ms MS` injects a sleep before every job execution (via the
//! fault-injection shim) — a deliberately slow-but-alive upstream for
//! exercising `gb-router`'s hedged retries; control frames (`ping`,
//! `stats`) stay fast, so health checks still pass.
//!
//! `--store-dir` enables the crash-safe result store: cached results are
//! spilled write-behind to an append-only segment log under PATH, and a
//! restarted daemon recovers them into its cache before serving —
//! the hot set survives a crash. `--store-sync data|full` adds fsync at
//! segment rotation and spill drain, extending durability from
//! process-crash to power-loss.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use gb_rebal::RebalanceSettings;
use gb_service::fault::ScriptedShim;
use gb_service::persist::StoreSettings;
use gb_service::server::{Engine, Server, ServerConfig, Tuning};

fn usage() -> ! {
    eprintln!(
        "usage: gb-serve [--addr HOST:PORT] [--workers K] [--queue-cap Q] \
         [--cache-cap C] [--pool-threads T] [--engine event|epoll|threaded] \
         [--io-threads I] [--max-conns N] [--cache-shards S] [--admission on|off] \
         [--backends N] [--backend-vnodes V] \
         [--rebalance-ms MS] [--rebalance-trigger R] [--rebalance-budget B] \
         [--reply-timeout-ms MS] [--poll-interval-ms MS] [--write-stall-ms MS] \
         [--stall-ms MS] \
         [--store-dir PATH] [--store-segment-bytes N] [--store-budget-bytes N] \
         [--store-sync none|data|full]"
    );
    std::process::exit(2);
}

fn parse_args() -> (ServerConfig, Tuning) {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7117".into(),
        ..ServerConfig::default()
    };
    let mut tuning = Tuning::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse_usize(&value("--workers"), "--workers"),
            "--queue-cap" => {
                config.queue_capacity = parse_usize(&value("--queue-cap"), "--queue-cap").max(1)
            }
            "--cache-cap" => {
                config.cache_capacity = parse_usize(&value("--cache-cap"), "--cache-cap")
            }
            "--pool-threads" => {
                config.pool_threads = parse_usize(&value("--pool-threads"), "--pool-threads")
            }
            "--engine" => {
                tuning.engine = match value("--engine").as_str() {
                    "event" => Engine::Event,
                    "epoll" => Engine::Epoll,
                    "threaded" => Engine::Threaded,
                    other => {
                        eprintln!("--engine expects event|epoll|threaded, got {other:?}");
                        usage()
                    }
                }
            }
            "--max-conns" => tuning.max_conns = parse_usize(&value("--max-conns"), "--max-conns"),
            "--io-threads" => {
                tuning.io_threads = parse_usize(&value("--io-threads"), "--io-threads")
            }
            "--cache-shards" => {
                tuning.cache_shards = parse_usize(&value("--cache-shards"), "--cache-shards")
            }
            "--admission" => {
                tuning.admission = match value("--admission").as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        eprintln!("--admission expects on|off, got {other:?}");
                        usage()
                    }
                }
            }
            "--reply-timeout-ms" => {
                tuning.reply_timeout = Duration::from_millis(parse_usize(
                    &value("--reply-timeout-ms"),
                    "--reply-timeout-ms",
                ) as u64)
            }
            "--poll-interval-ms" => {
                tuning.poll_interval = Duration::from_millis(parse_usize(
                    &value("--poll-interval-ms"),
                    "--poll-interval-ms",
                ) as u64)
            }
            "--write-stall-ms" => {
                tuning.write_stall = Duration::from_millis(parse_usize(
                    &value("--write-stall-ms"),
                    "--write-stall-ms",
                ) as u64)
            }
            "--store-dir" => {
                tuning.store = Some(StoreSettings::new(value("--store-dir")));
            }
            "--store-segment-bytes" => {
                let bytes =
                    parse_usize(&value("--store-segment-bytes"), "--store-segment-bytes") as u64;
                match &mut tuning.store {
                    Some(store) => store.segment_bytes = bytes,
                    None => {
                        eprintln!("--store-segment-bytes requires --store-dir first");
                        usage()
                    }
                }
            }
            "--store-budget-bytes" => {
                let bytes =
                    parse_usize(&value("--store-budget-bytes"), "--store-budget-bytes") as u64;
                match &mut tuning.store {
                    Some(store) => store.budget_bytes = bytes,
                    None => {
                        eprintln!("--store-budget-bytes requires --store-dir first");
                        usage()
                    }
                }
            }
            "--store-sync" => {
                let text = value("--store-sync");
                let mode = gb_store::SyncMode::parse(&text).unwrap_or_else(|| {
                    eprintln!("--store-sync expects none|data|full, got {text:?}");
                    usage()
                });
                match &mut tuning.store {
                    Some(store) => store.sync = mode,
                    None => {
                        eprintln!("--store-sync requires --store-dir first");
                        usage()
                    }
                }
            }
            "--stall-ms" => {
                let ms = parse_usize(&value("--stall-ms"), "--stall-ms") as u64;
                if ms > 0 {
                    let shim = ScriptedShim::new();
                    shim.stall_workers(Duration::from_millis(ms));
                    tuning.shim = Arc::new(shim);
                }
            }
            "--backends" => tuning.backends = parse_usize(&value("--backends"), "--backends"),
            "--backend-vnodes" => {
                tuning.backend_vnodes = parse_usize(&value("--backend-vnodes"), "--backend-vnodes")
            }
            "--rebalance-ms" => {
                let ms = parse_usize(&value("--rebalance-ms"), "--rebalance-ms") as u64;
                tuning
                    .rebalance
                    .get_or_insert_with(RebalanceSettings::default)
                    .interval = Duration::from_millis(ms.max(1));
            }
            "--rebalance-trigger" => {
                let text = value("--rebalance-trigger");
                let trigger: f64 = text.parse().unwrap_or_else(|_| {
                    eprintln!("--rebalance-trigger expects a number, got {text:?}");
                    usage()
                });
                match &mut tuning.rebalance {
                    Some(rebalance) => rebalance.trigger = trigger.max(1.0),
                    None => {
                        eprintln!("--rebalance-trigger requires --rebalance-ms first");
                        usage()
                    }
                }
            }
            "--rebalance-budget" => {
                let budget = parse_usize(&value("--rebalance-budget"), "--rebalance-budget");
                match &mut tuning.rebalance {
                    Some(rebalance) => rebalance.move_budget = budget,
                    None => {
                        eprintln!("--rebalance-budget requires --rebalance-ms first");
                        usage()
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    (config, tuning)
}

fn parse_usize(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects an integer, got {text:?}");
        usage()
    })
}

fn main() -> ExitCode {
    let (config, tuning) = parse_args();
    let engine = tuning.engine;
    let server = match Server::start_tuned(config, tuning) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gb-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "gb-serve listening on {} ({} engine)",
        server.local_addr(),
        engine.name()
    );
    // Serve until a client asks us to stop (the `shutdown` frame); join()
    // drains queued work before returning.
    server.join();
    println!("gb-serve: drained and stopped");
    ExitCode::SUCCESS
}
