//! `gb-serve` — run the partition-serving daemon.
//!
//! ```text
//! gb-serve [--addr HOST:PORT] [--workers K] [--queue-cap Q]
//!          [--cache-cap C] [--pool-threads T]
//! ```
//!
//! Prints the bound address on stdout (useful with `--addr 127.0.0.1:0`)
//! and serves until a client sends a `shutdown` frame.

use std::process::ExitCode;

use gb_service::server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: gb-serve [--addr HOST:PORT] [--workers K] [--queue-cap Q] \
         [--cache-cap C] [--pool-threads T]"
    );
    std::process::exit(2);
}

fn parse_args() -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7117".into(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse_usize(&value("--workers"), "--workers"),
            "--queue-cap" => {
                config.queue_capacity = parse_usize(&value("--queue-cap"), "--queue-cap").max(1)
            }
            "--cache-cap" => {
                config.cache_capacity = parse_usize(&value("--cache-cap"), "--cache-cap")
            }
            "--pool-threads" => {
                config.pool_threads = parse_usize(&value("--pool-threads"), "--pool-threads")
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    config
}

fn parse_usize(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects an integer, got {text:?}");
        usage()
    })
}

fn main() -> ExitCode {
    let config = parse_args();
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gb-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("gb-serve listening on {}", server.local_addr());
    // Serve until a client asks us to stop (the `shutdown` frame); join()
    // drains queued work before returning.
    server.join();
    println!("gb-serve: drained and stopped");
    ExitCode::SUCCESS
}
