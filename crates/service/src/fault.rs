//! Deterministic fault injection for the serving path.
//!
//! The server threads every socket read and write through an [`IoShim`]
//! so tests can script failures — torn writes, `WouldBlock` storms,
//! connection resets, stalled workers, accept-time refusals — without
//! patching the kernel or racing wall-clock timing. Production servers
//! use [`Passthrough`], which compiles down to the plain syscalls.
//!
//! Connections are identified by their accept order (`0, 1, 2, ...`),
//! which is deterministic for a scripted test that opens sockets
//! sequentially. [`ScriptedShim`] holds per-connection plans of
//! [`WriteOp`]s and [`ReadOp`]s consumed one per `write`/`read` call;
//! an exhausted plan acts as passthrough.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Hook points on the server's per-connection I/O path.
///
/// All methods take the connection's accept-order id so a script can
/// target one connection while its neighbours run clean. Defaults are
/// passthrough; implementations override only the seams they need.
pub trait IoShim: Send + Sync {
    /// Called once per accepted connection before it is registered.
    /// Returning `false` makes the server drop the socket immediately
    /// (an accept-time reset).
    fn allow_accept(&self, _conn_id: u64) -> bool {
        true
    }

    /// Called before each `accept()` attempt on the listener. Returning
    /// `Err(e)` makes the accept loop treat the attempt as having
    /// failed with `e` — e.g. the `EMFILE` shape of fd exhaustion —
    /// without touching the real listener, so tests can starve the
    /// accept path while existing connections keep running clean.
    fn accept_result(&self) -> io::Result<()> {
        Ok(())
    }

    /// Wraps every socket read.
    fn read(&self, _conn_id: u64, inner: &mut dyn Read, buf: &mut [u8]) -> io::Result<usize> {
        inner.read(buf)
    }

    /// Wraps every socket write.
    fn write(&self, _conn_id: u64, inner: &mut dyn Write, buf: &[u8]) -> io::Result<usize> {
        inner.write(buf)
    }

    /// Called by a worker just before it executes a job; returning
    /// `Some(d)` makes the worker sleep for `d` first (a stalled
    /// worker, e.g. to push a request past its deadline).
    fn before_execute(&self, _conn_id: u64) -> Option<Duration> {
        None
    }
}

/// The no-op shim used outside tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct Passthrough;

impl IoShim for Passthrough {}

/// A `TcpStream` with every read/write routed through a shim.
///
/// Clones share the underlying socket (via `TcpStream::try_clone`) and
/// the same shim + id, mirroring how the server splits a connection
/// into a reader half and a writer half.
pub struct ShimStream {
    inner: TcpStream,
    shim: Arc<dyn IoShim>,
    conn_id: u64,
}

impl std::fmt::Debug for ShimStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShimStream")
            .field("inner", &self.inner)
            .field("conn_id", &self.conn_id)
            .finish_non_exhaustive()
    }
}

impl ShimStream {
    /// Wraps an accepted stream.
    pub fn new(inner: TcpStream, shim: Arc<dyn IoShim>, conn_id: u64) -> Self {
        Self {
            inner,
            shim,
            conn_id,
        }
    }

    /// The connection's accept-order id.
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    /// Access to the raw socket for option calls (timeouts, peer addr).
    pub fn get_ref(&self) -> &TcpStream {
        &self.inner
    }

    /// Clones the handle; both halves share socket, shim and id.
    pub fn try_clone(&self) -> io::Result<Self> {
        Ok(Self {
            inner: self.inner.try_clone()?,
            shim: Arc::clone(&self.shim),
            conn_id: self.conn_id,
        })
    }

    /// Shuts down the underlying socket.
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        self.inner.shutdown(how)
    }
}

impl Read for ShimStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.shim.read(self.conn_id, &mut self.inner, buf)
    }
}

impl Write for ShimStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.shim.write(self.conn_id, &mut self.inner, buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// One scripted behaviour for a single `read` call.
#[derive(Debug, Clone, Copy)]
pub enum ReadOp {
    /// Forward the read unchanged.
    Pass,
    /// Return `WouldBlock` without reading anything.
    WouldBlock,
    /// Return `ConnectionReset` without reading anything.
    Reset,
    /// Return an unclassified I/O error (`Other`).
    Error,
}

/// One scripted behaviour for a single `write` call.
#[derive(Debug, Clone, Copy)]
pub enum WriteOp {
    /// Forward the write unchanged.
    Pass,
    /// Forward at most `n` bytes (a short write).
    Short(usize),
    /// Return `WouldBlock` without writing anything.
    WouldBlock,
    /// Keep returning `WouldBlock` until the duration elapses (measured
    /// from the first write that hits this op), then forward.
    BlockFor(Duration),
    /// Return `ConnectionReset` without writing anything.
    Reset,
}

#[derive(Debug, Default)]
struct ScriptState {
    /// Per-connection read plans, consumed front-first.
    reads: HashMap<u64, Vec<ReadOp>>,
    /// Per-connection write plans, consumed front-first.
    writes: HashMap<u64, Vec<WriteOp>>,
    /// When a `BlockFor` is at the front of a plan, the instant it ends.
    block_until: HashMap<u64, Instant>,
    /// Connections refused at accept time.
    reset_accept: Vec<u64>,
    /// Injected pre-execute stall for every job, while set.
    stall: Option<Duration>,
    /// While set, every `accept()` attempt fails with this raw errno
    /// (the fd-exhaustion script).
    fail_accepts: Option<i32>,
}

/// An [`IoShim`] driven by a per-connection script.
///
/// Cheap to clone; clones share state so a test can keep mutating the
/// script after handing it to the server.
#[derive(Debug, Clone, Default)]
pub struct ScriptedShim {
    state: Arc<Mutex<ScriptState>>,
    write_calls: Arc<AtomicU64>,
}

impl ScriptedShim {
    /// An empty (fully passthrough) script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends write ops to connection `conn_id`'s plan.
    pub fn plan_writes(&self, conn_id: u64, ops: impl IntoIterator<Item = WriteOp>) {
        let mut st = self.state.lock().unwrap();
        st.writes.entry(conn_id).or_default().extend(ops);
    }

    /// Appends read ops to connection `conn_id`'s plan.
    pub fn plan_reads(&self, conn_id: u64, ops: impl IntoIterator<Item = ReadOp>) {
        let mut st = self.state.lock().unwrap();
        st.reads.entry(conn_id).or_default().extend(ops);
    }

    /// Makes the server drop connection `conn_id` at accept time.
    pub fn reset_accept(&self, conn_id: u64) {
        self.state.lock().unwrap().reset_accept.push(conn_id);
    }

    /// Injects a sleep before every job execution until cleared.
    pub fn stall_workers(&self, d: Duration) {
        self.state.lock().unwrap().stall = Some(d);
    }

    /// Clears the worker stall.
    pub fn clear_stall(&self) {
        self.state.lock().unwrap().stall = None;
    }

    /// Makes every subsequent `accept()` attempt fail with `errno`
    /// (24 = `EMFILE`, the per-process fd limit) until cleared. Models
    /// fd exhaustion without actually exhausting the test process.
    pub fn fail_accepts(&self, errno: i32) {
        self.state.lock().unwrap().fail_accepts = Some(errno);
    }

    /// Lets accepts through again — fds "freed".
    pub fn clear_accept_failures(&self) {
        self.state.lock().unwrap().fail_accepts = None;
    }

    /// Total shimmed write calls observed (all connections).
    pub fn write_calls(&self) -> u64 {
        self.write_calls.load(Ordering::Relaxed)
    }
}

impl IoShim for ScriptedShim {
    fn allow_accept(&self, conn_id: u64) -> bool {
        !self.state.lock().unwrap().reset_accept.contains(&conn_id)
    }

    fn accept_result(&self) -> io::Result<()> {
        match self.state.lock().unwrap().fail_accepts {
            Some(errno) => Err(io::Error::from_raw_os_error(errno)),
            None => Ok(()),
        }
    }

    fn read(&self, conn_id: u64, inner: &mut dyn Read, buf: &mut [u8]) -> io::Result<usize> {
        let op = {
            let mut st = self.state.lock().unwrap();
            match st.reads.get_mut(&conn_id) {
                Some(plan) if !plan.is_empty() => plan.remove(0),
                _ => ReadOp::Pass,
            }
        };
        match op {
            ReadOp::Pass => inner.read(buf),
            ReadOp::WouldBlock => Err(io::Error::new(io::ErrorKind::WouldBlock, "injected")),
            ReadOp::Reset => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected reset",
            )),
            ReadOp::Error => Err(io::Error::other("injected read error")),
        }
    }

    fn write(&self, conn_id: u64, inner: &mut dyn Write, buf: &[u8]) -> io::Result<usize> {
        self.write_calls.fetch_add(1, Ordering::Relaxed);
        let op = {
            let mut st = self.state.lock().unwrap();
            match st.writes.get_mut(&conn_id) {
                Some(plan) if !plan.is_empty() => {
                    match plan[0] {
                        WriteOp::BlockFor(d) => {
                            let until = *st
                                .block_until
                                .entry(conn_id)
                                .or_insert_with(|| Instant::now() + d);
                            if Instant::now() < until {
                                // Stay at the front of the plan until the
                                // window closes, then fall through to Pass.
                                WriteOp::WouldBlock
                            } else {
                                st.block_until.remove(&conn_id);
                                st.writes.get_mut(&conn_id).unwrap().remove(0);
                                WriteOp::Pass
                            }
                        }
                        op => {
                            st.writes.get_mut(&conn_id).unwrap().remove(0);
                            op
                        }
                    }
                }
                _ => WriteOp::Pass,
            }
        };
        match op {
            // BlockFor is resolved to WouldBlock/Pass above.
            WriteOp::Pass | WriteOp::BlockFor(_) => inner.write(buf),
            WriteOp::Short(n) => {
                let n = n.min(buf.len()).max(usize::from(!buf.is_empty()));
                inner.write(&buf[..n])
            }
            WriteOp::WouldBlock => Err(io::Error::new(io::ErrorKind::WouldBlock, "injected")),
            WriteOp::Reset => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected reset",
            )),
        }
    }

    fn before_execute(&self, _conn_id: u64) -> Option<Duration> {
        self.state.lock().unwrap().stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory sink implementing Write, for exercising scripts
    /// without sockets.
    #[derive(Default)]
    struct Sink(Vec<u8>);

    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn scripted_shim_consumes_write_plan_in_order() {
        let shim = ScriptedShim::new();
        shim.plan_writes(7, [WriteOp::Short(2), WriteOp::WouldBlock, WriteOp::Pass]);
        let mut sink = Sink::default();

        assert_eq!(shim.write(7, &mut sink, b"hello").unwrap(), 2);
        let err = shim.write(7, &mut sink, b"llo").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert_eq!(shim.write(7, &mut sink, b"llo").unwrap(), 3);
        // Plan exhausted: passthrough from here on.
        assert_eq!(shim.write(7, &mut sink, b"!").unwrap(), 1);
        assert_eq!(&sink.0, b"hello!");
    }

    #[test]
    fn scripted_shim_consumes_read_plan_in_order() {
        let shim = ScriptedShim::new();
        shim.plan_reads(5, [ReadOp::WouldBlock, ReadOp::Pass, ReadOp::Reset]);
        let mut src = io::Cursor::new(b"abcdef".to_vec());
        let mut buf = [0u8; 3];

        let err = shim.read(5, &mut src, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert_eq!(shim.read(5, &mut src, &mut buf).unwrap(), 3);
        assert_eq!(&buf, b"abc");
        let err = shim.read(5, &mut src, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Plan exhausted: passthrough; neighbour untouched throughout.
        assert_eq!(shim.read(5, &mut src, &mut buf).unwrap(), 3);
        assert_eq!(
            shim.read(6, &mut io::Cursor::new(b"z".to_vec()), &mut buf)
                .unwrap(),
            1
        );
    }

    #[test]
    fn scripted_shim_targets_only_planned_connection() {
        let shim = ScriptedShim::new();
        shim.plan_writes(1, [WriteOp::Reset]);
        let mut sink = Sink::default();

        // Neighbour connection is untouched.
        assert_eq!(shim.write(2, &mut sink, b"ok").unwrap(), 2);
        let err = shim.write(1, &mut sink, b"boom").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn block_for_releases_after_deadline() {
        let shim = ScriptedShim::new();
        shim.plan_writes(3, [WriteOp::BlockFor(Duration::from_millis(30))]);
        let mut sink = Sink::default();

        let err = shim.write(3, &mut sink, b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(shim.write(3, &mut sink, b"x").unwrap(), 1);
    }

    #[test]
    fn accept_reset_and_stall_flags() {
        let shim = ScriptedShim::new();
        assert!(shim.allow_accept(0));
        shim.reset_accept(0);
        assert!(!shim.allow_accept(0));
        assert!(shim.allow_accept(1));

        assert_eq!(shim.before_execute(0), None);
        shim.stall_workers(Duration::from_millis(5));
        assert_eq!(shim.before_execute(0), Some(Duration::from_millis(5)));
        shim.clear_stall();
        assert_eq!(shim.before_execute(0), None);
    }
}
