//! # gb-service — a partition-serving daemon
//!
//! A long-lived TCP service over the `gb-core`/`gb-parlb` balancing
//! algorithms: clients describe a problem (any `gb-problems` class or the
//! paper's synthetic model), pick an algorithm (`hf`, `ba`, `bahf`,
//! `phf`) and a processor count `N`, and get back the partition's piece
//! weights, the achieved ratio and the analytic worst-case bound for the
//! α in effect.
//!
//! The daemon is production-shaped rather than a demo loop:
//!
//! * newline-delimited JSON protocol with explicit frame limits
//!   ([`proto`]),
//! * bounded admission with load shedding, either through one global
//!   queue or per-worker stealing deques with an aggregate cap
//!   ([`shed`]),
//! * two serving engines ([`server`]): the default *event* engine — a
//!   nonblocking poll acceptor, I/O poller sweeps, and an inline cache
//!   fast path — and the legacy thread-per-connection engine kept as a
//!   benchmark baseline,
//! * deadline enforcement and graceful drain on shutdown ([`server`]),
//! * a sharded, exact LRU result cache with optional TinyLFU admission,
//!   keyed by deterministic problem fingerprints ([`cache`],
//!   `gb_core::fingerprint`),
//! * live counters and log-bucketed latency histograms with p50/p95/p99
//!   readout, including fault counters (`conn_reset`, `torn_frame`,
//!   `reply_dropped`) ([`metrics`]),
//! * a deterministic fault-injection seam wrapping every accept, read
//!   and write, used by the chaos test-suite to script torn writes,
//!   read errors, resets and stalled workers ([`fault`]),
//! * optional crash-safe persistence (`--store-dir`): cached results
//!   spill write-behind to a `gb-store` segment log and are recovered —
//!   torn tails skipped, never trusted — into the cache on the next
//!   boot, so a restarted daemon serves its hot set warm ([`persist`],
//!   `gb_store`),
//! * a blocking [`client`] plus two binaries: `gb-serve` (the daemon) and
//!   `loadgen` (a concurrent load generator printing throughput and the
//!   latency distribution, with a `--bench` mode emitting
//!   `BENCH_serving.json`).
//!
//! ```no_run
//! use gb_service::proto::{Algorithm, BalanceRequest, Request, Response};
//! use gb_service::server::{Server, ServerConfig};
//! use gb_service::spec::ProblemSpec;
//!
//! let server = Server::start(ServerConfig::default())?;
//! let mut client = gb_service::client::Client::connect(server.local_addr())?;
//! let reply = client.call(&Request::Balance(BalanceRequest {
//!     id: Some(1),
//!     algorithm: Algorithm::BaHf,
//!     n: 64,
//!     theta: 1.0,
//!     deadline_ms: Some(1000),
//!     want_pieces: true,
//!     problem: ProblemSpec::Synthetic { weight: 1.0, lo: 0.25, hi: 0.5, seed: 7 },
//! }))?;
//! if let Response::Ok(ok) = reply {
//!     assert!(ok.ratio <= ok.bound);
//! }
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod fault;
pub mod metrics;
pub mod persist;
pub mod proto;
pub mod route;
pub mod server;
pub mod shed;
pub mod spec;

pub use cache::ShardedCache;
pub use client::{Backoff, Client};
pub use fault::{IoShim, Passthrough, ReadOp, ScriptedShim, WriteOp};
pub use persist::StoreSettings;
pub use proto::{Algorithm, ErrorCode, Request, Response};
pub use route::{FailoverRing, Router};
pub use server::{Engine, Server, ServerConfig, Tuning};
pub use spec::ProblemSpec;
