//! A minimal blocking client for the gb-service protocol.
//!
//! One request in flight per connection: [`Client::call`] writes a frame
//! and blocks until the matching response line arrives. That is exactly
//! the shape the load generator and tests need; pipelining clients can
//! speak the protocol directly — it is just lines of JSON.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::proto::{Request, Response, MAX_FRAME};

/// Default socket timeout applied by [`Client::connect`]. A wedged or
/// dead server then fails the call instead of hanging the caller
/// forever; pass explicit timeouts via [`Client::connect_timeouts`]
/// (including `None` to opt back into blocking forever).
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// A blocking request/response connection to a gb-service server.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects with [`DEFAULT_TIMEOUT`] on both reads and writes, so a
    /// server that stops answering (or stops reading) cannot stall the
    /// caller forever.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Self::connect_timeouts(addr, Some(DEFAULT_TIMEOUT), Some(DEFAULT_TIMEOUT))
    }

    /// Connects and applies a read timeout to every call; the write
    /// timeout defaults to [`DEFAULT_TIMEOUT`].
    pub fn connect_timeout(addr: SocketAddr, timeout: Option<Duration>) -> io::Result<Client> {
        Self::connect_timeouts(addr, timeout, Some(DEFAULT_TIMEOUT))
    }

    /// Connects with independent read and write timeouts (`None`
    /// blocks indefinitely on that side).
    pub fn connect_timeouts(
        addr: SocketAddr,
        read_timeout: Option<Duration>,
        write_timeout: Option<Duration>,
    ) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read_timeout)?;
        stream.set_write_timeout(write_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sends a request and waits for its response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        self.call_raw(&request.encode())
    }

    /// Sends a raw line (no newline) and decodes the response — lets
    /// tests exercise the server's handling of malformed input.
    pub fn call_raw(&mut self, line: &str) -> io::Result<Response> {
        let mut frame = line.to_string();
        frame.push('\n');
        self.writer.write_all(frame.as_bytes())?;
        let mut reply = String::new();
        // take() guards against an endless line from a broken server.
        let n = (&mut self.reader)
            .take(2 * MAX_FRAME as u64)
            .read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::decode(reply.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }
}
