//! A minimal blocking client for the gb-service protocol.
//!
//! One request in flight per connection: [`Client::call`] writes a frame
//! and blocks until the matching response arrives. That is exactly the
//! shape the load generator and tests need; pipelining clients can speak
//! the protocol directly — it is lines of JSON, or length-prefixed
//! binary frames after [`Client::set_codec`].

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::cache::splitmix64;
use crate::proto::{Codec, Request, Response, WireCodec, BIN_HDR, MAGIC, MAX_FRAME};

/// Default socket timeout applied by [`Client::connect`]. A wedged or
/// dead server then fails the call instead of hanging the caller
/// forever; pass explicit timeouts via [`Client::connect_timeouts`]
/// (including `None` to opt back into blocking forever).
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// A blocking request/response connection to a gb-service server.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    codec: WireCodec,
}

impl Client {
    /// Connects with [`DEFAULT_TIMEOUT`] on both reads and writes, so a
    /// server that stops answering (or stops reading) cannot stall the
    /// caller forever.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Self::connect_timeouts(addr, Some(DEFAULT_TIMEOUT), Some(DEFAULT_TIMEOUT))
    }

    /// Connects and applies a read timeout to every call; the write
    /// timeout defaults to [`DEFAULT_TIMEOUT`].
    pub fn connect_timeout(addr: SocketAddr, timeout: Option<Duration>) -> io::Result<Client> {
        Self::connect_timeouts(addr, timeout, Some(DEFAULT_TIMEOUT))
    }

    /// Connects with independent read and write timeouts (`None`
    /// blocks indefinitely on that side).
    pub fn connect_timeouts(
        addr: SocketAddr,
        read_timeout: Option<Duration>,
        write_timeout: Option<Duration>,
    ) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read_timeout)?;
        stream.set_write_timeout(write_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            codec: WireCodec::Json,
        })
    }

    /// Selects the wire codec for subsequent calls. The server sniffs
    /// each frame's first byte, so switching mid-connection is legal.
    pub fn set_codec(&mut self, codec: WireCodec) {
        self.codec = codec;
    }

    /// The wire codec used by [`Client::call`].
    pub fn codec(&self) -> WireCodec {
        self.codec
    }

    /// Sends a request and waits for its response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        match self.codec {
            WireCodec::Json => self.call_raw(&request.encode()),
            WireCodec::Binary => {
                let mut frame = Vec::new();
                WireCodec::Binary.encode_request(request, &mut frame);
                self.writer.write_all(&frame)?;
                self.read_binary_response()
            }
        }
    }

    /// Reads one length-prefixed binary response frame.
    fn read_binary_response(&mut self) -> io::Result<Response> {
        let mut header = [0u8; BIN_HDR];
        self.read_exact_or_eof(&mut header)?;
        if header[0] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected binary frame, got first byte {:#04x}", header[0]),
            ));
        }
        let len = u32::from_le_bytes(header[1..].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("binary frame declares {len} bytes (cap {MAX_FRAME})"),
            ));
        }
        let mut payload = vec![0u8; len];
        self.reader.read_exact(&mut payload)?;
        WireCodec::Binary
            .decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// `read_exact` that maps a clean EOF before the first byte to the
    /// same "server closed" error the JSON path reports.
    fn read_exact_or_eof(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.reader.read_exact(buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
            } else {
                e
            }
        })
    }

    /// Sends a raw line (no newline) and decodes the response — lets
    /// tests exercise the server's handling of malformed input.
    pub fn call_raw(&mut self, line: &str) -> io::Result<Response> {
        let mut frame = line.to_string();
        frame.push('\n');
        self.writer.write_all(frame.as_bytes())?;
        let mut reply = String::new();
        // take() guards against an endless line from a broken server.
        let n = (&mut self.reader)
            .take(2 * MAX_FRAME as u64)
            .read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::decode(reply.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }
}

// ---------------------------------------------------------------------------
// Reconnect backoff
// ---------------------------------------------------------------------------

/// Capped exponential backoff with deterministic equal-jitter.
///
/// Attempt `k` sleeps `e/2 + U[0, e/2)` where `e = min(cap, base·2^k)`
/// and the uniform draw comes from a seeded SplitMix64 stream — so two
/// processes hammering a refused port never sync their retries into
/// thundering herds, yet a test can replay the exact schedule from the
/// seed. Used by [`Client::connect_retry`] and by the `gb-router`
/// upstream pools, which must not hot-spin on a dead backend.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// Default first-retry delay.
    pub const DEFAULT_BASE: Duration = Duration::from_millis(10);
    /// Default delay ceiling.
    pub const DEFAULT_CAP: Duration = Duration::from_millis(1_000);

    /// A schedule starting at `base`, doubling up to `cap`, jittered
    /// from `seed`. A zero `base` is bumped to 1 ms so the schedule
    /// actually backs off.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        let base = base.max(Duration::from_millis(1));
        Backoff {
            base,
            cap: cap.max(base),
            attempt: 0,
            // Finalise the seed so consecutive seeds give unrelated
            // streams (the raw counter would correlate low bits).
            rng: splitmix64(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The default schedule (10 ms → 1 s) jittered from `seed`.
    pub fn with_seed(seed: u64) -> Backoff {
        Self::new(Self::DEFAULT_BASE, Self::DEFAULT_CAP, seed)
    }

    /// Attempts made since construction or the last [`reset`](Self::reset).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The next delay in the schedule: half the exponential envelope
    /// guaranteed, the other half uniformly jittered.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << self.attempt.min(20))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        self.rng = splitmix64(self.rng);
        let half = exp.as_nanos().max(2) as u64 / 2;
        Duration::from_nanos(half + self.rng % half)
    }

    /// Restarts the schedule after a successful connect (the jitter
    /// stream keeps advancing, so schedules stay decorrelated).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

impl Client {
    /// Connects with retries: a refused or failing connect sleeps out
    /// the next `backoff` delay and tries again until `overall` has
    /// elapsed, then returns the last error. Timeouts are applied as in
    /// [`Client::connect_timeouts`]. The backoff is borrowed so callers
    /// keep one schedule across calls (and can observe its attempts).
    pub fn connect_retry(
        addr: SocketAddr,
        read_timeout: Option<Duration>,
        write_timeout: Option<Duration>,
        overall: Duration,
        backoff: &mut Backoff,
    ) -> io::Result<Client> {
        let deadline = Instant::now() + overall;
        loop {
            match Self::connect_timeouts(addr, read_timeout, write_timeout) {
                Ok(client) => {
                    backoff.reset();
                    return Ok(client);
                }
                Err(e) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(e);
                    }
                    std::thread::sleep(backoff.next_delay().min(remaining));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(100);
        let mut b = Backoff::new(base, cap, 7);
        for attempt in 0..12u32 {
            let exp = base.saturating_mul(1 << attempt.min(20)).min(cap);
            let d = b.next_delay();
            assert!(
                d >= exp / 2 && d < exp,
                "attempt {attempt}: {d:?} outside [{:?}, {:?})",
                exp / 2,
                exp
            );
        }
        // Once capped, every delay stays within the cap envelope.
        let d = b.next_delay();
        assert!(d >= cap / 2 && d < cap);
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::with_seed(seed);
            (0..8).map(|_| b.next_delay()).collect()
        };
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43), "seeds must decorrelate");
    }

    #[test]
    fn backoff_reset_restarts_the_envelope() {
        let mut b = Backoff::new(Duration::from_millis(8), Duration::from_secs(1), 1);
        for _ in 0..6 {
            b.next_delay();
        }
        assert_eq!(b.attempt(), 6);
        b.reset();
        assert_eq!(b.attempt(), 0);
        let d = b.next_delay();
        assert!(
            d < Duration::from_millis(8),
            "post-reset delay is base-sized, got {d:?}"
        );
    }

    #[test]
    fn connect_retry_gives_up_after_the_deadline() {
        // A port with no listener: bind-then-drop reserves then frees it.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut backoff = Backoff::new(Duration::from_millis(2), Duration::from_millis(8), 9);
        let started = Instant::now();
        let err = Client::connect_retry(addr, None, None, Duration::from_millis(60), &mut backoff);
        assert!(err.is_err());
        assert!(
            backoff.attempt() >= 2,
            "must have retried, not hot-spun once"
        );
        assert!(
            started.elapsed() >= Duration::from_millis(55),
            "gave up before the overall deadline"
        );
    }
}
