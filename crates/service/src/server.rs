//! The partition-serving daemon.
//!
//! ```text
//!  clients ──TCP──▶ acceptor ──▶ connection threads (frame + parse)
//!                                      │ try_push (shed when full)
//!                                      ▼
//!                              BoundedQueue<Job>
//!                                      │ pop
//!                                      ▼
//!                               worker threads ──▶ gb-parlb ThreadPool
//!                                      │                (BA / BA-HF / PHF)
//!                                      ▼
//!                            LRU cache + metrics, reply channel
//! ```
//!
//! * **Admission** — each balance request is pushed to a bounded queue;
//!   when it is full the connection answers `overloaded` immediately
//!   ([`crate::shed`]).
//! * **Deadlines** — `deadline_ms` is checked when a worker dequeues the
//!   job; an expired request gets a `timeout` error instead of burning a
//!   core on an answer nobody is waiting for.
//! * **Caching** — results are cached by
//!   `(problem fingerprint, algorithm, N, θ)`; specs are deterministic so
//!   a hit is exact ([`crate::cache`]).
//! * **Shutdown** — [`Server::shutdown`] (or a client `shutdown` frame)
//!   closes the queue: queued work drains, new work is refused with
//!   `shutting_down`, then all threads are joined.
//!
//! Control frames (`ping`, `stats`, `shutdown`) are answered directly on
//! the connection thread — they must stay responsive even when the queue
//! is saturated, that is the whole point of having them. The `shutdown`
//! frame is acknowledged with a `pong` before draining begins.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use gb_parlb::ThreadPool;
use parking_lot::Mutex;

use crate::cache::{CacheKey, CachedResult, LruCache};
use crate::metrics::ServiceMetrics;
use crate::proto::{
    Algorithm, BalanceRequest, BalanceResponse, ErrorCode, Frame, FrameError, FrameReader, Json,
    Request, Response,
};
use crate::shed::{BoundedQueue, PushError};

/// How often blocked connection threads wake to poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Hard cap on how long a connection waits for a worker to answer one
/// job before giving up with an `internal` error (a worker died).
const REPLY_TIMEOUT: Duration = Duration::from_secs(120);

/// Smallest α used for bound computation, so bounds stay finite even for
/// degenerate empirical measurements.
const MIN_ALPHA: f64 = 1e-3;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Balance worker threads (0 = half the available parallelism, ≥ 2).
    pub workers: usize,
    /// Bounded request-queue capacity (load shed beyond this).
    pub queue_capacity: usize,
    /// LRU result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Threads in the work-stealing pool running BA/BA-HF/PHF
    /// (0 = available parallelism).
    pub pool_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 256,
            cache_capacity: 1024,
            pool_threads: 0,
        }
    }
}

struct Job {
    req: BalanceRequest,
    received: Instant,
    reply: mpsc::SyncSender<Response>,
}

struct Shared {
    queue: BoundedQueue<Job>,
    cache: Mutex<LruCache>,
    metrics: ServiceMetrics,
    pool: ThreadPool,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    connections: Mutex<Vec<thread::JoinHandle<()>>>,
}

/// A running daemon. Dropping the handle shuts the server down.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and worker threads, and returns.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            (thread::available_parallelism().map_or(4, |n| n.get()) / 2).max(2)
        } else {
            config.workers
        };
        let pool_threads = if config.pool_threads == 0 {
            thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            config.pool_threads
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity.max(1)),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            metrics: ServiceMetrics::new(),
            pool: ThreadPool::new(pool_threads),
            shutdown: AtomicBool::new(false),
            local_addr,
            connections: Mutex::new(Vec::new()),
        });

        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("gb-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn balance worker")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("gb-serve-acceptor".into())
                .spawn(move || acceptor_loop(&shared, listener))
                .expect("spawn acceptor")
        };

        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Initiates shutdown without blocking: refuses new work, wakes the
    /// acceptor. Safe to call more than once.
    pub fn trigger_shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Blocks until the server has shut down (triggered via
    /// [`trigger_shutdown`](Self::trigger_shutdown), a client `shutdown`
    /// frame, or [`shutdown`](Self::shutdown)) and all threads are joined.
    pub fn join(mut self) {
        self.join_all();
    }

    /// Graceful shutdown: drains queued work, joins every thread.
    pub fn shutdown(self) {
        self.trigger_shutdown();
        self.join();
    }

    fn join_all(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor exits only on shutdown, so the flag is set and the
        // queue closed by now; workers drain and stop.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let connections = std::mem::take(&mut *self.shared.connections.lock());
        for c in connections {
            let _ = c.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        trigger_shutdown(&self.shared);
        self.join_all();
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    shared.queue.close();
    // Unblock the acceptor's blocking accept() with a dummy connection.
    let _ = TcpStream::connect(shared.local_addr);
}

fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared2 = Arc::clone(shared);
        let handle = thread::Builder::new()
            .name("gb-serve-conn".into())
            .spawn(move || handle_connection(&shared2, stream))
            .expect("spawn connection thread");
        shared.connections.lock().push(handle);
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = FrameReader::new(read_half);
    loop {
        match reader.poll_line() {
            Ok(Frame::Pending) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(Frame::Eof) => return,
            Ok(Frame::Line(line)) => {
                let done = matches!(dispatch_line(shared, &line, &mut writer), Err(()));
                if done {
                    return;
                }
            }
            Err(FrameError::TooLong) => {
                let resp = protocol_error(shared, "frame exceeds the maximum length");
                if write_response(&mut writer, &resp).is_err() {
                    return;
                }
            }
            Err(FrameError::NotUtf8) => {
                let resp = protocol_error(shared, "frame is not valid UTF-8");
                if write_response(&mut writer, &resp).is_err() {
                    return;
                }
            }
            Err(FrameError::Io(_)) => return,
        }
    }
}

fn protocol_error(shared: &Shared, message: &str) -> Response {
    shared.metrics.record_error(ErrorCode::BadRequest);
    Response::Error {
        id: None,
        code: ErrorCode::BadRequest,
        message: message.into(),
    }
}

fn write_response(writer: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut line = resp.encode();
    line.push('\n');
    writer.write_all(line.as_bytes())
}

/// Handles one request line. `Err(())` means the connection should close.
fn dispatch_line(shared: &Arc<Shared>, line: &str, writer: &mut TcpStream) -> Result<(), ()> {
    let request = match Request::decode(line) {
        Ok(r) => r,
        Err(e) => {
            let resp = protocol_error(shared, &e.message);
            return write_response(writer, &resp).map_err(|_| ());
        }
    };
    match request {
        Request::Ping => {
            shared.metrics.record_control();
            write_response(writer, &Response::Pong).map_err(|_| ())
        }
        Request::Stats => {
            shared.metrics.record_control();
            let resp = Response::Stats(stats_json(shared));
            write_response(writer, &resp).map_err(|_| ())
        }
        Request::Shutdown => {
            shared.metrics.record_control();
            // Acknowledge before draining so the client gets an answer.
            let result = write_response(writer, &Response::Pong).map_err(|_| ());
            trigger_shutdown(shared);
            result
        }
        Request::Balance(req) => {
            let resp = submit_balance(shared, req);
            write_response(writer, &resp).map_err(|_| ())
        }
    }
}

/// Queues a balance request and waits for its worker-produced response.
fn submit_balance(shared: &Shared, req: BalanceRequest) -> Response {
    let id = req.id;
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = Job {
        req,
        received: Instant::now(),
        reply: reply_tx,
    };
    match shared.queue.try_push(job) {
        Ok(()) => match reply_rx.recv_timeout(REPLY_TIMEOUT) {
            Ok(resp) => resp,
            Err(_) => {
                shared.metrics.record_error(ErrorCode::Internal);
                Response::Error {
                    id,
                    code: ErrorCode::Internal,
                    message: "worker did not answer".into(),
                }
            }
        },
        Err((_, PushError::Full)) => {
            shared.metrics.record_error(ErrorCode::Overloaded);
            Response::Error {
                id,
                code: ErrorCode::Overloaded,
                message: format!("request queue full ({})", shared.queue.capacity()),
            }
        }
        Err((_, PushError::Closed)) => {
            shared.metrics.record_error(ErrorCode::ShuttingDown);
            Response::Error {
                id,
                code: ErrorCode::ShuttingDown,
                message: "server is draining".into(),
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let resp = execute(shared, &job);
        // A disconnected client is fine — drop the response.
        let _ = job.reply.send(resp);
    }
}

fn execute(shared: &Shared, job: &Job) -> Response {
    let req = &job.req;
    if let Some(deadline_ms) = req.deadline_ms {
        if job.received.elapsed() > Duration::from_millis(deadline_ms) {
            shared.metrics.record_error(ErrorCode::Timeout);
            return Response::Error {
                id: req.id,
                code: ErrorCode::Timeout,
                message: format!("deadline of {deadline_ms} ms expired in queue"),
            };
        }
    }

    let key = CacheKey::new(req.problem.fingerprint(), req.algorithm, req.n, req.theta);
    if let Some(hit) = shared.cache.lock().get(&key) {
        let latency = job.received.elapsed();
        shared.metrics.record_ok(req.algorithm, true, latency);
        return ok_response(req, &hit, true, latency);
    }

    let problem = req.problem.build();
    let alpha = req
        .problem
        .alpha_hint()
        .or_else(|| problem.analytic_alpha())
        .or_else(|| gb_problems::empirical_alpha(&problem, req.n))
        .unwrap_or(0.25)
        .clamp(MIN_ALPHA, 0.5);
    let partition = match req.algorithm {
        Algorithm::Hf => gb_core::hf::hf(problem, req.n),
        Algorithm::Ba => gb_parlb::par_ba(&shared.pool, problem, req.n),
        Algorithm::BaHf => gb_parlb::par_ba_hf(&shared.pool, problem, req.n, alpha, req.theta),
        Algorithm::Phf => gb_parlb::par_phf(&shared.pool, problem, req.n, alpha),
    };
    let bound = match req.algorithm {
        Algorithm::Hf | Algorithm::Phf => gb_core::hf_upper_bound(alpha, req.n),
        Algorithm::Ba => gb_core::ba_upper_bound(alpha, req.n),
        Algorithm::BaHf => gb_core::bahf_upper_bound(alpha, req.theta, req.n),
    };
    let result = CachedResult {
        pieces: partition.sorted_weights(),
        ratio: partition.ratio(),
        bound,
        alpha,
    };
    shared.cache.lock().put(key, result.clone());
    let latency = job.received.elapsed();
    shared.metrics.record_ok(req.algorithm, false, latency);
    ok_response(req, &result, false, latency)
}

fn ok_response(
    req: &BalanceRequest,
    result: &CachedResult,
    cached: bool,
    latency: Duration,
) -> Response {
    Response::Ok(BalanceResponse {
        id: req.id,
        algorithm: req.algorithm,
        n: req.n,
        ratio: result.ratio,
        bound: result.bound,
        alpha: result.alpha,
        cached,
        micros: latency.as_micros().min(u64::MAX as u128) as u64,
        pieces: if req.want_pieces {
            result.pieces.clone()
        } else {
            Vec::new()
        },
    })
}

fn stats_json(shared: &Shared) -> Json {
    let mut json = shared.metrics.to_json();
    let cache = shared.cache.lock().stats();
    if let Json::Obj(entries) = &mut json {
        entries.push((
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Int(cache.hits as i64)),
                ("misses".into(), Json::Int(cache.misses as i64)),
                ("evictions".into(), Json::Int(cache.evictions as i64)),
                ("len".into(), Json::Int(cache.len as i64)),
                ("capacity".into(), Json::Int(cache.capacity as i64)),
                ("hit_rate".into(), Json::Num(cache.hit_rate())),
            ]),
        ));
        entries.push((
            "queue".into(),
            Json::Obj(vec![
                ("depth".into(), Json::Int(shared.queue.depth() as i64)),
                ("capacity".into(), Json::Int(shared.queue.capacity() as i64)),
            ]),
        ));
        entries.push((
            "pool".into(),
            Json::Obj(vec![
                ("workers".into(), Json::Int(shared.pool.workers() as i64)),
                (
                    "injector_depth".into(),
                    Json::Int(shared.pool.injector_depth() as i64),
                ),
            ]),
        ));
    }
    json
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::spec::ProblemSpec;

    fn test_server() -> Server {
        Server::start(ServerConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 64,
            pool_threads: 2,
            ..ServerConfig::default()
        })
        .expect("bind ephemeral port")
    }

    fn synth(seed: u64) -> ProblemSpec {
        ProblemSpec::Synthetic {
            weight: 1.0,
            lo: 0.25,
            hi: 0.5,
            seed,
        }
    }

    fn balance(seed: u64, algorithm: Algorithm) -> Request {
        Request::Balance(BalanceRequest {
            id: Some(seed),
            algorithm,
            n: 16,
            theta: 1.0,
            deadline_ms: None,
            want_pieces: true,
            problem: synth(seed),
        })
    }

    #[test]
    fn ping_and_stats_round_trip() {
        let server = test_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert!(matches!(
            client.call(&Request::Ping).unwrap(),
            Response::Pong
        ));
        match client.call(&Request::Stats).unwrap() {
            Response::Stats(stats) => {
                assert!(stats.get("uptime_ms").is_some());
                assert!(stats.get("cache").is_some());
                assert!(stats.get("queue").is_some());
            }
            other => panic!("expected stats, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn balance_executes_and_caches() {
        let server = test_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let first = match client.call(&balance(7, Algorithm::Ba)).unwrap() {
            Response::Ok(r) => r,
            other => panic!("expected ok, got {other:?}"),
        };
        assert!(!first.cached);
        assert!(first.ratio >= 1.0 && first.ratio <= first.bound);
        assert_eq!(first.pieces.len(), 16);
        let second = match client.call(&balance(7, Algorithm::Ba)).unwrap() {
            Response::Ok(r) => r,
            other => panic!("expected ok, got {other:?}"),
        };
        assert!(second.cached, "identical request must hit the cache");
        assert_eq!(second.pieces, first.pieces);
        server.shutdown();
    }

    #[test]
    fn expired_deadline_times_out() {
        let server = test_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let req = Request::Balance(BalanceRequest {
            id: Some(1),
            algorithm: Algorithm::Hf,
            n: 8,
            theta: 1.0,
            deadline_ms: Some(0),
            want_pieces: false,
            problem: synth(1),
        });
        // deadline 0 ms: by the time a worker dequeues it, it is late.
        match client.call(&req).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Timeout),
            Response::Ok(_) => {} // a fast worker can legitimately win the race
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_bad_request_and_connection_survives() {
        let server = test_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        match client.call_raw("this is not json").unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("unexpected {other:?}"),
        }
        // The same connection still works.
        assert!(matches!(
            client.call(&Request::Ping).unwrap(),
            Response::Pong
        ));
        server.shutdown();
    }

    #[test]
    fn shutdown_frame_stops_the_server() {
        let server = test_server();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        assert!(matches!(
            client.call(&Request::Shutdown).unwrap(),
            Response::Pong
        ));
        server.join();
        // New connections are refused once the listener is gone; allow a
        // beat for the OS to tear the socket down.
        std::thread::sleep(Duration::from_millis(50));
        let refused = Client::connect(addr)
            .and_then(|mut c| c.call(&Request::Ping))
            .is_err();
        assert!(refused, "server still answering after shutdown");
    }
}
