//! The partition-serving daemon.
//!
//! Two serving engines share one worker/cache/metrics core:
//!
//! ```text
//!            event engine (default) — contention-free hot path
//!
//!  clients ──TCP──▶ nonblocking accept ─▶ I/O pollers (FrameReader sweep)
//!                                           │ cache hit? ─▶ reply inline
//!                                           │   (fast path, no hand-off)
//!                                           ▼ miss: try_push (shed if full)
//!                                   StealQueue: one deque per worker
//!                                           │ pop own shard / steal
//!                                           ▼
//!                                    worker threads ─▶ gb-parlb pool
//!                                           │   (BA / BA-HF / PHF)
//!                                           ▼
//!                              ShardedCache (TinyLFU admission)
//!                                           │
//!                                           ▼ write reply to socket
//! ```
//!
//! The legacy **threaded engine** ([`Engine::Threaded`]) keeps the
//! original shape — a blocking acceptor, one thread per connection, and
//! a single [`BoundedQueue`] — and survives as the benchmark baseline
//! (`loadgen --bench` measures both) and as a fallback.
//!
//! * **Admission** — each balance request is pushed to a bounded queue;
//!   when it is full the connection answers `overloaded` immediately
//!   ([`crate::shed`]). The steal queue sheds on its *aggregate* depth,
//!   so the contract is identical across engines.
//! * **Deadlines** — `deadline_ms` is checked at dispatch and again when
//!   a worker dequeues the job; an expired request gets a `timeout`
//!   error instead of burning a core on an answer nobody is waiting for.
//! * **Caching** — results are cached by
//!   `(problem fingerprint, algorithm, N, θ)` in a sharded LRU with
//!   optional TinyLFU admission; specs are deterministic so a hit is
//!   exact ([`crate::cache`]). On the event engine a hit is answered on
//!   the poller itself — no queue round trip, no context switch.
//! * **Shutdown** — [`Server::shutdown`] (or a client `shutdown` frame)
//!   closes the queue: queued work drains, new work is refused with
//!   `shutting_down`, then all threads are joined.
//!
//! Control frames (`ping`, `stats`, `shutdown`) are answered directly on
//! the I/O thread — they must stay responsive even when the queue is
//! saturated, that is the whole point of having them. The `shutdown`
//! frame is acknowledged with a `pong` before draining begins.

use std::fmt;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use gb_parlb::ThreadPool;
use gb_rebal::{EwmaTracker, RebalanceCounters, RebalanceSettings, VnodeLoad};
use gb_store::{SpillHandle, SpillSender, Store};
use gb_sys as sys;
use parking_lot::Mutex;

use crate::cache::{CacheKey, CachedResult, ReplyTail, ShardedCache};
use crate::fault::{IoShim, Passthrough, ShimStream};
use crate::metrics::{store_json, ServiceMetrics};
use crate::persist::{self, StoreSettings};
use crate::proto::{
    binary_hit_reply, binary_ok_tail, json_hit_reply, json_ok_tail, Algorithm, BalanceRequest,
    BalanceResponse, Codec, ErrorCode, Frame, FrameError, FrameReader, Json, Request, Response,
    WireCodec,
};
use crate::route::{Router, DEFAULT_VNODES};
use crate::shed::{
    AggregateCap, BoundedQueue, FullCause, PushError, SlotGauge, SlotToken, StealQueue,
};

/// Smallest α used for bound computation, so bounds stay finite even for
/// degenerate empirical measurements.
const MIN_ALPHA: f64 = 1e-3;

/// Lines dispatched from one connection per poller sweep, so one
/// pipelining client cannot starve its siblings on the same poller.
const MAX_LINES_PER_SWEEP: usize = 32;

/// Compaction threshold for a connection's output buffer: once this many
/// written bytes accumulate at the front, the buffer is shifted down.
const OUT_BUF_COMPACT: usize = 64 * 1024;

/// Which connection/queue architecture the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Blocking acceptor, one thread per connection, single
    /// [`BoundedQueue`]. The PR-1 design; baseline for benchmarks.
    Threaded,
    /// Nonblocking accept + I/O pollers, per-worker [`StealQueue`],
    /// inline cache fast path. Connections cost a file descriptor, not
    /// a thread — but every poller iteration probes every connection,
    /// so an idle fleet still costs O(conns) read syscalls per sweep.
    Event,
    /// The event engine's connection semantics behind OS readiness
    /// (Linux epoll via `gb-sys`): pollers wait for ready descriptors
    /// instead of sweeping, so mostly-idle fleets cost no steady-state
    /// CPU. Everything above the readiness layer — `FrameReader`,
    /// `ConnWriter`, the inline cache fast path, the fault shim, the
    /// write-stall and reply-timeout accounting — is shared with
    /// [`Engine::Event`], which remains the portable fallback.
    Epoll,
}

impl Engine {
    /// Stable lowercase name used in stats and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Threaded => "threaded",
            Engine::Event => "event",
            Engine::Epoll => "epoll",
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Balance worker threads (0 = half the available parallelism, ≥ 2).
    pub workers: usize,
    /// Bounded request-queue capacity (load shed beyond this; the steal
    /// queue enforces it as an aggregate across per-worker shards).
    pub queue_capacity: usize,
    /// LRU result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Threads in the work-stealing pool running BA/BA-HF/PHF
    /// (0 = available parallelism).
    pub pool_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 256,
            cache_capacity: 1024,
            pool_threads: 0,
        }
    }
}

/// Hot-path tuning: engine choice, cache sharding/admission, and the
/// timeouts that used to be hard-coded consts (`REPLY_TIMEOUT`,
/// `POLL_INTERVAL`) — hoisted into configuration with the old values as
/// defaults so fault-injection tests can tighten them.
///
/// Kept separate from [`ServerConfig`] so exhaustive `ServerConfig`
/// literals in existing callers and tests keep compiling; pass it via
/// [`Server::start_tuned`]. [`Server::start`] uses the defaults.
#[derive(Clone)]
pub struct Tuning {
    /// Serving engine (default [`Engine::Event`]).
    pub engine: Engine,
    /// I/O poller threads for the event engine (0 = 1). One is right for
    /// anything up to a few thousand connections; parsing is cheap.
    pub io_threads: usize,
    /// Cache shard count, rounded up to a power of two (0 = 8).
    pub cache_shards: usize,
    /// TinyLFU admission filter on the cache (`admission: off` knob).
    pub admission: bool,
    /// Hard cap on how long a connection waits for a worker to answer
    /// one job before giving up with an `internal` error (a worker
    /// died). Was the `REPLY_TIMEOUT` const; default 120 s.
    pub reply_timeout: Duration,
    /// How often blocked threaded-engine connection threads wake to poll
    /// the shutdown flag, and the ceiling on event-poller idle backoff.
    /// Was the `POLL_INTERVAL` const; default 100 ms.
    pub poll_interval: Duration,
    /// How long a socket may refuse bytes (`WouldBlock` with output
    /// pending) before the connection is declared dead — the client
    /// stopped reading. Was the `WRITE_STALL_LIMIT` const; default 5 s.
    pub write_stall: Duration,
    /// Fault-injection seam: every accept decision, socket read, socket
    /// write and worker dispatch goes through this shim. The default
    /// [`Passthrough`] adds nothing; tests install a
    /// [`ScriptedShim`](crate::fault::ScriptedShim).
    pub shim: Arc<dyn IoShim>,
    /// Crash-safe persistence (`gb-store`): when set, cached results are
    /// spilled write-behind to an append-only segment log and recovered
    /// into the cache on the next boot. `None` (the default) serves
    /// memory-only, exactly as before.
    pub store: Option<StoreSettings>,
    /// Independent backend pools behind a consistent-hash router
    /// (0 = 1). Each backend owns a queue shard set, worker threads and
    /// a cache, so one hot problem class saturates its own backend
    /// instead of the whole server; all backends share the store.
    pub backends: usize,
    /// Virtual nodes per backend on the router ring
    /// (0 = [`DEFAULT_VNODES`]).
    pub backend_vnodes: usize,
    /// Hard cap on simultaneously open connections (0 = unlimited).
    /// At the cap new accepts are shed with a best-effort `overloaded`
    /// reply and an `accept_shed` count, instead of running the process
    /// into its fd limit — where *every* accept fails and existing
    /// connections start losing `dup`/`fcntl` calls too.
    pub max_conns: usize,
    /// Self-balancing vnode placement (`--rebalance-ms`): when set and
    /// more than one backend is configured, a tick thread periodically
    /// re-partitions the vnode set across backends with HF over the
    /// observed per-vnode load (`gb-rebal`), overriding the hash ring
    /// through an explicit assignment table. `None` (the default) keeps
    /// the static consistent-hash placement.
    pub rebalance: Option<RebalanceSettings>,
}

impl Default for Tuning {
    fn default() -> Self {
        Self {
            engine: Engine::Event,
            io_threads: 0,
            cache_shards: 0,
            admission: true,
            reply_timeout: Duration::from_secs(120),
            poll_interval: Duration::from_millis(100),
            write_stall: Duration::from_secs(5),
            shim: Arc::new(Passthrough),
            store: None,
            backends: 0,
            backend_vnodes: 0,
            max_conns: 0,
            rebalance: None,
        }
    }
}

impl fmt::Debug for Tuning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tuning")
            .field("engine", &self.engine)
            .field("io_threads", &self.io_threads)
            .field("cache_shards", &self.cache_shards)
            .field("admission", &self.admission)
            .field("reply_timeout", &self.reply_timeout)
            .field("poll_interval", &self.poll_interval)
            .field("write_stall", &self.write_stall)
            .field("store", &self.store)
            .field("backends", &self.backends)
            .field("backend_vnodes", &self.backend_vnodes)
            .field("max_conns", &self.max_conns)
            .field("rebalance", &self.rebalance)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Queue and reply plumbing shared by both engines
// ---------------------------------------------------------------------------

/// The queue behind whichever engine is running, with one shedding
/// contract: `try_push` fails `Full` at (aggregate) capacity and
/// `Closed` after shutdown.
enum QueueKind {
    Bounded(BoundedQueue<Job>),
    Steal(StealQueue<Job>),
}

impl QueueKind {
    // Handing the job back on failure is the point of the API: the shed
    // paths reuse the request for the error reply without a clone.
    #[allow(clippy::result_large_err)]
    fn try_push(&self, job: Job) -> Result<(), (Job, PushError)> {
        match self {
            QueueKind::Bounded(q) => q.try_push(job),
            QueueKind::Steal(q) => q.try_push(job),
        }
    }

    fn pop(&self, worker: usize) -> Option<Job> {
        match self {
            QueueKind::Bounded(q) => q.pop(),
            QueueKind::Steal(q) => q.pop(worker),
        }
    }

    fn close(&self) {
        match self {
            QueueKind::Bounded(q) => q.close(),
            QueueKind::Steal(q) => q.close(),
        }
    }

    fn depth(&self) -> usize {
        match self {
            QueueKind::Bounded(q) => q.depth(),
            QueueKind::Steal(q) => q.depth(),
        }
    }

    fn capacity(&self) -> usize {
        match self {
            QueueKind::Bounded(q) => q.capacity(),
            QueueKind::Steal(q) => q.capacity(),
        }
    }

    fn shards(&self) -> usize {
        match self {
            QueueKind::Bounded(_) => 1,
            QueueKind::Steal(q) => q.workers(),
        }
    }

    fn steals(&self) -> u64 {
        match self {
            QueueKind::Bounded(_) => 0,
            QueueKind::Steal(q) => q.steals(),
        }
    }
}

/// Write half of an event-engine connection: the nonblocking socket plus
/// the output buffer that survives `WouldBlock` mid-frame.
///
/// Every writer (poller inline replies, worker replies, timeout errors)
/// appends whole frames to `pending` and then pushes as much as the
/// socket will take; the unwritten tail stays buffered — never dropped,
/// never duplicated — and later sweeps retry it. `sent` marks the start
/// of the unwritten region so retries cannot resend bytes.
struct ConnWriter {
    sink: ShimStream,
    pending: Vec<u8>,
    sent: usize,
    /// First `WouldBlock` with output pending; cleared whenever the
    /// socket accepts bytes again.
    stalled_since: Option<Instant>,
}

impl ConnWriter {
    fn new(sink: ShimStream) -> Self {
        Self {
            sink,
            pending: Vec::new(),
            sent: 0,
            stalled_since: None,
        }
    }

    fn has_pending(&self) -> bool {
        self.sent < self.pending.len()
    }
}

/// Per-connection state shared between the poller that reads requests
/// and the worker that writes the reply.
struct ConnShared {
    /// Accept-order id, the fault shim's addressing scheme.
    conn_id: u64,
    /// Buffered write half. Workers and the poller serialise frames
    /// through this lock.
    writer: Mutex<ConnWriter>,
    /// A balance job from this connection is queued or executing; the
    /// poller stops reading until it clears (responses stay ordered).
    inflight: AtomicBool,
    /// Socket failed on write; the poller drops the connection.
    dead: AtomicBool,
    /// Wakes the owning epoll poller when worker-side state changes
    /// (reply delivered, connection marked dead) — a blocked
    /// `epoll_wait` cannot see an `AtomicBool` flip. `None` on the
    /// sweep engine, whose pollers rediscover state by sweeping.
    waker: Option<Arc<sys::EventFd>>,
}

impl ConnShared {
    /// Signals the owning epoll poller, if any.
    fn wake(&self) {
        if let Some(w) = &self.waker {
            w.signal();
        }
    }
}

/// Where a worker delivers a finished response.
enum ReplyTo {
    /// Threaded engine: the blocked connection thread's channel.
    Channel(mpsc::SyncSender<Response>),
    /// Event engine: write straight to the socket. `answered` arbitrates
    /// between the worker and a poller-side reply timeout — whoever
    /// flips it first owns the reply.
    Socket {
        conn: Arc<ConnShared>,
        answered: Arc<AtomicBool>,
    },
}

struct Job {
    req: BalanceRequest,
    received: Instant,
    /// Codec of the request frame; the reply goes out in the same one.
    codec: WireCodec,
    /// Accept-order id of the submitting connection (fault-shim key).
    conn_id: u64,
    /// Index of the backend the router homed this job's key to.
    backend: usize,
    /// Ring vnode owning this job's key, for per-vnode load accounting.
    vnode: usize,
    reply: ReplyTo,
    /// RAII in-flight slot: released when the job is dropped, wherever
    /// that happens — worker reply, dead-connection skip, shed hand-back
    /// or shutdown drain — so the gauge cannot leak.
    _slot: SlotToken,
    /// Same contract for the owning backend's in-flight gauge.
    _backend_slot: SlotToken,
}

/// One backend pool: a queue, its worker threads, a cache, and a spill
/// endpoint into the shared store. The router assigns each key to
/// exactly one backend, so a hot problem class fills its own queue (and
/// sheds at its local capacity) without starving the siblings.
struct Backend {
    queue: QueueKind,
    cache: ShardedCache,
    /// Balance jobs between submission and reply on this backend.
    inflight: SlotGauge,
    /// Producer endpoint multiplexed onto the shared store's single
    /// writer thread.
    spill: Option<SpillSender>,
    /// Worker threads dedicated to this backend's queue.
    workers: usize,
    /// Cumulative requests served by this backend — attribution is
    /// fixed at serve time, so delta windows over these counters give
    /// true per-backend load even while assignments move.
    load_hits: AtomicU64,
    /// Cumulative compute micros spent by this backend.
    load_micros: AtomicU64,
}

struct Shared {
    router: Router,
    /// Declared before `spill` on purpose: fields drop in declaration
    /// order, so the backends' `SpillSender`s go first, closing the
    /// spill channel before `SpillHandle::drop` joins the writer.
    backends: Vec<Backend>,
    /// The shared admission budget across all backend queues — the
    /// server-wide overload contract is unchanged by sharding.
    queue_cap: Arc<AggregateCap>,
    metrics: ServiceMetrics,
    pool: ThreadPool,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    tuning: Tuning,
    /// Accept-order connection ids, shared by both engines.
    next_conn: AtomicU64,
    /// Live connections (open sockets holding a token).
    open_conns: SlotGauge,
    /// Balance jobs between submission and reply (both engines).
    inflight_jobs: SlotGauge,
    /// Threaded engine: per-connection thread handles.
    connections: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Event engine: accepted connections in transit to their poller.
    inboxes: Vec<Mutex<Vec<Conn>>>,
    /// Epoll backend: one wakeup channel per poller. Workers signal the
    /// owning poller after finishing a reply so it can re-arm read
    /// interest; empty on the sweep and threaded engines.
    wakers: Vec<Arc<sys::EventFd>>,
    /// Write-behind persistence. Dropped with the last `Shared` ref,
    /// which drains the spill queue to disk before the writer joins —
    /// graceful shutdown loses nothing.
    spill: Option<SpillHandle>,
    /// Per-vnode load counters, indexed by the router's ring vnodes.
    vnode_load: VnodeLoad,
    /// The vnode→backend assignment in effect. Starts as the hash
    /// ring's own table; the rebalance tick swaps in HF-planned tables.
    /// Read per request (one shared-lock acquire), written once per
    /// applying tick.
    assignment: RwLock<Vec<u32>>,
    /// Rebalance tick bookkeeping, exposed under `stats.rebal`.
    rebal: RebalanceCounters,
}

impl Shared {
    /// The vnode and backend that own `key` under the assignment in
    /// effect (the hash ring's table until a rebalance tick moves it).
    fn backend_for(&self, key: &CacheKey) -> (usize, usize, &Backend) {
        let vnode = self.router.vnode_of(key.mix());
        let index = self.assignment.read().expect("assignment lock")[vnode] as usize;
        (vnode, index, &self.backends[index])
    }

    /// Accounts one served request: per-vnode (drives the rebalancer)
    /// and per-backend (drives the imbalance measurement). `micros` is
    /// compute time only — cache hits pass 0 and the planner's
    /// per-request hit cost covers their fixed overhead.
    fn record_load(&self, vnode: usize, backend: usize, micros: u64) {
        self.vnode_load.record(vnode, micros);
        let b = &self.backends[backend];
        b.load_hits.fetch_add(1, Ordering::Relaxed);
        b.load_micros.fetch_add(micros, Ordering::Relaxed);
    }
}

/// Splits `total` into `parts` shares by floor-with-remainder (the
/// first `total % parts` shares carry the extra unit), so the shares
/// sum to exactly `total` — except that every share is raised to at
/// least `min`, which only kicks in when `total < parts * min`.
fn split_budget(total: usize, parts: usize, min: usize) -> Vec<usize> {
    let base = total / parts;
    let remainder = total % parts;
    (0..parts)
        .map(|i| (base + usize::from(i < remainder)).max(min))
        .collect()
}

/// A running daemon. Dropping the handle shuts the server down.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<thread::JoinHandle<()>>,
    pollers: Vec<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    rebal: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the serving threads with default [`Tuning`], and
    /// returns.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        Self::start_tuned(config, Tuning::default())
    }

    /// Binds and spawns with explicit hot-path tuning.
    pub fn start_tuned(config: ServerConfig, tuning: Tuning) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            (thread::available_parallelism().map_or(4, |n| n.get()) / 2).max(2)
        } else {
            config.workers
        };
        let pool_threads = if config.pool_threads == 0 {
            thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            config.pool_threads
        };
        let io_threads = tuning.io_threads.clamp(1, 16);
        let cache_shards = if tuning.cache_shards == 0 {
            8
        } else {
            tuning.cache_shards
        };
        let backend_count = tuning.backends.max(1);
        let vnodes = if tuning.backend_vnodes == 0 {
            DEFAULT_VNODES
        } else {
            tuning.backend_vnodes
        };
        let router = Router::new(backend_count, vnodes);
        // Per-backend budgets: floor-with-remainder shares of the worker
        // threads, the queue capacity and the cache, so each total
        // matches the configured value exactly — no round-up inflation.
        // Workers and queue slots round individual shares up to 1 (a
        // backend needs at least one of each to function), which is the
        // only case where a sum exceeds its config: totals smaller than
        // the backend count. The shared AggregateCap keeps the
        // server-wide shed point exactly where the single-backend
        // configuration put it regardless.
        let queue_capacity = config.queue_capacity.max(1);
        let queue_cap = AggregateCap::new(queue_capacity);
        let local_capacities = split_budget(queue_capacity, backend_count, 1);
        let worker_shares = split_budget(workers, backend_count, 1);
        let cache_shares = if config.cache_capacity == 0 {
            vec![0; backend_count]
        } else {
            split_budget(config.cache_capacity, backend_count, 0)
        };
        // The shared store: one writer thread; each backend gets its own
        // SpillSender multiplexed onto it. Recovery re-homes every
        // record to the backend the router picks *today*, so records
        // written under a different backend count land correctly.
        let mut store_open = match &tuning.store {
            Some(settings) => {
                let (store, recovered) = Store::open(settings.to_config())?;
                Some((store, recovered, settings.queue_capacity.max(1)))
            }
            None => None,
        };
        let backends: Vec<Backend> = (0..backend_count)
            .map(|b| Backend {
                queue: match tuning.engine {
                    Engine::Threaded => QueueKind::Bounded(BoundedQueue::with_cap(
                        local_capacities[b],
                        Arc::clone(&queue_cap),
                    )),
                    Engine::Event | Engine::Epoll => QueueKind::Steal(StealQueue::with_cap(
                        worker_shares[b],
                        local_capacities[b],
                        Arc::clone(&queue_cap),
                    )),
                },
                cache: ShardedCache::new(cache_shares[b], cache_shards, tuning.admission),
                inflight: SlotGauge::new(),
                spill: None,
                workers: worker_shares[b],
                load_hits: AtomicU64::new(0),
                load_micros: AtomicU64::new(0),
            })
            .collect();
        // Warm restart: replay persisted records through the owning
        // backend's cache (and its admission sketch) before serving,
        // then hand the store to its writer thread.
        let spill = match store_open.take() {
            Some((store, recovered, spill_capacity)) => {
                for record in recovered {
                    match (
                        persist::decode_key(&record.key),
                        persist::decode_value(&record.value),
                    ) {
                        (Some(key), Some(value)) => {
                            let home = router.route(key.mix()) as usize;
                            backends[home].cache.warm(key, value);
                        }
                        // Checksum-valid but undecodable: codec skew.
                        _ => store.note_corrupt(),
                    }
                }
                Some(SpillHandle::spawn(store, spill_capacity))
            }
            None => None,
        };
        let mut backends = backends;
        if let Some(spill) = &spill {
            for backend in &mut backends {
                backend.spill = Some(spill.sender());
            }
        }
        // The epoll backend needs a wakeup channel per poller before the
        // pollers exist (workers hold them through `ConnShared`). Off
        // Linux this is where `--engine epoll` fails, with an
        // `Unsupported` error naming the sweep engine as the fallback.
        let wakers = if tuning.engine == Engine::Epoll {
            (0..io_threads)
                .map(|_| sys::EventFd::new().map(Arc::new))
                .collect::<std::io::Result<Vec<_>>>()?
        } else {
            Vec::new()
        };
        let vnode_count = router.vnode_count();
        let default_owners = router.default_owners();
        let shared = Arc::new(Shared {
            router,
            backends,
            queue_cap,
            metrics: ServiceMetrics::new(),
            pool: ThreadPool::new(pool_threads),
            shutdown: AtomicBool::new(false),
            local_addr,
            tuning: tuning.clone(),
            next_conn: AtomicU64::new(0),
            open_conns: SlotGauge::new(),
            inflight_jobs: SlotGauge::new(),
            connections: Mutex::new(Vec::new()),
            inboxes: (0..io_threads).map(|_| Mutex::new(Vec::new())).collect(),
            wakers,
            spill,
            vnode_load: VnodeLoad::new(vnode_count),
            assignment: RwLock::new(default_owners),
            rebal: RebalanceCounters::new(),
        });

        // The rebalance tick: pointless with a single backend (every
        // plan is trivially balanced), so it only spawns when there is
        // something to move between.
        let rebal = match &tuning.rebalance {
            Some(settings) if backend_count > 1 => {
                let shared = Arc::clone(&shared);
                let settings = settings.clone();
                Some(
                    thread::Builder::new()
                        .name("gb-serve-rebal".into())
                        .spawn(move || rebalance_loop(&shared, &settings))
                        .expect("spawn rebalance tick"),
                )
            }
            _ => None,
        };

        let worker_handles = (0..backend_count)
            .flat_map(|b| (0..worker_shares[b]).map(move |w| (b, w)))
            .map(|(b, w)| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("gb-serve-worker-{b}-{w}"))
                    .spawn(move || worker_loop(&shared, b, w))
                    .expect("spawn balance worker")
            })
            .collect();

        let (acceptor, pollers) = match tuning.engine {
            Engine::Threaded => {
                let shared2 = Arc::clone(&shared);
                let acceptor = thread::Builder::new()
                    .name("gb-serve-acceptor".into())
                    .spawn(move || acceptor_loop(&shared2, listener))
                    .expect("spawn acceptor");
                (Some(acceptor), Vec::new())
            }
            Engine::Event => {
                listener.set_nonblocking(true)?;
                let mut listener = Some(listener);
                let pollers = (0..io_threads)
                    .map(|p| {
                        let shared = Arc::clone(&shared);
                        let listener = listener.take(); // poller 0 accepts
                        thread::Builder::new()
                            .name(format!("gb-serve-io-{p}"))
                            .spawn(move || event_loop(&shared, p, listener))
                            .expect("spawn io poller")
                    })
                    .collect();
                (None, pollers)
            }
            #[cfg(target_os = "linux")]
            Engine::Epoll => {
                listener.set_nonblocking(true)?;
                let mut listener = Some(listener);
                let pollers = (0..io_threads)
                    .map(|p| {
                        let shared = Arc::clone(&shared);
                        let listener = listener.take(); // poller 0 accepts
                        thread::Builder::new()
                            .name(format!("gb-serve-io-{p}"))
                            .spawn(move || epoll_loop(&shared, p, listener))
                            .expect("spawn io poller")
                    })
                    .collect();
                (None, pollers)
            }
            #[cfg(not(target_os = "linux"))]
            Engine::Epoll => {
                // Unreachable in practice: EventFd::new above already
                // failed with Unsupported. Kept as a typed guard.
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "--engine epoll requires Linux; use the portable event engine",
                ));
            }
        };

        Ok(Server {
            shared,
            acceptor,
            pollers,
            workers: worker_handles,
            rebal,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Initiates shutdown without blocking: refuses new work, wakes the
    /// acceptor. Safe to call more than once.
    pub fn trigger_shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Blocks until the server has shut down (triggered via
    /// [`trigger_shutdown`](Self::trigger_shutdown), a client `shutdown`
    /// frame, or [`shutdown`](Self::shutdown)) and all threads are joined.
    pub fn join(mut self) {
        self.join_all();
    }

    /// Graceful shutdown: drains queued work, joins every thread.
    pub fn shutdown(self) {
        self.trigger_shutdown();
        self.join();
    }

    fn join_all(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The pollers exit once shutdown is set and their in-flight
        // replies have been written; the acceptor exits only on
        // shutdown. Either way the queue is closed by now, so workers
        // drain and stop.
        for p in self.pollers.drain(..) {
            let _ = p.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(rebal) = self.rebal.take() {
            let _ = rebal.join();
        }
        let connections = std::mem::take(&mut *self.shared.connections.lock());
        for c in connections {
            let _ = c.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        trigger_shutdown(&self.shared);
        self.join_all();
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    for backend in &shared.backends {
        backend.queue.close();
    }
    // Epoll pollers block in epoll_wait; signal each wakeup channel so
    // the drain starts now rather than at the next timeout.
    for waker in &shared.wakers {
        waker.signal();
    }
    // Unblock the threaded engine's blocking accept() with a dummy
    // connection (harmless no-op for the event engine, which polls).
    let _ = TcpStream::connect(shared.local_addr);
}

// ---------------------------------------------------------------------------
// Rebalance tick: HF over observed per-vnode load (gb-rebal)
// ---------------------------------------------------------------------------

/// The self-balancing tick. Every `interval` it snapshots the per-vnode
/// counters into an EWMA, plans an HF re-partition of the vnode
/// multiset over all backends (in-process backends don't die, so the
/// candidate set is the full membership), and — hysteresis permitting —
/// swaps the new assignment table in. Requests racing the swap route by
/// either the old or the new table, both of which are valid backends;
/// a moved vnode's next request simply warms the new owner's cache.
fn rebalance_loop(shared: &Arc<Shared>, settings: &RebalanceSettings) {
    let alive: Vec<u32> = (0..shared.backends.len() as u32).collect();
    let mut tracker = EwmaTracker::new(shared.vnode_load.len(), settings.decay);
    let interval = settings.interval.max(Duration::from_millis(1));
    // Sleep in short steps so shutdown is honoured promptly even with
    // long tick intervals.
    let step = Duration::from_millis(20).min(interval);
    let mut next_tick = Instant::now() + interval;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if Instant::now() < next_tick {
            thread::sleep(step);
            continue;
        }
        next_tick = Instant::now() + interval;
        tracker.observe(&shared.vnode_load);
        let current = shared.assignment.read().expect("assignment lock").clone();
        let plan = gb_rebal::plan(
            &tracker.weights(),
            &current,
            &alive,
            settings.trigger,
            settings.move_budget,
        );
        shared.rebal.record_tick(&plan);
        if !plan.skipped && !plan.moves.is_empty() {
            *shared.assignment.write().expect("assignment lock") = plan.owners;
        }
    }
}

// ---------------------------------------------------------------------------
// Threaded engine: blocking acceptor + thread per connection
// ---------------------------------------------------------------------------

fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // The shim can turn a successful accept into a scripted failure
        // (the fd-exhaustion shape); `.and(stream)` drops the stream in
        // that case, which is exactly what a failed accept looks like.
        let stream = match shared.tuning.shim.accept_result().and(stream) {
            Ok(s) => s,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::Interrupted | std::io::ErrorKind::WouldBlock
                ) =>
            {
                continue
            }
            Err(e) => {
                // EMFILE/ENFILE and friends: nothing frees an fd by
                // retrying hot, so count it and back off for one poll
                // interval. Other accept errors (aborted handshakes)
                // are counted too but retried immediately.
                shared.metrics.record_accept_error();
                if sys::is_resource_exhaustion(&e) {
                    thread::sleep(shared.tuning.poll_interval);
                }
                continue;
            }
        };
        let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
        if !shared.tuning.shim.allow_accept(conn_id) {
            shared.metrics.record_conn_reset();
            continue;
        }
        let max = shared.tuning.max_conns;
        if max > 0 && shared.open_conns.occupied() >= max {
            shed_accept(shared, stream, max);
            continue;
        }
        // Acquire the gauge slot here, not in the connection thread, so
        // the cap check above cannot over-admit during thread spawn.
        let open = shared.open_conns.acquire();
        let shared2 = Arc::clone(shared);
        let handle = thread::Builder::new()
            .name("gb-serve-conn".into())
            .spawn(move || handle_connection(&shared2, stream, conn_id, open))
            .expect("spawn connection thread");
        shared.connections.lock().push(handle);
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream, conn_id: u64, _open: SlotToken) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.tuning.poll_interval));
    let Ok(read_half) = stream.try_clone() else {
        // A connected client vanishing at setup is a connection death,
        // not a silent non-event.
        shared.metrics.record_conn_reset();
        return;
    };
    let shim = &shared.tuning.shim;
    let mut writer = ShimStream::new(stream, Arc::clone(shim), conn_id);
    let mut reader = FrameReader::new(ShimStream::new(read_half, Arc::clone(shim), conn_id));
    loop {
        match reader.poll_line() {
            Ok(Frame::Pending) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(Frame::Eof) => return,
            Ok(Frame::Line(line)) => {
                let request = Request::decode(&line);
                if dispatch_line(shared, WireCodec::Json, request, &mut writer, conn_id).is_err() {
                    return;
                }
            }
            Ok(Frame::Binary(payload)) => {
                let request = WireCodec::Binary.decode_request(&payload);
                if dispatch_line(shared, WireCodec::Binary, request, &mut writer, conn_id).is_err()
                {
                    return;
                }
            }
            Err(FrameError::TooLong) => {
                let resp = protocol_error(shared, "frame exceeds the maximum length");
                if write_response(shared, &mut writer, reader.codec(), &resp).is_err() {
                    return;
                }
            }
            Err(FrameError::NotUtf8) => {
                let resp = protocol_error(shared, "frame is not valid UTF-8");
                if write_response(shared, &mut writer, reader.codec(), &resp).is_err() {
                    return;
                }
            }
            Err(FrameError::Corrupt) => {
                // A corrupt binary length tears the stream the same way
                // a torn frame does, but the reader resynchronises, so
                // the connection survives.
                shared.metrics.record_torn_frame();
                let resp = protocol_error(shared, "binary frame length is corrupt");
                if write_response(shared, &mut writer, reader.codec(), &resp).is_err() {
                    return;
                }
            }
            Err(FrameError::Torn) => {
                // The peer closed its write half mid-frame. Best-effort
                // error reply — a half-closed client may still be
                // reading — then drop the connection.
                shared.metrics.record_torn_frame();
                let resp = protocol_error(shared, "frame torn by EOF mid-line");
                let _ = write_response(shared, &mut writer, reader.codec(), &resp);
                return;
            }
            Err(FrameError::Io(_)) => {
                shared.metrics.record_conn_reset();
                return;
            }
        }
    }
}

fn protocol_error(shared: &Shared, message: &str) -> Response {
    shared.metrics.record_error(ErrorCode::BadRequest);
    Response::Error {
        id: None,
        code: ErrorCode::BadRequest,
        message: message.into(),
    }
}

/// Writes one frame on the threaded engine, retrying short writes and
/// `WouldBlock` (a fault shim or a full socket buffer) until
/// `tuning.write_stall` elapses, after which the peer is considered
/// gone. No byte is ever dropped or rewritten: the slice only advances
/// by what the socket accepted.
fn write_response(
    shared: &Shared,
    writer: &mut ShimStream,
    codec: WireCodec,
    resp: &Response,
) -> std::io::Result<()> {
    let mut frame = Vec::new();
    codec.encode_response(resp, &mut frame);
    let mut buf = frame.as_slice();
    let deadline = Instant::now() + shared.tuning.write_stall;
    while !buf.is_empty() {
        match writer.write(buf) {
            Ok(0) => {
                shared.metrics.record_conn_reset();
                return Err(std::io::ErrorKind::WriteZero.into());
            }
            Ok(k) => buf = &buf[k..],
            Err(e) if would_block(&e) => {
                if Instant::now() >= deadline {
                    shared.metrics.record_conn_reset();
                    return Err(e);
                }
                thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                shared.metrics.record_conn_reset();
                return Err(e);
            }
        }
    }
    Ok(())
}

/// Handles one decoded request frame. `Err(())` means the connection
/// should close.
fn dispatch_line(
    shared: &Arc<Shared>,
    codec: WireCodec,
    request: Result<Request, crate::proto::ProtoError>,
    writer: &mut ShimStream,
    conn_id: u64,
) -> Result<(), ()> {
    let request = match request {
        Ok(r) => r,
        Err(e) => {
            let resp = protocol_error(shared, &e.message);
            return write_response(shared, writer, codec, &resp).map_err(|_| ());
        }
    };
    match request {
        Request::Ping => {
            shared.metrics.record_control();
            write_response(shared, writer, codec, &Response::Pong).map_err(|_| ())
        }
        Request::Stats => {
            shared.metrics.record_control();
            let resp = Response::Stats(stats_json(shared));
            write_response(shared, writer, codec, &resp).map_err(|_| ())
        }
        Request::Shutdown => {
            shared.metrics.record_control();
            // Acknowledge before draining so the client gets an answer.
            let result = write_response(shared, writer, codec, &Response::Pong).map_err(|_| ());
            trigger_shutdown(shared);
            result
        }
        Request::Balance(req) => {
            let resp = submit_balance(shared, req, conn_id);
            write_response(shared, writer, codec, &resp).map_err(|_| ())
        }
    }
}

/// The `overloaded` error text, naming the capacity that actually
/// bound: the owning backend's local queue, or the server-wide
/// aggregate budget shared across backends (the local queue may have
/// had room in that case, so reporting its capacity would mislead).
fn overload_message(shared: &Shared, backend: &Backend, cause: FullCause) -> String {
    match cause {
        FullCause::Local => format!("backend queue full ({})", backend.queue.capacity()),
        FullCause::Aggregate => format!("server queue full ({})", shared.queue_cap.capacity()),
    }
}

/// Queues a balance request on the backend that owns its key and waits
/// for the worker-produced response.
fn submit_balance(shared: &Shared, req: BalanceRequest, conn_id: u64) -> Response {
    let id = req.id;
    let key = CacheKey::new(req.problem.fingerprint(), req.algorithm, req.n, req.theta);
    let (vnode, backend_index, backend) = shared.backend_for(&key);
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = Job {
        req,
        received: Instant::now(),
        // Channel replies are encoded by the connection thread, which
        // knows the frame's codec; the job-side codec is unused there.
        codec: WireCodec::Json,
        conn_id,
        backend: backend_index,
        vnode,
        reply: ReplyTo::Channel(reply_tx),
        _slot: shared.inflight_jobs.acquire(),
        _backend_slot: backend.inflight.acquire(),
    };
    match backend.queue.try_push(job) {
        Ok(()) => match reply_rx.recv_timeout(shared.tuning.reply_timeout) {
            Ok(resp) => resp,
            Err(_) => {
                shared.metrics.record_error(ErrorCode::Internal);
                Response::Error {
                    id,
                    code: ErrorCode::Internal,
                    message: "worker did not answer".into(),
                }
            }
        },
        Err((_, PushError::Full(cause))) => {
            shared.metrics.record_error(ErrorCode::Overloaded);
            Response::Error {
                id,
                code: ErrorCode::Overloaded,
                message: overload_message(shared, backend, cause),
            }
        }
        Err((_, PushError::Closed)) => {
            shared.metrics.record_error(ErrorCode::ShuttingDown);
            Response::Error {
                id,
                code: ErrorCode::ShuttingDown,
                message: "server is draining".into(),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Event engine: nonblocking accept + poller sweep + direct worker writes
// ---------------------------------------------------------------------------

/// One connection owned by an I/O poller.
struct Conn {
    reader: FrameReader<ShimStream>,
    shared: Arc<ConnShared>,
    /// Set while a queued balance request is outstanding: when it was
    /// dispatched, the reply-arbitration flag, and the request id (for
    /// the timeout error frame).
    inflight_since: Option<(Instant, Arc<AtomicBool>, Option<u64>, WireCodec)>,
    /// The read side is finished (EOF or torn frame); the connection
    /// stays around only until buffered replies drain.
    closing: bool,
    /// Open-connection gauge slot, released when the poller drops us.
    _open: SlotToken,
}

impl Conn {
    /// Registers an accepted stream. `None` means the socket died
    /// between `accept` and setup (`fcntl`/`dup` failure, typical under
    /// fd pressure) — the caller must record the death; a client that
    /// connected successfully must not vanish without a metric.
    fn accept(
        stream: TcpStream,
        shared: &Shared,
        conn_id: u64,
        waker: Option<Arc<sys::EventFd>>,
    ) -> Option<Conn> {
        let _ = stream.set_nodelay(true);
        stream.set_nonblocking(true).ok()?;
        let writer = stream.try_clone().ok()?;
        let shim = &shared.tuning.shim;
        Some(Conn {
            reader: FrameReader::new(ShimStream::new(stream, Arc::clone(shim), conn_id)),
            shared: Arc::new(ConnShared {
                conn_id,
                writer: Mutex::new(ConnWriter::new(ShimStream::new(
                    writer,
                    Arc::clone(shim),
                    conn_id,
                ))),
                inflight: AtomicBool::new(false),
                dead: AtomicBool::new(false),
                waker,
            }),
            inflight_since: None,
            closing: false,
            _open: shared.open_conns.acquire(),
        })
    }
}

/// Accept-side state an accepting poller carries across iterations.
#[derive(Default)]
struct AcceptState {
    /// Round-robin cursor over poller inboxes.
    next_inbox: usize,
    /// Set after a resource-exhaustion accept error: no accept attempts
    /// until this instant. Retrying `EMFILE` hot frees nothing and
    /// starves the connections that already exist.
    backoff_until: Option<Instant>,
}

/// Drains the listener's accept queue, triaging errors instead of the
/// old blanket `Err(_) => break`: `Interrupted` retries immediately,
/// `WouldBlock` ends the batch, resource exhaustion counts
/// `faults.accept_errors` and backs accepts off for one poll interval,
/// and the `--max-conns` cap sheds with a best-effort `overloaded`
/// reply before close. Accepted connections are handed to `deliver`
/// with their target poller index. Returns true if any were accepted.
fn drain_accepts(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    state: &mut AcceptState,
    mut deliver: impl FnMut(usize, Conn),
) -> bool {
    if let Some(until) = state.backoff_until {
        if Instant::now() < until {
            return false;
        }
        state.backoff_until = None;
    }
    let mut progress = false;
    loop {
        // Accept first, shim second — same order as the threaded
        // acceptor's `.and(stream)`. The scripted seam only fires once
        // a real connection is pending, so an idle sweep iteration is a
        // plain `WouldBlock` and never consumes a scripted verdict.
        let attempt = match listener.accept() {
            Ok((stream, _)) => shared.tuning.shim.accept_result().map(|()| stream),
            Err(e) => Err(e),
        };
        match attempt {
            Ok(stream) => {
                progress = true;
                let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
                if !shared.tuning.shim.allow_accept(conn_id) {
                    shared.metrics.record_conn_reset();
                    continue;
                }
                let max = shared.tuning.max_conns;
                if max > 0 && shared.open_conns.occupied() >= max {
                    shed_accept(shared, stream, max);
                    continue;
                }
                let target = state.next_inbox % shared.inboxes.len();
                state.next_inbox = state.next_inbox.wrapping_add(1);
                let waker = shared.wakers.get(target).cloned();
                match Conn::accept(stream, shared, conn_id, waker) {
                    Some(conn) => deliver(target, conn),
                    None => shared.metrics.record_conn_reset(),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if would_block(&e) => break,
            Err(e) => {
                shared.metrics.record_accept_error();
                if sys::is_resource_exhaustion(&e) {
                    state.backoff_until = Some(Instant::now() + shared.tuning.poll_interval);
                }
                break;
            }
        }
    }
    progress
}

/// Best-effort `overloaded` reply to a connection shed at the
/// `--max-conns` cap, then close. One nonblocking write: a peer whose
/// socket cannot take a single frame just sees the close. Shedding
/// happens before the first frame is sniffed, so the reply is always a
/// JSON line — binary clients treat the close itself as the signal.
fn shed_accept(shared: &Shared, stream: TcpStream, cap: usize) {
    shared.metrics.record_accept_shed();
    shared.metrics.record_error(ErrorCode::Overloaded);
    let resp = Response::Error {
        id: None,
        code: ErrorCode::Overloaded,
        message: format!("connection limit ({cap}) reached"),
    };
    let mut line = resp.encode();
    line.push('\n');
    let _ = stream.set_nonblocking(true);
    let _ = (&stream).write(line.as_bytes());
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Queues one frame for delivery and pushes what the socket will take.
fn write_frame(shared: &Shared, conn: &ConnShared, codec: WireCodec, resp: &Response) {
    let mut frame = Vec::new();
    codec.encode_response(resp, &mut frame);
    enqueue_bytes(shared, conn, &frame);
}

/// Appends one encoded frame to a sweep's outgoing reply buffer.
fn push_reply(replies: &mut Vec<u8>, codec: WireCodec, resp: &Response) {
    codec.encode_response(resp, replies);
}

/// Moves a sweep's coalesced replies into the connection's output
/// buffer and flushes what fits, preserving frame order.
fn flush_replies(shared: &Shared, conn: &ConnShared, replies: &mut Vec<u8>) {
    if !replies.is_empty() {
        enqueue_bytes(shared, conn, replies);
        replies.clear();
    }
}

/// Appends bytes to the connection's output buffer and drives the
/// socket. Never blocks and never drops accepted bytes: on `WouldBlock`
/// the tail stays in the buffer for later flushes.
fn enqueue_bytes(shared: &Shared, conn: &ConnShared, buf: &[u8]) {
    let mut w = conn.writer.lock();
    if conn.dead.load(Ordering::Acquire) {
        return;
    }
    w.pending.extend_from_slice(buf);
    drive_writer(shared, conn, &mut w);
}

/// Retries any buffered output without blocking. Returns `true` while
/// unwritten bytes remain.
fn flush_pending(shared: &Shared, conn: &ConnShared) -> bool {
    let mut w = conn.writer.lock();
    drive_writer(shared, conn, &mut w);
    w.has_pending()
}

/// Writes as much buffered output as the socket accepts. A socket that
/// refuses all bytes for `tuning.write_stall` is a peer that stopped
/// reading: the connection is marked dead and the buffer discarded.
fn drive_writer(shared: &Shared, conn: &ConnShared, w: &mut ConnWriter) {
    while w.sent < w.pending.len() {
        match w.sink.write(&w.pending[w.sent..]) {
            Ok(0) => return mark_write_dead(shared, conn, w),
            Ok(k) => {
                w.sent += k;
                w.stalled_since = None;
            }
            Err(e) if would_block(&e) => {
                let since = *w.stalled_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= shared.tuning.write_stall {
                    return mark_write_dead(shared, conn, w);
                }
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return mark_write_dead(shared, conn, w),
        }
    }
    if w.sent == w.pending.len() {
        w.pending.clear();
        w.sent = 0;
    } else if w.sent >= OUT_BUF_COMPACT {
        w.pending.drain(..w.sent);
        w.sent = 0;
    }
}

fn mark_write_dead(shared: &Shared, conn: &ConnShared, w: &mut ConnWriter) {
    conn.dead.store(true, Ordering::Release);
    shared.metrics.record_conn_reset();
    w.pending.clear();
    w.sent = 0;
    w.stalled_since = None;
    // A dead connection must be reaped; an epoll poller blocked in
    // `wait` would otherwise not notice until its timeout.
    conn.wake();
}

/// The poller loop: accept (poller 0), adopt handed-off connections,
/// sweep each connection for readable frames, back off adaptively when
/// idle. Exits when shutdown is set and every in-flight reply has been
/// written.
fn event_loop(shared: &Arc<Shared>, index: usize, mut listener: Option<TcpListener>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut accepts = AcceptState::default();
    let mut idle_spins = 0u32;
    // Reused across sweeps: inline replies are batched here and written
    // with one syscall per connection per sweep.
    let mut replies = Vec::new();
    loop {
        let mut progress = false;
        let draining = shared.shutdown.load(Ordering::SeqCst);
        if draining {
            // Dropping the listener refuses new connections immediately.
            listener = None;
        } else if let Some(l) = &listener {
            progress |= drain_accepts(shared, l, &mut accepts, |target, conn| {
                if target == index {
                    conns.push(conn);
                } else {
                    shared.inboxes[target].lock().push(conn);
                }
            });
        }
        {
            let mut inbox = shared.inboxes[index].lock();
            if !inbox.is_empty() {
                progress = true;
                conns.append(&mut inbox);
            }
        }
        conns.retain_mut(|conn| sweep_conn(shared, conn, draining, &mut progress, &mut replies));
        if draining && conns.is_empty() {
            return;
        }
        if progress {
            idle_spins = 0;
        } else {
            idle_spins = idle_spins.saturating_add(1);
            if idle_spins > 3 {
                // Exponential backoff from 50 µs. There is no readiness
                // wakeup — a sleeping poller is blind — so the sleep cap
                // balances wake latency against sweep cost. A flat 1 ms
                // cap meant ONE idle connection held the poller at ~1k
                // full sweeps/sec forever; instead the cap scales with
                // the sweep's own cost (~20 µs of allowance per
                // connection), so a near-empty poller naps cheaply while
                // a loaded one still wakes fast. Only an empty poller
                // may back off all the way to the poll interval.
                let exp = (idle_spins - 3).min(12);
                let backoff = Duration::from_micros(50u64 << exp);
                let cap = if conns.is_empty() {
                    shared.tuning.poll_interval
                } else {
                    let interval = shared.tuning.poll_interval;
                    Duration::from_micros(20 * conns.len() as u64)
                        .min(interval)
                        .max(Duration::from_millis(1).min(interval))
                };
                thread::sleep(backoff.min(cap));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Epoll engine (Linux): readiness wakeups over the same sweep logic
// ---------------------------------------------------------------------------

/// Registration token for the accept listener.
#[cfg(target_os = "linux")]
const LISTENER_TOKEN: u64 = u64::MAX;
/// Registration token for the poller's eventfd wakeup channel.
#[cfg(target_os = "linux")]
const WAKER_TOKEN: u64 = u64::MAX - 1;

/// A connection owned by an epoll poller: the sweep engine's [`Conn`]
/// plus the interest currently registered with the kernel.
#[cfg(target_os = "linux")]
struct EpollConn {
    conn: Conn,
    armed: sys::Interest,
}

#[cfg(target_os = "linux")]
fn conn_fd(conn: &Conn) -> sys::RawFd {
    use std::os::fd::AsRawFd;
    conn.reader.get_ref().get_ref().as_raw_fd()
}

/// Adds a connection to the poller's slab and registers its socket for
/// read readiness. `None` (with `conn_reset` recorded) if the kernel
/// refuses the registration — the socket died between accept and here.
#[cfg(target_os = "linux")]
fn epoll_insert(
    ep: &sys::Epoll,
    slots: &mut Vec<Option<EpollConn>>,
    free: &mut Vec<usize>,
    shared: &Shared,
    conn: Conn,
) -> Option<usize> {
    let slot = free.pop().unwrap_or_else(|| {
        slots.push(None);
        slots.len() - 1
    });
    if ep
        .add(conn_fd(&conn), slot as u64, sys::Interest::READ)
        .is_err()
    {
        free.push(slot);
        shared.metrics.record_conn_reset();
        return None;
    }
    slots[slot] = Some(EpollConn {
        conn,
        armed: sys::Interest::READ,
    });
    Some(slot)
}

/// The readiness-driven poller. Per-connection semantics are identical
/// to [`event_loop`] — the work is the same [`sweep_conn`], so the
/// fault shim, reply arbitration, and write-stall accounting are all
/// shared — but instead of sweeping every connection every iteration
/// the poller blocks in `epoll_wait` and services only what the kernel
/// (or a worker's eventfd wakeup) reports. Idle connections therefore
/// cost nothing per iteration; that is the whole point of the engine.
///
/// Level-triggered interest is deliberate: the fault shim may answer a
/// readable wakeup with an injected `WouldBlock`, and level semantics
/// re-deliver the event on the next wait instead of losing it.
///
/// Falls back to [`event_loop`] if the epoll instance cannot be set up
/// — readiness is an optimisation, not a correctness requirement.
#[cfg(target_os = "linux")]
fn epoll_loop(shared: &Arc<Shared>, index: usize, mut listener: Option<TcpListener>) {
    use std::collections::HashSet;
    use std::os::fd::AsRawFd;

    let waker = Arc::clone(&shared.wakers[index]);
    let mut ep = match sys::Epoll::new() {
        Ok(ep)
            if ep
                .add(waker.raw_fd(), WAKER_TOKEN, sys::Interest::READ)
                .is_ok() =>
        {
            ep
        }
        _ => return event_loop(shared, index, listener),
    };
    let mut listener_armed = false;
    if let Some(l) = &listener {
        if ep
            .add(l.as_raw_fd(), LISTENER_TOKEN, sys::Interest::READ)
            .is_err()
        {
            return event_loop(shared, index, listener);
        }
        listener_armed = true;
    }

    // Owned connections; the epoll token is the slot index.
    let mut slots: Vec<Option<EpollConn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut live = 0usize;
    // Slots needing periodic timer sweeps (job in flight, buffered
    // output, or closing): `reply_timeout` and `write_stall` fire at
    // poll-interval granularity, exactly like the sweep engine.
    let mut watched: HashSet<usize> = HashSet::new();
    // Slots with complete frames buffered in the reader while the
    // socket itself is drained: readiness will never fire for those
    // bytes, so the next wait must not block.
    let mut hot: Vec<usize> = Vec::new();
    let mut due: Vec<usize> = Vec::new();
    let mut events: Vec<sys::Event> = Vec::new();
    let mut accepts = AcceptState::default();
    let mut last_timer = Instant::now();
    let mut replies = Vec::new();

    loop {
        let draining = shared.shutdown.load(Ordering::SeqCst);
        if draining {
            if let Some(l) = listener.take() {
                // Dropping the listener refuses new connections now.
                let _ = ep.delete(l.as_raw_fd());
                listener_armed = false;
            }
        }

        // How long may the wait block? Buffered frames demand an
        // immediate pass; anything time-driven — timer sweeps, accept
        // backoff, drain — caps it at the poll interval; a fully idle
        // poller blocks until the kernel or a worker wakes it.
        let timeout = if !hot.is_empty() {
            Some(Duration::ZERO)
        } else if draining {
            Some(Duration::from_millis(1).min(shared.tuning.poll_interval))
        } else if !watched.is_empty() || accepts.backoff_until.is_some() {
            Some(shared.tuning.poll_interval)
        } else {
            None
        };
        if ep.wait(&mut events, timeout).is_err() {
            // A broken wait must not busy-loop; pace by the interval
            // and keep sweeping via the timer path below.
            events.clear();
            thread::sleep(shared.tuning.poll_interval);
        }

        due.clear();
        let mut accept_ready = false;
        let mut waker_fired = false;
        for ev in &events {
            match ev.token {
                LISTENER_TOKEN => accept_ready = true,
                WAKER_TOKEN => waker_fired = true,
                t => due.push(t as usize),
            }
        }
        if waker_fired {
            waker.drain();
            // A worker finished (or a write died): the affected
            // connections are exactly the watched ones.
            due.extend(watched.iter().copied());
        }

        // Adopt connections handed over by the accepting poller.
        let adopted = std::mem::take(&mut *shared.inboxes[index].lock());
        for conn in adopted {
            if let Some(slot) = epoll_insert(&ep, &mut slots, &mut free, shared, conn) {
                live += 1;
                due.push(slot);
            }
        }

        // Accept: level-triggered, so gating on readiness loses
        // nothing; backoff expiry must retry even though the listener
        // is deregistered while it lasts.
        if let Some(l) = &listener {
            if accept_ready || accepts.backoff_until.is_some() {
                drain_accepts(shared, l, &mut accepts, |target, conn| {
                    if target == index {
                        if let Some(slot) = epoll_insert(&ep, &mut slots, &mut free, shared, conn) {
                            live += 1;
                            due.push(slot);
                        }
                    } else {
                        shared.inboxes[target].lock().push(conn);
                        if let Some(w) = shared.wakers.get(target) {
                            w.signal();
                        }
                    }
                });
                // Keep the registration in step with backoff: a waiting
                // backlog would otherwise wake the poller continuously
                // during a backoff it cannot act on.
                let want = accepts.backoff_until.is_none();
                if want != listener_armed {
                    let done = if want {
                        ep.add(l.as_raw_fd(), LISTENER_TOKEN, sys::Interest::READ)
                    } else {
                        ep.delete(l.as_raw_fd())
                    };
                    if done.is_ok() {
                        listener_armed = want;
                    }
                }
            }
        }

        // Merge time-driven work: reader-buffered slots always, watched
        // slots at poll-interval cadence, everything during a drain.
        due.append(&mut hot);
        if !watched.is_empty() && last_timer.elapsed() >= shared.tuning.poll_interval {
            due.extend(watched.iter().copied());
            last_timer = Instant::now();
        }
        if draining {
            due.clear();
            due.extend(
                slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.as_ref().map(|_| i)),
            );
        }

        for &slot in &due {
            // A slot may appear twice (event + timer) or have been
            // dropped earlier in this pass; servicing is idempotent
            // and empty slots are skipped.
            let keep = {
                let Some(ec) = slots.get_mut(slot).and_then(Option::as_mut) else {
                    continue;
                };
                let mut progress = false;
                sweep_conn(shared, &mut ec.conn, draining, &mut progress, &mut replies)
            };
            if !keep {
                if let Some(ec) = slots[slot].take() {
                    let _ = ep.delete(conn_fd(&ec.conn));
                    live -= 1;
                }
                watched.remove(&slot);
                free.push(slot);
                continue;
            }
            let Some(ec) = slots.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            // Re-arm for the connection's new state. Read interest is
            // dropped while a job is in flight — level-triggered
            // readiness would spin for the whole compute — and
            // restored by the worker's wake; write interest mirrors
            // buffered output, so `EPOLLOUT` re-arming flows through
            // the same write-stall accounting as the sweep engine.
            let desired = sys::Interest {
                readable: !draining && !ec.conn.closing && ec.conn.inflight_since.is_none(),
                writable: ec.conn.shared.writer.lock().has_pending(),
            };
            if desired != ec.armed && ep.modify(conn_fd(&ec.conn), slot as u64, desired).is_ok() {
                ec.armed = desired;
            }
            let needs_timer =
                ec.conn.inflight_since.is_some() || ec.conn.closing || desired.writable;
            if needs_timer {
                watched.insert(slot);
            } else {
                watched.remove(&slot);
            }
            if desired.readable && ec.conn.reader.has_buffered() {
                hot.push(slot);
            }
        }

        if draining && live == 0 && shared.inboxes[index].lock().is_empty() {
            return;
        }
    }
}

/// One sweep over one connection. Returns `false` to drop it.
fn sweep_conn(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    draining: bool,
    progress: &mut bool,
    replies: &mut Vec<u8>,
) -> bool {
    replies.clear();
    if conn.shared.dead.load(Ordering::Acquire) {
        return false;
    }
    if let Some((since, answered, id, codec)) = &conn.inflight_since {
        if conn.shared.inflight.load(Ordering::Acquire) {
            if since.elapsed() <= shared.tuning.reply_timeout {
                // Still waiting on the worker; keep earlier buffered
                // output moving in the meantime.
                flush_pending(shared, &conn.shared);
                return !conn.shared.dead.load(Ordering::Acquire);
            }
            // The worker never answered; claim the reply ourselves.
            if answered
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                shared.metrics.record_error(ErrorCode::Internal);
                write_frame(
                    shared,
                    &conn.shared,
                    *codec,
                    &Response::Error {
                        id: *id,
                        code: ErrorCode::Internal,
                        message: "worker did not answer".into(),
                    },
                );
                conn.shared.inflight.store(false, Ordering::Release);
            }
        }
        conn.inflight_since = None;
        *progress = true;
    }
    // Retry output a previous sweep (or a worker) could not finish —
    // the partial-write tail must drain before anything else is read.
    let has_pending = flush_pending(shared, &conn.shared);
    if conn.shared.dead.load(Ordering::Acquire) {
        return false;
    }
    if draining || conn.closing {
        // Read side is done (shutdown drain, EOF, or torn frame): hold
        // the connection open only until buffered replies are out. A
        // peer that will not take them is killed by the write-stall
        // timer, so this cannot wedge the poller.
        return has_pending;
    }
    let mut keep = true;
    for _ in 0..MAX_LINES_PER_SWEEP {
        match conn.reader.poll_line() {
            Ok(Frame::Pending) => break,
            Ok(Frame::Eof) => {
                conn.closing = true;
                break;
            }
            Ok(Frame::Line(line)) => {
                *progress = true;
                let decoded = Request::decode(&line);
                match dispatch_event_line(shared, &conn.shared, WireCodec::Json, decoded, replies) {
                    LineOutcome::Answered => {}
                    LineOutcome::Inflight { answered, id } => {
                        // Stop reading until the reply is out; earlier
                        // inline replies were flushed before the push.
                        conn.inflight_since = Some((Instant::now(), answered, id, WireCodec::Json));
                        break;
                    }
                }
                if conn.shared.dead.load(Ordering::Acquire) {
                    keep = false;
                    break;
                }
            }
            Ok(Frame::Binary(payload)) => {
                *progress = true;
                let decoded = WireCodec::Binary.decode_request(&payload);
                match dispatch_event_line(shared, &conn.shared, WireCodec::Binary, decoded, replies)
                {
                    LineOutcome::Answered => {}
                    LineOutcome::Inflight { answered, id } => {
                        conn.inflight_since =
                            Some((Instant::now(), answered, id, WireCodec::Binary));
                        break;
                    }
                }
                if conn.shared.dead.load(Ordering::Acquire) {
                    keep = false;
                    break;
                }
            }
            Err(FrameError::TooLong) => {
                push_reply(
                    replies,
                    conn.reader.codec(),
                    &protocol_error(shared, "frame exceeds the maximum length"),
                );
            }
            Err(FrameError::NotUtf8) => {
                push_reply(
                    replies,
                    conn.reader.codec(),
                    &protocol_error(shared, "frame is not valid UTF-8"),
                );
            }
            Err(FrameError::Corrupt) => {
                // A corrupt binary length is recoverable: the reader
                // resyncs to the next plausible frame boundary and the
                // connection keeps going.
                shared.metrics.record_torn_frame();
                push_reply(
                    replies,
                    conn.reader.codec(),
                    &protocol_error(shared, "binary frame length is corrupt"),
                );
            }
            Err(FrameError::Torn) => {
                // Peer closed its write half mid-frame; tell it (it may
                // still read) and drain out.
                shared.metrics.record_torn_frame();
                push_reply(
                    replies,
                    conn.reader.codec(),
                    &protocol_error(shared, "frame torn by EOF mid-line"),
                );
                conn.closing = true;
                break;
            }
            Err(FrameError::Io(_)) => {
                shared.metrics.record_conn_reset();
                keep = false;
                break;
            }
        }
    }
    flush_replies(shared, &conn.shared, replies);
    if conn.shared.dead.load(Ordering::Acquire) {
        return false;
    }
    if conn.closing {
        // Keep only while buffered replies remain (or a late worker
        // reply is still owed); they drain on subsequent sweeps.
        return conn.shared.writer.lock().has_pending()
            || conn.shared.inflight.load(Ordering::Acquire);
    }
    keep
}

/// What one dispatched line left behind.
enum LineOutcome {
    /// Answered inline (control frame, fast path, shed, or error).
    Answered,
    /// Queued to a worker; the poller must gate reads until it clears.
    Inflight {
        answered: Arc<AtomicBool>,
        id: Option<u64>,
    },
}

/// Handles one decoded request frame on the poller. Cache hits, control
/// frames and shed responses are answered inline; only cache misses
/// cross the queue to a worker. The reply goes out in `codec` — the
/// codec the request frame arrived in.
fn dispatch_event_line(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    codec: WireCodec,
    decoded: Result<Request, crate::proto::ProtoError>,
    replies: &mut Vec<u8>,
) -> LineOutcome {
    let request = match decoded {
        Ok(r) => r,
        Err(e) => {
            push_reply(replies, codec, &protocol_error(shared, &e.message));
            return LineOutcome::Answered;
        }
    };
    match request {
        Request::Ping => {
            shared.metrics.record_control();
            push_reply(replies, codec, &Response::Pong);
            LineOutcome::Answered
        }
        Request::Stats => {
            shared.metrics.record_control();
            push_reply(replies, codec, &Response::Stats(stats_json(shared)));
            LineOutcome::Answered
        }
        Request::Shutdown => {
            shared.metrics.record_control();
            push_reply(replies, codec, &Response::Pong);
            // The drain must not race the acknowledgement out of the
            // buffer: write it now.
            flush_replies(shared, conn, replies);
            trigger_shutdown(shared);
            LineOutcome::Answered
        }
        Request::Balance(req) => {
            let received = Instant::now();
            let id = req.id;
            if let Some(deadline_ms) = req.deadline_ms {
                if received.elapsed() > Duration::from_millis(deadline_ms) {
                    shared.metrics.record_error(ErrorCode::Timeout);
                    push_reply(
                        replies,
                        codec,
                        &Response::Error {
                            id,
                            code: ErrorCode::Timeout,
                            message: format!("deadline of {deadline_ms} ms expired"),
                        },
                    );
                    return LineOutcome::Answered;
                }
            }
            // Fast path: answer cache hits on the poller — no queue
            // round trip, no worker hand-off, no condvar. The router
            // picks the backend whose cache can hold this key.
            let key = CacheKey::new(req.problem.fingerprint(), req.algorithm, req.n, req.theta);
            let (vnode, backend_index, backend) = shared.backend_for(&key);
            if let Some(hit) = backend.cache.get(&key) {
                let latency = received.elapsed();
                shared.record_load(vnode, backend_index, 0);
                shared.metrics.record_fast_path();
                shared.metrics.record_ok(req.algorithm, true, latency);
                encode_hit(replies, codec, &req, &hit, latency);
                return LineOutcome::Answered;
            }
            // The worker writes its reply directly to the socket, so any
            // buffered inline replies must land first to keep the
            // connection's frames in request order.
            flush_replies(shared, conn, replies);
            let answered = Arc::new(AtomicBool::new(false));
            // Mark in-flight *before* pushing: the worker may finish and
            // clear the flag before try_push even returns.
            conn.inflight.store(true, Ordering::Release);
            let job = Job {
                req,
                received,
                codec,
                conn_id: conn.conn_id,
                backend: backend_index,
                vnode,
                reply: ReplyTo::Socket {
                    conn: Arc::clone(conn),
                    answered: Arc::clone(&answered),
                },
                _slot: shared.inflight_jobs.acquire(),
                _backend_slot: backend.inflight.acquire(),
            };
            match backend.queue.try_push(job) {
                Ok(()) => LineOutcome::Inflight { answered, id },
                Err((_, PushError::Full(cause))) => {
                    conn.inflight.store(false, Ordering::Release);
                    shared.metrics.record_error(ErrorCode::Overloaded);
                    push_reply(
                        replies,
                        codec,
                        &Response::Error {
                            id,
                            code: ErrorCode::Overloaded,
                            message: overload_message(shared, backend, cause),
                        },
                    );
                    LineOutcome::Answered
                }
                Err((_, PushError::Closed)) => {
                    conn.inflight.store(false, Ordering::Release);
                    shared.metrics.record_error(ErrorCode::ShuttingDown);
                    push_reply(
                        replies,
                        codec,
                        &Response::Error {
                            id,
                            code: ErrorCode::ShuttingDown,
                            message: "server is draining".into(),
                        },
                    );
                    LineOutcome::Answered
                }
            }
        }
    }
}

/// Appends the encoded reply for a cache hit in `codec`, reusing (or
/// building on first use) the entry's per-`(codec, want_pieces)` encoded
/// tail: a warm hit is an id/micros splice plus one memcpy — no JSON
/// printing, no float formatting, no re-serialization.
fn encode_hit(
    out: &mut Vec<u8>,
    codec: WireCodec,
    req: &BalanceRequest,
    hit: &CachedResult,
    latency: Duration,
) {
    let micros = latency.as_micros().min(u64::MAX as u128) as u64;
    let tail = hit.enc.get_or_build(codec, req.want_pieces, || {
        let pieces: &[f64] = if req.want_pieces { &hit.pieces } else { &[] };
        match codec {
            WireCodec::Json => {
                let (bytes, split) = json_ok_tail(
                    req.algorithm,
                    req.n,
                    hit.ratio,
                    hit.bound,
                    hit.alpha,
                    pieces,
                );
                ReplyTail { bytes, split }
            }
            WireCodec::Binary => {
                let mut bytes = Vec::new();
                binary_ok_tail(
                    req.algorithm,
                    req.n,
                    hit.ratio,
                    hit.bound,
                    hit.alpha,
                    pieces,
                    &mut bytes,
                );
                let split = bytes.len();
                ReplyTail { bytes, split }
            }
        }
    });
    match codec {
        WireCodec::Json => json_hit_reply(out, req.id, micros, &tail.bytes, tail.split),
        WireCodec::Binary => binary_hit_reply(out, req.id, micros, &tail.bytes),
    }
}

// ---------------------------------------------------------------------------
// Workers (shared by both engines)
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared, backend: usize, index: usize) {
    let queue = &shared.backends[backend].queue;
    while let Some(job) = queue.pop(index) {
        // Fault injection: a scripted stall models a wedged worker.
        if let Some(stall) = shared.tuning.shim.before_execute(job.conn_id) {
            thread::sleep(stall);
        }
        if let ReplyTo::Socket { conn, answered } = &job.reply {
            if conn.dead.load(Ordering::Acquire) {
                // The client died while the job sat in the queue: skip
                // the compute, but settle the gate so accounting stays
                // exact (dropping the job releases its slot token).
                if answered
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    conn.inflight.store(false, Ordering::Release);
                    conn.wake();
                }
                shared.metrics.record_reply_dropped();
                continue;
            }
        }
        let resp = execute(shared, &job);
        match job.reply {
            // A disconnected client is fine — drop the response.
            ReplyTo::Channel(ref tx) => {
                let _ = tx.send(resp);
            }
            ReplyTo::Socket {
                ref conn,
                ref answered,
            } => {
                // Lose the race against a poller-side timeout and the
                // reply (and the in-flight token) is no longer ours.
                if answered
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    write_frame(shared, conn, job.codec, &resp);
                    conn.inflight.store(false, Ordering::Release);
                    // Wake the owning epoll poller: it dropped read
                    // interest while the job was in flight, and a
                    // blocked `epoll_wait` cannot see the atomic flip.
                    conn.wake();
                } else {
                    shared.metrics.record_reply_dropped();
                }
            }
        }
    }
}

fn execute(shared: &Shared, job: &Job) -> Response {
    let req = &job.req;
    if let Some(deadline_ms) = req.deadline_ms {
        if job.received.elapsed() > Duration::from_millis(deadline_ms) {
            shared.metrics.record_error(ErrorCode::Timeout);
            return Response::Error {
                id: req.id,
                code: ErrorCode::Timeout,
                message: format!("deadline of {deadline_ms} ms expired in queue"),
            };
        }
    }

    let backend = &shared.backends[job.backend];
    let key = CacheKey::new(req.problem.fingerprint(), req.algorithm, req.n, req.theta);
    if let Some(hit) = backend.cache.get(&key) {
        let latency = job.received.elapsed();
        shared.record_load(job.vnode, job.backend, 0);
        shared.metrics.record_ok(req.algorithm, true, latency);
        return ok_response(req, &hit, true, latency);
    }

    // Load accounting wants compute time, not queue wait: weighing a
    // vnode by its time-in-queue would double-count the very imbalance
    // the rebalancer is trying to remove.
    let compute_started = Instant::now();
    let problem = req.problem.build();
    let alpha = req
        .problem
        .alpha_hint()
        .or_else(|| problem.analytic_alpha())
        .or_else(|| gb_problems::empirical_alpha(&problem, req.n))
        .unwrap_or(0.25)
        .clamp(MIN_ALPHA, 0.5);
    let partition = match req.algorithm {
        Algorithm::Hf => gb_core::hf::hf(problem, req.n),
        Algorithm::Ba => gb_parlb::par_ba(&shared.pool, problem, req.n),
        Algorithm::BaHf => gb_parlb::par_ba_hf(&shared.pool, problem, req.n, alpha, req.theta),
        Algorithm::Phf => gb_parlb::par_phf(&shared.pool, problem, req.n, alpha),
    };
    let bound = match req.algorithm {
        Algorithm::Hf | Algorithm::Phf => gb_core::hf_upper_bound(alpha, req.n),
        Algorithm::Ba => gb_core::ba_upper_bound(alpha, req.n),
        Algorithm::BaHf => gb_core::bahf_upper_bound(alpha, req.theta, req.n),
    };
    let result = CachedResult::new(partition.sorted_weights(), partition.ratio(), bound, alpha);
    backend.cache.put(key, result.clone());
    if let Some(spill) = &backend.spill {
        // Write-behind: O(1) enqueue; a full queue drops the record
        // (counted) rather than stalling the worker.
        spill.spill(persist::encode_key(&key), persist::encode_value(&result));
    }
    let compute_micros = compute_started.elapsed().as_micros().min(u64::MAX as u128) as u64;
    shared.record_load(job.vnode, job.backend, compute_micros);
    let latency = job.received.elapsed();
    shared.metrics.record_ok(req.algorithm, false, latency);
    ok_response(req, &result, false, latency)
}

fn ok_response(
    req: &BalanceRequest,
    result: &CachedResult,
    cached: bool,
    latency: Duration,
) -> Response {
    Response::Ok(BalanceResponse {
        id: req.id,
        algorithm: req.algorithm,
        n: req.n,
        ratio: result.ratio,
        bound: result.bound,
        alpha: result.alpha,
        cached,
        micros: latency.as_micros().min(u64::MAX as u128) as u64,
        pieces: if req.want_pieces {
            result.pieces.clone()
        } else {
            Vec::new()
        },
    })
}

fn stats_json(shared: &Shared) -> Json {
    let mut json = shared.metrics.to_json();
    if let Json::Obj(entries) = &mut json {
        entries.push((
            "engine".into(),
            Json::Str(shared.tuning.engine.name().into()),
        ));
        // Cache rollup: the per-backend caches summed, so the section
        // reads exactly as it did with one backend.
        let per_cache: Vec<_> = shared.backends.iter().map(|b| b.cache.stats()).collect();
        let sum = |f: fn(&crate::cache::CacheStats) -> u64| per_cache.iter().map(f).sum::<u64>();
        let (hits, misses) = (sum(|c| c.hits), sum(|c| c.misses));
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        entries.push((
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Int(hits as i64)),
                ("misses".into(), Json::Int(misses as i64)),
                ("evictions".into(), Json::Int(sum(|c| c.evictions) as i64)),
                (
                    "admission_rejects".into(),
                    Json::Int(sum(|c| c.admission_rejects) as i64),
                ),
                (
                    "len".into(),
                    Json::Int(per_cache.iter().map(|c| c.len).sum::<usize>() as i64),
                ),
                (
                    "capacity".into(),
                    Json::Int(per_cache.iter().map(|c| c.capacity).sum::<usize>() as i64),
                ),
                ("hit_rate".into(), Json::Num(hit_rate)),
                (
                    "shards".into(),
                    Json::Int(shared.backends[0].cache.shard_count() as i64),
                ),
                (
                    "admission".into(),
                    Json::Bool(shared.backends[0].cache.admission_enabled()),
                ),
            ]),
        ));
        // Queue rollup: the aggregate budget is the server-wide shed
        // point, identical in meaning to the pre-sharding section.
        entries.push((
            "queue".into(),
            Json::Obj(vec![
                ("depth".into(), Json::Int(shared.queue_cap.depth() as i64)),
                (
                    "capacity".into(),
                    Json::Int(shared.queue_cap.capacity() as i64),
                ),
                (
                    "shards".into(),
                    Json::Int(
                        shared
                            .backends
                            .iter()
                            .map(|b| b.queue.shards())
                            .sum::<usize>() as i64,
                    ),
                ),
                (
                    "steals".into(),
                    Json::Int(
                        shared
                            .backends
                            .iter()
                            .map(|b| b.queue.steals())
                            .sum::<u64>() as i64,
                    ),
                ),
            ]),
        ));
        entries.push(("backends".into(), backends_json(shared, &per_cache)));
        entries.push(("rebal".into(), rebal_json(shared)));
        entries.push((
            "connections".into(),
            Json::Obj(vec![
                (
                    "open".into(),
                    Json::Int(shared.open_conns.occupied() as i64),
                ),
                (
                    "inflight".into(),
                    Json::Int(shared.inflight_jobs.occupied() as i64),
                ),
            ]),
        ));
        entries.push((
            "pool".into(),
            Json::Obj(vec![
                ("workers".into(), Json::Int(shared.pool.workers() as i64)),
                (
                    "injector_depth".into(),
                    Json::Int(shared.pool.injector_depth() as i64),
                ),
                ("queued".into(), Json::Int(shared.pool.queued() as i64)),
            ]),
        ));
        if let Some(spill) = &shared.spill {
            let mut store = store_json(&spill.stats());
            if let Json::Obj(fields) = &mut store {
                let sync = shared
                    .tuning
                    .store
                    .as_ref()
                    .map_or("none", |s| s.sync.name());
                fields.push(("sync".into(), Json::Str(sync.into())));
            }
            entries.push(("store".into(), store));
        }
    }
    json
}

/// The self-balancing rollup: tick counters, the latest imbalance pair,
/// and the observed-α Theorem 2 bound the plan was held to. `enabled`
/// reflects whether a tick thread is actually running.
fn rebal_json(shared: &Shared) -> Json {
    let snap = shared.rebal.snapshot();
    let settings = shared.tuning.rebalance.as_ref();
    let enabled = settings.is_some() && shared.backends.len() > 1;
    Json::Obj(vec![
        ("enabled".into(), Json::Bool(enabled)),
        (
            "vnode_count".into(),
            Json::Int(shared.vnode_load.len() as i64),
        ),
        (
            "interval_ms".into(),
            Json::Int(settings.map_or(0, |s| s.interval.as_millis().min(i64::MAX as u128) as i64)),
        ),
        (
            "trigger".into(),
            Json::Num(settings.map_or(0.0, |s| s.trigger)),
        ),
        (
            "move_budget".into(),
            Json::Int(settings.map_or(0, |s| s.move_budget.min(i64::MAX as usize) as i64)),
        ),
        ("ticks".into(), Json::Int(snap.ticks as i64)),
        ("skipped".into(), Json::Int(snap.skipped as i64)),
        ("moved".into(), Json::Int(snap.moved as i64)),
        (
            "max_tick_moves".into(),
            Json::Int(snap.max_tick_moves as i64),
        ),
        ("version".into(), Json::Int(snap.version as i64)),
        ("imbalance_before".into(), Json::Num(snap.imbalance_before)),
        ("imbalance_after".into(), Json::Num(snap.imbalance_after)),
        ("alpha".into(), Json::Num(snap.alpha)),
        ("bound".into(), Json::Num(snap.bound)),
    ])
}

/// The shard-aware rollup: per-backend gauges plus a `max/mean` load
/// imbalance ratio over `queue_depth + inflight` — the min-max metric a
/// balanced decomposition is judged by.
fn backends_json(shared: &Shared, per_cache: &[crate::cache::CacheStats]) -> Json {
    let loads: Vec<u64> = shared
        .backends
        .iter()
        .map(|b| (b.queue.depth() + b.inflight.occupied()) as u64)
        .collect();
    let max_load = loads.iter().copied().max().unwrap_or(0);
    let mean_load = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    let ratio = if mean_load == 0.0 {
        1.0
    } else {
        max_load as f64 / mean_load
    };
    let per_backend: Vec<Json> = shared
        .backends
        .iter()
        .zip(per_cache)
        .map(|(b, cache)| {
            Json::Obj(vec![
                ("queue_depth".into(), Json::Int(b.queue.depth() as i64)),
                (
                    "queue_capacity".into(),
                    Json::Int(b.queue.capacity() as i64),
                ),
                ("inflight".into(), Json::Int(b.inflight.occupied() as i64)),
                ("workers".into(), Json::Int(b.workers as i64)),
                ("steals".into(), Json::Int(b.queue.steals() as i64)),
                ("cache_hits".into(), Json::Int(cache.hits as i64)),
                ("cache_misses".into(), Json::Int(cache.misses as i64)),
                ("cache_len".into(), Json::Int(cache.len as i64)),
                ("hit_rate".into(), Json::Num(cache.hit_rate())),
                (
                    "load_hits".into(),
                    Json::Int(b.load_hits.load(Ordering::Relaxed) as i64),
                ),
                (
                    "load_micros".into(),
                    Json::Int(b.load_micros.load(Ordering::Relaxed) as i64),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("count".into(), Json::Int(shared.backends.len() as i64)),
        ("vnodes".into(), Json::Int(shared.router.vnodes() as i64)),
        (
            "imbalance".into(),
            Json::Obj(vec![
                ("max".into(), Json::Int(max_load as i64)),
                ("mean".into(), Json::Num(mean_load)),
                ("ratio".into(), Json::Num(ratio)),
            ]),
        ),
        ("per_backend".into(), Json::Arr(per_backend)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::spec::ProblemSpec;

    fn test_server() -> Server {
        Server::start(ServerConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 64,
            pool_threads: 2,
            ..ServerConfig::default()
        })
        .expect("bind ephemeral port")
    }

    fn synth(seed: u64) -> ProblemSpec {
        ProblemSpec::Synthetic {
            weight: 1.0,
            lo: 0.25,
            hi: 0.5,
            seed,
        }
    }

    fn balance(seed: u64, algorithm: Algorithm) -> Request {
        Request::Balance(BalanceRequest {
            id: Some(seed),
            algorithm,
            n: 16,
            theta: 1.0,
            deadline_ms: None,
            want_pieces: true,
            problem: synth(seed),
        })
    }

    #[test]
    fn ping_and_stats_round_trip() {
        let server = test_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert!(matches!(
            client.call(&Request::Ping).unwrap(),
            Response::Pong
        ));
        match client.call(&Request::Stats).unwrap() {
            Response::Stats(stats) => {
                assert!(stats.get("uptime_ms").is_some());
                assert!(stats.get("cache").is_some());
                assert!(stats.get("queue").is_some());
            }
            other => panic!("expected stats, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn balance_executes_and_caches() {
        let server = test_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let first = match client.call(&balance(7, Algorithm::Ba)).unwrap() {
            Response::Ok(r) => r,
            other => panic!("expected ok, got {other:?}"),
        };
        assert!(!first.cached);
        assert!(first.ratio >= 1.0 && first.ratio <= first.bound);
        assert_eq!(first.pieces.len(), 16);
        let second = match client.call(&balance(7, Algorithm::Ba)).unwrap() {
            Response::Ok(r) => r,
            other => panic!("expected ok, got {other:?}"),
        };
        assert!(second.cached, "identical request must hit the cache");
        assert_eq!(second.pieces, first.pieces);
        server.shutdown();
    }

    #[test]
    fn expired_deadline_times_out() {
        let server = test_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let req = Request::Balance(BalanceRequest {
            id: Some(1),
            algorithm: Algorithm::Hf,
            n: 8,
            theta: 1.0,
            deadline_ms: Some(0),
            want_pieces: false,
            problem: synth(1),
        });
        // deadline 0 ms: by the time it is dispatched, it is late.
        match client.call(&req).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Timeout),
            Response::Ok(_) => {} // a fast dispatch can legitimately win the race
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_bad_request_and_connection_survives() {
        let server = test_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        match client.call_raw("this is not json").unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("unexpected {other:?}"),
        }
        // The same connection still works.
        assert!(matches!(
            client.call(&Request::Ping).unwrap(),
            Response::Pong
        ));
        server.shutdown();
    }

    #[test]
    fn shutdown_frame_stops_the_server() {
        let server = test_server();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        assert!(matches!(
            client.call(&Request::Shutdown).unwrap(),
            Response::Pong
        ));
        server.join();
        // New connections are refused once the listener is gone; allow a
        // beat for the OS to tear the socket down.
        std::thread::sleep(Duration::from_millis(50));
        let refused = Client::connect(addr)
            .and_then(|mut c| c.call(&Request::Ping))
            .is_err();
        assert!(refused, "server still answering after shutdown");
    }

    #[test]
    fn threaded_engine_still_serves() {
        let server = Server::start_tuned(
            ServerConfig {
                workers: 2,
                queue_capacity: 64,
                cache_capacity: 64,
                pool_threads: 2,
                ..ServerConfig::default()
            },
            Tuning {
                engine: Engine::Threaded,
                cache_shards: 1,
                admission: false,
                ..Tuning::default()
            },
        )
        .expect("bind ephemeral port");
        let mut client = Client::connect(server.local_addr()).unwrap();
        let first = match client.call(&balance(3, Algorithm::Hf)).unwrap() {
            Response::Ok(r) => r,
            other => panic!("expected ok, got {other:?}"),
        };
        assert!(!first.cached);
        let second = match client.call(&balance(3, Algorithm::Hf)).unwrap() {
            Response::Ok(r) => r,
            other => panic!("expected ok, got {other:?}"),
        };
        assert!(second.cached);
        match client.call(&Request::Stats).unwrap() {
            Response::Stats(stats) => {
                assert_eq!(
                    stats.get("engine").and_then(|e| e.as_str()),
                    Some("threaded")
                );
            }
            other => panic!("expected stats, got {other:?}"),
        }
        server.shutdown();
    }

    /// The sharded configuration must serve correctly (routing is
    /// deterministic, so repeats hit the same backend's cache) and the
    /// stats rollup must expose the per-backend gauges.
    #[test]
    fn sharded_backends_serve_and_report_rollup() {
        let server = Server::start_tuned(
            ServerConfig {
                workers: 2,
                queue_capacity: 64,
                cache_capacity: 64,
                pool_threads: 2,
                ..ServerConfig::default()
            },
            Tuning {
                backends: 4,
                backend_vnodes: 32,
                ..Tuning::default()
            },
        )
        .expect("bind ephemeral port");
        let mut client = Client::connect(server.local_addr()).unwrap();
        for seed in 0..8 {
            match client.call(&balance(seed, Algorithm::Hf)).unwrap() {
                Response::Ok(r) => assert!(!r.cached),
                other => panic!("expected ok, got {other:?}"),
            }
        }
        for seed in 0..8 {
            match client.call(&balance(seed, Algorithm::Hf)).unwrap() {
                Response::Ok(r) => assert!(r.cached, "seed {seed} must re-home to a warm backend"),
                other => panic!("expected ok, got {other:?}"),
            }
        }
        match client.call(&Request::Stats).unwrap() {
            Response::Stats(stats) => {
                let backends = stats.get("backends").expect("backends section");
                assert_eq!(
                    backends.get("count").and_then(|v| v.as_u64()),
                    Some(4),
                    "rollup must report the backend count"
                );
                assert_eq!(backends.get("vnodes").and_then(|v| v.as_u64()), Some(32));
                let imbalance = backends.get("imbalance").expect("imbalance gauge");
                assert!(imbalance.get("max").is_some());
                assert!(imbalance.get("mean").is_some());
                assert!(imbalance.get("ratio").is_some());
                match backends.get("per_backend") {
                    Some(Json::Arr(list)) => {
                        assert_eq!(list.len(), 4);
                        let hits: u64 = list
                            .iter()
                            .map(|b| b.get("cache_hits").and_then(|v| v.as_u64()).unwrap())
                            .sum();
                        assert!(hits >= 8, "repeat passes must hit backend caches");
                    }
                    other => panic!("expected per_backend array, got {other:?}"),
                }
                // The aggregate queue contract is unchanged by sharding.
                let capacity = stats
                    .get("queue")
                    .and_then(|q| q.get("capacity"))
                    .and_then(|v| v.as_u64());
                assert_eq!(capacity, Some(64));
            }
            other => panic!("expected stats, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn event_engine_reports_fast_path_hits() {
        let server = test_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        for _ in 0..3 {
            match client.call(&balance(11, Algorithm::Hf)).unwrap() {
                Response::Ok(_) => {}
                other => panic!("expected ok, got {other:?}"),
            }
        }
        match client.call(&Request::Stats).unwrap() {
            Response::Stats(stats) => {
                assert_eq!(stats.get("engine").and_then(|e| e.as_str()), Some("event"));
                let fast = stats
                    .get("requests")
                    .and_then(|r| r.get("fast_path"))
                    .and_then(|v| v.as_u64())
                    .expect("requests.fast_path present");
                assert!(fast >= 2, "repeat hits must use the inline fast path");
            }
            other => panic!("expected stats, got {other:?}"),
        }
        server.shutdown();
    }
}
