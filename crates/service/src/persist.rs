//! Codec between the typed cache entries and the byte records `gb-store`
//! persists, plus the [`StoreSettings`] knob bundle.
//!
//! The store is byte-oriented on purpose: this module owns the mapping,
//! so the wire cache types and the on-disk layout can evolve
//! independently. Both encodings are fixed-layout little-endian:
//!
//! ```text
//! key   (25 bytes) = problem u64 | algorithm u8 | n u64 | theta_bits u64
//! value            = ratio f64 | bound f64 | alpha f64
//!                    | piece_count u32 | pieces f64*
//! ```
//!
//! `CacheKey::problem` is a [`gb_core::fingerprint`] FNV-1a digest —
//! process-stable by construction — so a persisted key still names the
//! same problem after a restart. Decoding is total: any length or
//! algorithm-tag mismatch yields `None` (counted by the caller as
//! corruption), never a panic or a wrong entry.

use std::path::PathBuf;

use crate::cache::{CacheKey, CachedResult};
use crate::proto::Algorithm;

/// Encoded [`CacheKey`] length.
const KEY_LEN: usize = 25;

/// Fixed prefix of an encoded [`CachedResult`] before the pieces.
const VALUE_FIXED: usize = 8 + 8 + 8 + 4;

/// Persistence knobs carried in [`Tuning`](crate::server::Tuning);
/// `None` disables the store entirely.
#[derive(Debug, Clone)]
pub struct StoreSettings {
    /// Directory for the segment files.
    pub dir: PathBuf,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Disk budget in bytes (0 = unbounded).
    pub budget_bytes: u64,
    /// Spill queue depth (records awaiting the writer thread).
    pub queue_capacity: usize,
    /// Durability mode: when to fsync the log (`none` trusts the OS).
    pub sync: gb_store::SyncMode,
}

impl StoreSettings {
    /// Default sizing for a store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        let defaults = gb_store::StoreConfig::new("");
        Self {
            dir: dir.into(),
            segment_bytes: defaults.segment_bytes,
            budget_bytes: defaults.budget_bytes,
            queue_capacity: 1024,
            sync: gb_store::SyncMode::None,
        }
    }

    /// The store-level config for these settings.
    pub fn to_config(&self) -> gb_store::StoreConfig {
        gb_store::StoreConfig {
            dir: self.dir.clone(),
            segment_bytes: self.segment_bytes,
            budget_bytes: self.budget_bytes,
            sync: self.sync,
        }
    }
}

/// Encodes a cache key as a store record key.
pub fn encode_key(key: &CacheKey) -> Vec<u8> {
    let mut out = Vec::with_capacity(KEY_LEN);
    out.extend_from_slice(&key.problem.to_le_bytes());
    out.push(key.algorithm.index() as u8);
    out.extend_from_slice(&(key.n as u64).to_le_bytes());
    out.extend_from_slice(&key.theta_bits.to_le_bytes());
    out
}

/// Decodes a store record key; `None` on any layout mismatch.
pub fn decode_key(bytes: &[u8]) -> Option<CacheKey> {
    if bytes.len() != KEY_LEN {
        return None;
    }
    let problem = u64::from_le_bytes(bytes[..8].try_into().ok()?);
    let algorithm = *Algorithm::ALL.get(bytes[8] as usize)?;
    let n = usize::try_from(u64::from_le_bytes(bytes[9..17].try_into().ok()?)).ok()?;
    let theta_bits = u64::from_le_bytes(bytes[17..25].try_into().ok()?);
    Some(CacheKey {
        problem,
        algorithm,
        n,
        theta_bits,
    })
}

/// Encodes a cached result as a store record value.
pub fn encode_value(value: &CachedResult) -> Vec<u8> {
    let mut out = Vec::with_capacity(VALUE_FIXED + 8 * value.pieces.len());
    out.extend_from_slice(&value.ratio.to_bits().to_le_bytes());
    out.extend_from_slice(&value.bound.to_bits().to_le_bytes());
    out.extend_from_slice(&value.alpha.to_bits().to_le_bytes());
    out.extend_from_slice(&(value.pieces.len() as u32).to_le_bytes());
    for &piece in &value.pieces {
        out.extend_from_slice(&piece.to_bits().to_le_bytes());
    }
    out
}

/// Decodes a store record value; `None` on any layout mismatch.
pub fn decode_value(bytes: &[u8]) -> Option<CachedResult> {
    if bytes.len() < VALUE_FIXED {
        return None;
    }
    let f64_at = |at: usize| -> Option<f64> {
        Some(f64::from_bits(u64::from_le_bytes(
            bytes[at..at + 8].try_into().ok()?,
        )))
    };
    let ratio = f64_at(0)?;
    let bound = f64_at(8)?;
    let alpha = f64_at(16)?;
    let count = u32::from_le_bytes(bytes[24..28].try_into().ok()?) as usize;
    if bytes.len() != VALUE_FIXED + 8 * count {
        return None;
    }
    let mut pieces = Vec::with_capacity(count);
    for i in 0..count {
        pieces.push(f64_at(VALUE_FIXED + 8 * i)?);
    }
    Some(CachedResult::new(pieces, ratio, bound, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_key() -> CacheKey {
        CacheKey::new(0xDEAD_BEEF_CAFE_F00D, Algorithm::BaHf, 12, 1.5)
    }

    fn sample_value() -> CachedResult {
        CachedResult::new(vec![1.0, 2.5, 0.125, 3.75], 1.4, 2.0, 0.25)
    }

    #[test]
    fn key_round_trips_for_every_algorithm() {
        for algorithm in Algorithm::ALL {
            let key = CacheKey::new(42, algorithm, 7, 2.0);
            let decoded = decode_key(&encode_key(&key)).expect("decode");
            assert_eq!(decoded, key);
        }
    }

    #[test]
    fn value_round_trips() {
        let value = sample_value();
        let decoded = decode_value(&encode_value(&value)).expect("decode");
        assert_eq!(decoded.pieces, value.pieces);
        assert_eq!(decoded.ratio, value.ratio);
        assert_eq!(decoded.bound, value.bound);
        assert_eq!(decoded.alpha, value.alpha);
    }

    #[test]
    fn empty_pieces_round_trip() {
        let value = CachedResult::new(vec![], 1.0, 1.0, 0.5);
        let decoded = decode_value(&encode_value(&value)).expect("decode");
        assert!(decoded.pieces.is_empty());
    }

    #[test]
    fn malformed_bytes_decode_to_none_never_panic() {
        assert_eq!(decode_key(b"short"), None);
        assert_eq!(decode_key(&[0u8; 26]), None);
        let mut bad_algo = encode_key(&sample_key());
        bad_algo[8] = 200;
        assert_eq!(decode_key(&bad_algo), None);

        assert!(decode_value(b"short").is_none());
        let mut bad_count = encode_value(&sample_value());
        bad_count[24] = 0xFF; // claims far more pieces than present
        assert!(decode_value(&bad_count).is_none());
        let truncated = encode_value(&sample_value());
        assert!(decode_value(&truncated[..truncated.len() - 3]).is_none());
    }

    #[test]
    fn store_settings_defaults_match_store_config() {
        let settings = StoreSettings::new("/tmp/x");
        let config = settings.to_config();
        assert_eq!(config.segment_bytes, 4 * 1024 * 1024);
        assert_eq!(config.budget_bytes, 256 * 1024 * 1024);
        assert_eq!(settings.queue_capacity, 1024);
    }
}
