//! Result caching: an O(1) LRU with optional TinyLFU admission, and a
//! sharded front that removes the single-lock choke point.
//!
//! Because every [`ProblemSpec`](crate::spec::ProblemSpec) is
//! deterministic and the algorithms are pure functions of the problem,
//! a cache entry is not merely "a plausible answer" — it is byte-for-byte
//! the partition the server would recompute. The cache therefore returns
//! full responses, only the latency and `cached` flag differ.
//!
//! Three layers:
//!
//! * [`LruCache`] — `HashMap` into a slab of intrusively doubly-linked
//!   nodes: `O(1)` per touch (the previous implementation kept a
//!   `BTreeMap` recency index, `O(log n)` per touch). Iteration order is
//!   the recency list itself, which is fully deterministic; each node
//!   additionally carries a monotone insertion sequence number so tests
//!   can assert order with an explicit insertion-order tiebreak.
//! * [`TinyLfu`] — an admission filter in the TinyLFU style: a 4-bit
//!   count–min sketch (4 probes, periodic halving) fronted by a
//!   doorkeeper bloom filter that absorbs one-hit wonders. On insertion
//!   into a full cache the candidate is admitted only if its estimated
//!   frequency *exceeds* the eviction victim's — ties lose, which is
//!   what makes a one-pass scan unable to flush the hot set.
//! * [`ShardedCache`] — power-of-two shards selected by problem
//!   fingerprint bits, one `Mutex<LruCache>` per shard, so concurrent
//!   lookups for different problems never serialise on one lock.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::proto::{Algorithm, WireCodec};

/// Sentinel for "no node" in the intrusive list.
const NIL: usize = usize::MAX;

/// Cache key: what uniquely determines a balance result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `ProblemSpec::fingerprint()` of the request's problem.
    pub problem: u64,
    /// Algorithm that ran.
    pub algorithm: Algorithm,
    /// Processor count.
    pub n: usize,
    /// θ bit pattern (only meaningful for BA-HF; fixed for the others).
    pub theta_bits: u64,
}

impl CacheKey {
    /// Builds a key, normalising θ for algorithms that ignore it so
    /// `hf, θ=1` and `hf, θ=2` share an entry.
    pub fn new(problem: u64, algorithm: Algorithm, n: usize, theta: f64) -> Self {
        let theta_bits = match algorithm {
            Algorithm::BaHf => theta.to_bits(),
            _ => 0,
        };
        Self {
            problem,
            algorithm,
            n,
            theta_bits,
        }
    }

    /// A well-mixed 64-bit hash of the key, used both for sketch probes
    /// and shard selection (the problem fingerprint dominates the input,
    /// so one problem's variants spread by algorithm/N/θ).
    pub fn mix(&self) -> u64 {
        let mut x = self.problem;
        x ^= (self.algorithm.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= (self.n as u64).rotate_left(17);
        x ^= self.theta_bits.rotate_left(43);
        splitmix64(x)
    }
}

/// SplitMix64 finaliser: cheap, well-distributed, dependency-free.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A cached balance result (piece weights plus derived figures).
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Piece weights of the partition.
    pub pieces: Vec<f64>,
    /// Achieved ratio.
    pub ratio: f64,
    /// Analytic bound reported with the result.
    pub bound: f64,
    /// α used for the bound.
    pub alpha: f64,
    /// Lazily built encoded reply tails, shared by every clone of this
    /// entry (the cache hands out clones; `Arc` keeps one tail set per
    /// cached entry so the first hit pays the encode and the rest
    /// memcpy).
    pub enc: Arc<EncodedTails>,
}

impl CachedResult {
    /// Builds a result with an empty encoded-tail set.
    pub fn new(pieces: Vec<f64>, ratio: f64, bound: f64, alpha: f64) -> Self {
        Self {
            pieces,
            ratio,
            bound,
            alpha,
            enc: Arc::new(EncodedTails::default()),
        }
    }
}

/// The invariant byte tail of an encoded cache-hit reply: everything
/// except the per-request id and measured micros, which the hit path
/// splices in (see `json_hit_reply`/`binary_hit_reply` in `proto`).
#[derive(Debug)]
pub struct ReplyTail {
    /// Pre-encoded bytes.
    pub bytes: Vec<u8>,
    /// Offset where the micros digits are spliced (JSON); equals
    /// `bytes.len()` when nothing is spliced mid-tail (binary).
    pub split: usize,
}

/// Per-`(codec, want_pieces)` slots of lazily built [`ReplyTail`]s.
///
/// Four slots cover the full reply space: the codec picks the byte
/// format, `want_pieces` picks whether the pieces array rides along.
/// `OnceLock` makes the build race-free without a lock on the hit path.
#[derive(Debug, Default)]
pub struct EncodedTails {
    slots: [OnceLock<ReplyTail>; 4],
}

impl EncodedTails {
    fn slot(codec: WireCodec, want_pieces: bool) -> usize {
        codec.index() * 2 + want_pieces as usize
    }

    /// Returns the tail for `(codec, want_pieces)`, building it on first
    /// use.
    pub fn get_or_build(
        &self,
        codec: WireCodec,
        want_pieces: bool,
        build: impl FnOnce() -> ReplyTail,
    ) -> &ReplyTail {
        self.slots[Self::slot(codec, want_pieces)].get_or_init(build)
    }
}

/// Counter snapshot for the stats endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Lookup hits since start.
    pub hits: u64,
    /// Lookup misses since start.
    pub misses: u64,
    /// Entries evicted to respect capacity.
    pub evictions: u64,
    /// Insertions refused by the TinyLFU admission filter.
    pub admission_rejects: u64,
    /// Current entry count.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (`0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.admission_rejects += other.admission_rejects;
        self.len += other.len;
    }
}

// ---------------------------------------------------------------------------
// TinyLFU admission filter
// ---------------------------------------------------------------------------

/// TinyLFU-style admission filter: doorkeeper bloom + 4-bit count–min
/// sketch with periodic halving.
///
/// The first sighting of a key only sets doorkeeper bits; repeat
/// sightings increment four 4-bit counters selected by independent
/// probes. The frequency estimate is `min(counters) + doorkeeper_bit`,
/// capped at 16. After a sample window of recordings every counter is
/// halved and the doorkeeper cleared, so the sketch tracks *recent*
/// popularity rather than all of history.
#[derive(Debug)]
pub struct TinyLfu {
    /// 4-bit counters, two per byte. Length is a power of two.
    sketch: Vec<u8>,
    /// `counter_count - 1` (power-of-two mask).
    counter_mask: u64,
    /// Doorkeeper bloom bits, packed into words.
    door: Vec<u64>,
    /// `door_bit_count - 1` (power-of-two mask).
    door_mask: u64,
    /// Recordings since the last halving.
    samples: u64,
    /// Halve when `samples` reaches this.
    window: u64,
}

impl TinyLfu {
    /// Sizes the filter for a cache of `capacity` entries. The sketch is
    /// generously sized (≥ 8192 counters) so the sample window — 16×
    /// the counter count — comfortably outlasts a scan orders of
    /// magnitude larger than the cache without decaying the hot set's
    /// counts, and the doorkeeper (8 bits per counter) stays sparse
    /// through such a scan: a saturated doorkeeper would route every
    /// one-hit wonder into the sketch and inflate cold estimates until
    /// they beat the hot set.
    pub fn new(capacity: usize) -> Self {
        let counters = (capacity.max(1) * 16).next_power_of_two().max(8192);
        let door_bits = (counters * 8).next_power_of_two();
        Self {
            sketch: vec![0u8; counters / 2],
            counter_mask: counters as u64 - 1,
            door: vec![0u64; door_bits / 64],
            door_mask: door_bits as u64 - 1,
            samples: 0,
            window: 16 * counters as u64,
        }
    }

    fn probes(hash: u64) -> [u64; 4] {
        // Double hashing: h1 + i·h2 with h2 forced odd.
        let h1 = hash;
        let h2 = splitmix64(hash) | 1;
        [
            h1,
            h1.wrapping_add(h2),
            h1.wrapping_add(h2.wrapping_mul(2)),
            h1.wrapping_add(h2.wrapping_mul(3)),
        ]
    }

    fn door_bits(hash: u64) -> [u64; 2] {
        [hash, hash.rotate_left(21) ^ 0xA5A5_A5A5_A5A5_A5A5]
    }

    fn door_contains(&self, hash: u64) -> bool {
        Self::door_bits(hash).iter().all(|&b| {
            let bit = b & self.door_mask;
            self.door[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    fn door_set(&mut self, hash: u64) {
        for b in Self::door_bits(hash) {
            let bit = b & self.door_mask;
            self.door[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    fn counter(&self, slot: u64) -> u8 {
        let byte = self.sketch[(slot / 2) as usize];
        if slot % 2 == 0 {
            byte & 0x0F
        } else {
            byte >> 4
        }
    }

    fn bump(&mut self, slot: u64) {
        let i = (slot / 2) as usize;
        if slot % 2 == 0 {
            if self.sketch[i] & 0x0F < 0x0F {
                self.sketch[i] += 1;
            }
        } else if self.sketch[i] >> 4 < 0x0F {
            self.sketch[i] += 0x10;
        }
    }

    /// Records one access to the key with the given hash.
    pub fn record(&mut self, hash: u64) {
        if self.door_contains(hash) {
            for p in Self::probes(hash) {
                self.bump(p & self.counter_mask);
            }
        } else {
            self.door_set(hash);
        }
        self.samples += 1;
        if self.samples >= self.window {
            self.halve();
        }
    }

    /// Estimated access frequency of the key (saturates at 16).
    pub fn estimate(&self, hash: u64) -> u32 {
        let sketch_min = Self::probes(hash)
            .iter()
            .map(|&p| self.counter(p & self.counter_mask) as u32)
            .min()
            .unwrap_or(0);
        sketch_min + u32::from(self.door_contains(hash))
    }

    /// Ages the sketch: halve every counter, clear the doorkeeper.
    fn halve(&mut self) {
        for byte in &mut self.sketch {
            // Halve both nibbles in place.
            *byte = (*byte >> 1) & 0x77;
        }
        self.door.fill(0);
        self.samples /= 2;
    }

    /// Recordings since the last halving (diagnostics/tests).
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

// ---------------------------------------------------------------------------
// Slab-backed O(1) LRU
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Node {
    key: CacheKey,
    value: CachedResult,
    prev: usize,
    next: usize,
    /// Monotone insertion sequence — a deterministic tiebreak exposed to
    /// tests (the recency list itself is already a total order).
    seq: u64,
}

/// Bounded LRU cache with optional TinyLFU admission and
/// hit/miss/eviction accounting. All operations are `O(1)`.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<CacheKey, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    /// Most recently used node.
    head: usize,
    /// Least recently used node (eviction victim).
    tail: usize,
    seq: u64,
    admission: Option<TinyLfu>,
    hits: u64,
    misses: u64,
    evictions: u64,
    admission_rejects: u64,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` results, admitting
    /// every insertion (plain LRU). A capacity of `0` disables caching
    /// (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            seq: 0,
            admission: None,
            hits: 0,
            misses: 0,
            evictions: 0,
            admission_rejects: 0,
        }
    }

    /// Creates a cache with a TinyLFU admission filter sized for
    /// `capacity`.
    pub fn with_admission(capacity: usize) -> Self {
        let mut cache = Self::new(capacity);
        if capacity > 0 {
            cache.admission = Some(TinyLfu::new(capacity));
        }
        cache
    }

    /// Whether an admission filter is active.
    pub fn admission_enabled(&self) -> bool {
        self.admission.is_some()
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up a key, refreshing its recency on a hit and recording the
    /// access in the admission sketch.
    pub fn get(&mut self, key: &CacheKey) -> Option<CachedResult> {
        if let Some(lfu) = &mut self.admission {
            lfu.record(key.mix());
        }
        match self.map.get(key).copied() {
            Some(idx) => {
                self.unlink(idx);
                self.push_front(idx);
                self.hits += 1;
                Some(self.slab[idx].value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Checks membership without touching recency, stats, or the
    /// admission sketch.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.map.contains_key(key)
    }

    /// Warm-loads a recovered entry: records one sighting in the
    /// admission sketch (so replayed entries arrive with non-zero
    /// frequency rather than as strangers the filter would reject) and
    /// inserts. Used by store recovery on boot; hit/miss counters are
    /// untouched.
    pub fn warm(&mut self, key: CacheKey, value: CachedResult) {
        if let Some(lfu) = &mut self.admission {
            lfu.record(key.mix());
        }
        self.put(key, value);
    }

    /// Inserts (or refreshes) a result. With admission enabled, a
    /// candidate that would evict a more popular victim is dropped
    /// instead (counted in [`CacheStats::admission_rejects`]).
    pub fn put(&mut self, key: CacheKey, value: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            // Full: ask the admission filter whether the candidate beats
            // the LRU victim. Ties lose — scan resistance.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "full cache must have a tail");
            if let Some(lfu) = &self.admission {
                let candidate_freq = lfu.estimate(key.mix());
                let victim_freq = lfu.estimate(self.slab[victim].key.mix());
                if candidate_freq <= victim_freq {
                    self.admission_rejects += 1;
                    return;
                }
            }
            let victim_key = self.slab[victim].key;
            self.unlink(victim);
            self.map.remove(&victim_key);
            self.free.push(victim);
            self.evictions += 1;
        }
        self.seq += 1;
        let node = Node {
            key,
            value,
            prev: NIL,
            next: NIL,
            seq: self.seq,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = node;
                idx
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Keys from least to most recently used, with each node's insertion
    /// sequence number. Deterministic: the list order is total and the
    /// sequence numbers provide an explicit insertion-order tiebreak for
    /// tests that compare reorderings.
    pub fn iter_lru(&self) -> impl Iterator<Item = (CacheKey, u64)> + '_ {
        let mut cursor = self.tail;
        std::iter::from_fn(move || {
            if cursor == NIL {
                return None;
            }
            let node = &self.slab[cursor];
            cursor = node.prev;
            Some((node.key, node.seq))
        })
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            admission_rejects: self.admission_rejects,
            len: self.map.len(),
            capacity: self.capacity,
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded front
// ---------------------------------------------------------------------------

/// A sharded cache: power-of-two shards selected by fingerprint bits,
/// each an independently locked [`LruCache`]. Lookups for different
/// problems take different locks, so the serving hot path no longer
/// serialises on a single cache mutex.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<LruCache>>,
    mask: u64,
    capacity: usize,
    admission: bool,
}

impl ShardedCache {
    /// Creates `shards` (rounded up to a power of two) shards sharing
    /// `capacity` entries. `capacity == 0` disables caching entirely.
    pub fn new(capacity: usize, shards: usize, admission: bool) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        let shards: Vec<Mutex<LruCache>> = (0..shards)
            .map(|_| {
                Mutex::new(if admission {
                    LruCache::with_admission(per_shard)
                } else {
                    LruCache::new(per_shard)
                })
            })
            .collect();
        Self {
            mask: shards.len() as u64 - 1,
            shards,
            capacity,
            admission,
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<LruCache> {
        &self.shards[(key.mix() & self.mask) as usize]
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether the TinyLFU admission filter is active.
    pub fn admission_enabled(&self) -> bool {
        self.admission
    }

    /// Looks up a key in its shard.
    pub fn get(&self, key: &CacheKey) -> Option<CachedResult> {
        self.shard(key).lock().get(key)
    }

    /// Inserts a result into the key's shard.
    pub fn put(&self, key: CacheKey, value: CachedResult) {
        self.shard(&key).lock().put(key, value);
    }

    /// Membership probe that leaves recency/stats untouched.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.shard(key).lock().contains(key)
    }

    /// Warm-loads a recovered entry into its shard (see
    /// [`LruCache::warm`]).
    pub fn warm(&self, key: CacheKey, value: CachedResult) {
        self.shard(&key).lock().warm(key, value);
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated counter snapshot (capacity reports the configured
    /// total, not the per-shard rounding).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats {
            capacity: self.capacity,
            ..CacheStats::default()
        };
        for shard in &self.shards {
            total.merge(&shard.lock().stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(ratio: f64) -> CachedResult {
        CachedResult::new(vec![ratio], ratio, 10.0, 0.25)
    }

    fn key(problem: u64) -> CacheKey {
        CacheKey::new(problem, Algorithm::Ba, 8, 1.0)
    }

    #[test]
    fn hit_after_put_miss_before() {
        let mut c = LruCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.put(key(1), result(1.5));
        let got = c.get(&key(1)).expect("hit");
        assert_eq!(got.ratio, 1.5);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put(key(1), result(1.0));
        c.put(key(2), result(2.0));
        assert!(c.get(&key(1)).is_some()); // 2 is now LRU
        c.put(key(3), result(3.0)); // evicts 2
        assert!(c.get(&key(2)).is_none());
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn theta_only_keys_bahf() {
        let a = CacheKey::new(9, Algorithm::Hf, 4, 1.0);
        let b = CacheKey::new(9, Algorithm::Hf, 4, 2.0);
        assert_eq!(a, b);
        let c = CacheKey::new(9, Algorithm::BaHf, 4, 1.0);
        let d = CacheKey::new(9, Algorithm::BaHf, 4, 2.0);
        assert_ne!(c, d);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.put(key(1), result(1.0));
        assert!(c.get(&key(1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = LruCache::new(2);
        c.put(key(1), result(1.0));
        c.put(key(1), result(1.5));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key(1)).unwrap().ratio, 1.5);
    }

    #[test]
    fn recency_list_order_is_deterministic() {
        let mut c = LruCache::new(4);
        for p in 1..=4 {
            c.put(key(p), result(p as f64));
        }
        // LRU→MRU is insertion order before any touch...
        let order: Vec<u64> = c.iter_lru().map(|(k, _)| k.problem).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
        // ...touching 2 moves it to the MRU end, everything else keeps
        // its relative (insertion) order.
        c.get(&key(2));
        let order: Vec<u64> = c.iter_lru().map(|(k, _)| k.problem).collect();
        assert_eq!(order, vec![1, 3, 4, 2]);
        // Sequence numbers expose insertion order as the tiebreak.
        let seqs: Vec<u64> = c.iter_lru().map(|(_, seq)| seq).collect();
        assert_eq!(seqs, vec![1, 3, 4, 2]);
    }

    #[test]
    fn slab_reuses_slots_after_eviction() {
        let mut c = LruCache::new(2);
        for p in 1..=100 {
            c.put(key(p), result(1.0));
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 98);
        // The slab never grows beyond capacity: slots are recycled.
        assert!(c.slab.len() <= 2);
    }

    #[test]
    fn admission_rejects_one_hit_wonders() {
        let mut c = LruCache::with_admission(4);
        // Warm a hot set of 4 keys with several touches each.
        for _ in 0..5 {
            for p in 1..=4 {
                if c.get(&key(p)).is_none() {
                    c.put(key(p), result(1.0));
                }
            }
        }
        assert_eq!(c.len(), 4);
        // A one-pass scan of cold keys cannot displace the hot set.
        for p in 100..600 {
            if c.get(&key(p)).is_none() {
                c.put(key(p), result(1.0));
            }
        }
        for p in 1..=4 {
            assert!(c.contains(&key(p)), "hot key {p} was evicted by a scan");
        }
        assert!(c.stats().admission_rejects > 0);
    }

    #[test]
    fn admission_off_preserves_plain_lru() {
        let mut c = LruCache::new(4);
        for _ in 0..5 {
            for p in 1..=4 {
                if c.get(&key(p)).is_none() {
                    c.put(key(p), result(1.0));
                }
            }
        }
        for p in 100..110 {
            if c.get(&key(p)).is_none() {
                c.put(key(p), result(1.0));
            }
        }
        // Plain LRU: the scan flushed everything; the cache holds the
        // last 4 scanned keys.
        for p in 1..=4 {
            assert!(!c.contains(&key(p)));
        }
        for p in 106..110 {
            assert!(c.contains(&key(p)));
        }
        assert_eq!(c.stats().admission_rejects, 0);
    }

    #[test]
    fn tinylfu_estimates_grow_and_halve() {
        let mut lfu = TinyLfu::new(64);
        let h = key(7).mix();
        assert_eq!(lfu.estimate(h), 0);
        lfu.record(h); // doorkeeper
        assert_eq!(lfu.estimate(h), 1);
        for _ in 0..5 {
            lfu.record(h); // sketch
        }
        assert!(lfu.estimate(h) >= 5);
        let before = lfu.estimate(h);
        lfu.halve();
        let after = lfu.estimate(h);
        assert!(after < before, "halving must decay estimates");
    }

    #[test]
    fn sharded_cache_spreads_and_aggregates() {
        let c = ShardedCache::new(64, 8, false);
        assert_eq!(c.shard_count(), 8);
        for p in 0..32 {
            c.put(key(p), result(p as f64));
        }
        assert_eq!(c.len(), 32);
        for p in 0..32 {
            assert_eq!(c.get(&key(p)).unwrap().ratio, p as f64);
        }
        let s = c.stats();
        assert_eq!(s.hits, 32);
        assert_eq!(s.len, 32);
        assert_eq!(s.capacity, 64);
        // Keys actually landed on more than one shard.
        let populated = c.shards.iter().filter(|s| !s.lock().is_empty()).count();
        assert!(populated > 1, "all keys fell on one shard");
    }

    #[test]
    fn sharded_zero_capacity_disables_caching() {
        let c = ShardedCache::new(0, 4, true);
        c.put(key(1), result(1.0));
        assert!(c.get(&key(1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedCache::new(64, 3, false).shard_count(), 4);
        assert_eq!(ShardedCache::new(64, 1, false).shard_count(), 1);
        assert_eq!(ShardedCache::new(64, 0, false).shard_count(), 1);
    }
}
