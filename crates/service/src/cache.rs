//! LRU result cache keyed by `(problem fingerprint, algorithm, N, θ)`.
//!
//! Because every [`ProblemSpec`](crate::spec::ProblemSpec) is
//! deterministic and the algorithms are pure functions of the problem,
//! a cache entry is not merely "a plausible answer" — it is byte-for-byte
//! the partition the server would recompute. The cache therefore returns
//! full responses, only the latency and `cached` flag differ.
//!
//! The implementation is a classic `HashMap` + recency list built from a
//! `BTreeMap<u64, Key>` over a monotone touch counter: `O(log n)` per
//! touch, no unsafe pointer chasing, deterministic iteration for tests.

use std::collections::{BTreeMap, HashMap};

use crate::proto::Algorithm;

/// Cache key: what uniquely determines a balance result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `ProblemSpec::fingerprint()` of the request's problem.
    pub problem: u64,
    /// Algorithm that ran.
    pub algorithm: Algorithm,
    /// Processor count.
    pub n: usize,
    /// θ bit pattern (only meaningful for BA-HF; fixed for the others).
    pub theta_bits: u64,
}

impl CacheKey {
    /// Builds a key, normalising θ for algorithms that ignore it so
    /// `hf, θ=1` and `hf, θ=2` share an entry.
    pub fn new(problem: u64, algorithm: Algorithm, n: usize, theta: f64) -> Self {
        let theta_bits = match algorithm {
            Algorithm::BaHf => theta.to_bits(),
            _ => 0,
        };
        Self {
            problem,
            algorithm,
            n,
            theta_bits,
        }
    }
}

/// A cached balance result (piece weights plus derived figures).
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Piece weights of the partition.
    pub pieces: Vec<f64>,
    /// Achieved ratio.
    pub ratio: f64,
    /// Analytic bound reported with the result.
    pub bound: f64,
    /// α used for the bound.
    pub alpha: f64,
}

/// Bounded LRU cache with hit/miss/eviction accounting.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<CacheKey, Entry>,
    recency: BTreeMap<u64, CacheKey>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Entry {
    value: CachedResult,
    stamp: u64,
}

/// Counter snapshot for the stats endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    /// Lookup hits since start.
    pub hits: u64,
    /// Lookup misses since start.
    pub misses: u64,
    /// Entries evicted to respect capacity.
    pub evictions: u64,
    /// Current entry count.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (`0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl LruCache {
    /// Creates a cache holding at most `capacity` results. A capacity of
    /// `0` disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<CachedResult> {
        let stamp = self.tick();
        match self.map.get_mut(key) {
            Some(entry) => {
                self.recency.remove(&entry.stamp);
                entry.stamp = stamp;
                self.recency.insert(stamp, *key);
                self.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a result, evicting the least recently used
    /// entry if the cache is full.
    pub fn put(&mut self, key: CacheKey, value: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.tick();
        if let Some(old) = self.map.insert(key, Entry { value, stamp }) {
            self.recency.remove(&old.stamp);
        }
        self.recency.insert(stamp, key);
        while self.map.len() > self.capacity {
            let (&oldest, &victim) = self
                .recency
                .iter()
                .next()
                .expect("recency tracks every entry");
            self.recency.remove(&oldest);
            self.map.remove(&victim);
            self.evictions += 1;
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(ratio: f64) -> CachedResult {
        CachedResult {
            pieces: vec![ratio],
            ratio,
            bound: 10.0,
            alpha: 0.25,
        }
    }

    fn key(problem: u64) -> CacheKey {
        CacheKey::new(problem, Algorithm::Ba, 8, 1.0)
    }

    #[test]
    fn hit_after_put_miss_before() {
        let mut c = LruCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.put(key(1), result(1.5));
        let got = c.get(&key(1)).expect("hit");
        assert_eq!(got.ratio, 1.5);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put(key(1), result(1.0));
        c.put(key(2), result(2.0));
        assert!(c.get(&key(1)).is_some()); // 2 is now LRU
        c.put(key(3), result(3.0)); // evicts 2
        assert!(c.get(&key(2)).is_none());
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn theta_only_keys_bahf() {
        let a = CacheKey::new(9, Algorithm::Hf, 4, 1.0);
        let b = CacheKey::new(9, Algorithm::Hf, 4, 2.0);
        assert_eq!(a, b);
        let c = CacheKey::new(9, Algorithm::BaHf, 4, 1.0);
        let d = CacheKey::new(9, Algorithm::BaHf, 4, 2.0);
        assert_ne!(c, d);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.put(key(1), result(1.0));
        assert!(c.get(&key(1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = LruCache::new(2);
        c.put(key(1), result(1.0));
        c.put(key(1), result(1.5));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key(1)).unwrap().ratio, 1.5);
    }
}
