//! Live service metrics: request counters, outcome counters and
//! log-bucketed latency histograms with p50/p95/p99 readout.
//!
//! Everything here is lock-free (`AtomicU64`) so the hot path — worker
//! threads recording one latency sample per request — never contends
//! with a `stats` reader. Quantiles are answered from power-of-two
//! buckets: bucket `i` covers `[2^i, 2^{i+1})` µs, so a reported p99 is
//! exact to within a factor of two, which is plenty for a load shedder
//! and far cheaper than tracking raw samples server-side.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::proto::{Algorithm, ErrorCode, Json};

/// Number of histogram buckets: covers `[1 µs, 2^39 µs ≈ 9 days)`.
const BUCKETS: usize = 40;

/// A fixed-bucket, log₂-spaced latency histogram over microseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket_of(us: u64) -> usize {
        // 0 and 1 µs land in bucket 0; beyond the last bucket saturates.
        (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest recorded sample in µs.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Approximate quantile `q ∈ [0, 1]` in µs: the upper edge of the
    /// first bucket whose cumulative count reaches `q·total` (within a
    /// factor of 2 of the true quantile). Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << i).saturating_mul(2).min(self.max_us().max(1));
            }
        }
        self.max_us()
    }

    /// JSON summary used by the stats endpoint.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Int(self.count() as i64)),
            ("mean_us".into(), Json::Num(self.mean_us())),
            ("p50_us".into(), Json::Int(self.quantile_us(0.50) as i64)),
            ("p95_us".into(), Json::Int(self.quantile_us(0.95) as i64)),
            ("p99_us".into(), Json::Int(self.quantile_us(0.99) as i64)),
            ("max_us".into(), Json::Int(self.max_us() as i64)),
        ])
    }
}

/// All service-level counters plus per-algorithm latency histograms.
#[derive(Debug)]
pub struct ServiceMetrics {
    started: Instant,
    /// Successful balance responses per algorithm.
    ok_by_algorithm: [AtomicU64; 4],
    /// Of the successes, how many were served from cache, per algorithm.
    cached_by_algorithm: [AtomicU64; 4],
    /// Error responses per [`ErrorCode`].
    errors: [AtomicU64; 5],
    /// Stats/ping/shutdown frames served.
    control: AtomicU64,
    /// Cache hits answered inline on an I/O poller, skipping the queue
    /// and worker hand-off entirely.
    fast_path: AtomicU64,
    /// Connections that died abnormally: reset by the peer, failed a
    /// write, or stalled past the write deadline.
    conn_reset: AtomicU64,
    /// Frames cut off by a peer close: a non-empty partial line was
    /// pending when EOF arrived.
    torn_frame: AtomicU64,
    /// Finished responses that could not be delivered — the connection
    /// was dead or another thread had already answered for it.
    reply_dropped: AtomicU64,
    /// `accept()` failures other than WouldBlock/Interrupted — fd
    /// exhaustion (`EMFILE`/`ENFILE`) and kindred resource errors. Each
    /// one also backs the accept loop off for a poll interval.
    accept_errors: AtomicU64,
    /// Connections refused at accept because the `--max-conns` cap was
    /// reached; each got a best-effort `overloaded` reply before close.
    accept_shed: AtomicU64,
    /// Latency over all balance requests (receipt → response ready).
    latency: Histogram,
    /// Latency split per algorithm.
    latency_by_algorithm: [Histogram; 4],
}

impl ServiceMetrics {
    /// Creates zeroed metrics anchored at "now".
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            ok_by_algorithm: std::array::from_fn(|_| AtomicU64::new(0)),
            cached_by_algorithm: std::array::from_fn(|_| AtomicU64::new(0)),
            errors: std::array::from_fn(|_| AtomicU64::new(0)),
            control: AtomicU64::new(0),
            fast_path: AtomicU64::new(0),
            conn_reset: AtomicU64::new(0),
            torn_frame: AtomicU64::new(0),
            reply_dropped: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
            accept_shed: AtomicU64::new(0),
            latency: Histogram::new(),
            latency_by_algorithm: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Records a successful balance response.
    pub fn record_ok(&self, algorithm: Algorithm, cached: bool, latency: Duration) {
        let i = algorithm.index();
        self.ok_by_algorithm[i].fetch_add(1, Ordering::Relaxed);
        if cached {
            self.cached_by_algorithm[i].fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(latency);
        self.latency_by_algorithm[i].record(latency);
    }

    /// Records an error response.
    pub fn record_error(&self, code: ErrorCode) {
        self.errors[code.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a control-plane frame (stats / ping / shutdown).
    pub fn record_control(&self) {
        self.control.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cache hit served inline on the I/O thread (no queue
    /// round trip). Call *in addition to* [`record_ok`](Self::record_ok).
    pub fn record_fast_path(&self) {
        self.fast_path.fetch_add(1, Ordering::Relaxed);
    }

    /// Responses served on the inline fast path so far.
    pub fn fast_path_count(&self) -> u64 {
        self.fast_path.load(Ordering::Relaxed)
    }

    /// Records a connection that died abnormally (peer reset, write
    /// failure, or write stall past the deadline).
    pub fn record_conn_reset(&self) {
        self.conn_reset.fetch_add(1, Ordering::Relaxed);
    }

    /// Abnormal connection deaths so far.
    pub fn conn_reset_count(&self) -> u64 {
        self.conn_reset.load(Ordering::Relaxed)
    }

    /// Records a frame cut off by EOF (non-empty partial line when the
    /// peer closed).
    pub fn record_torn_frame(&self) {
        self.torn_frame.fetch_add(1, Ordering::Relaxed);
    }

    /// Torn frames seen so far.
    pub fn torn_frame_count(&self) -> u64 {
        self.torn_frame.load(Ordering::Relaxed)
    }

    /// Records a finished response that could not be delivered to its
    /// connection.
    pub fn record_reply_dropped(&self) {
        self.reply_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Undeliverable responses so far.
    pub fn reply_dropped_count(&self) -> u64 {
        self.reply_dropped.load(Ordering::Relaxed)
    }

    /// Records an `accept()` failure that was neither WouldBlock nor
    /// Interrupted (fd exhaustion and other resource errors).
    pub fn record_accept_error(&self) {
        self.accept_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Failed accepts so far.
    pub fn accept_error_count(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    /// Records a connection shed at accept by the `--max-conns` cap.
    pub fn record_accept_shed(&self) {
        self.accept_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Cap-shed accepts so far.
    pub fn accept_shed_count(&self) -> u64 {
        self.accept_shed.load(Ordering::Relaxed)
    }

    /// Seconds since the server started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Total balance requests answered (ok + error).
    pub fn total_requests(&self) -> u64 {
        let ok: u64 = self
            .ok_by_algorithm
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        let err: u64 = self.errors.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        ok + err
    }

    /// Count of error responses with the given code.
    pub fn error_count(&self, code: ErrorCode) -> u64 {
        self.errors[code.index()].load(Ordering::Relaxed)
    }

    /// Successful responses for one algorithm.
    pub fn ok_count(&self, algorithm: Algorithm) -> u64 {
        self.ok_by_algorithm[algorithm.index()].load(Ordering::Relaxed)
    }

    /// Full JSON snapshot (the `requests`/`latency` halves of the stats
    /// response; cache/queue/pool figures are merged in by the server).
    pub fn to_json(&self) -> Json {
        let by_algorithm = Json::Obj(
            Algorithm::ALL
                .iter()
                .map(|&a| {
                    let i = a.index();
                    (
                        a.name().to_string(),
                        Json::Obj(vec![
                            (
                                "ok".into(),
                                Json::Int(self.ok_by_algorithm[i].load(Ordering::Relaxed) as i64),
                            ),
                            (
                                "cached".into(),
                                Json::Int(
                                    self.cached_by_algorithm[i].load(Ordering::Relaxed) as i64
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        let outcomes = Json::Obj(
            ErrorCode::ALL
                .iter()
                .map(|&c| (c.name().to_string(), Json::Int(self.error_count(c) as i64)))
                .collect(),
        );
        let latency_by_algorithm = Json::Obj(
            Algorithm::ALL
                .iter()
                .map(|&a| {
                    (
                        a.name().to_string(),
                        self.latency_by_algorithm[a.index()].to_json(),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            (
                "uptime_ms".into(),
                Json::Int(self.uptime().as_millis().min(i64::MAX as u128) as i64),
            ),
            (
                "requests".into(),
                Json::Obj(vec![
                    ("total".into(), Json::Int(self.total_requests() as i64)),
                    (
                        "control".into(),
                        Json::Int(self.control.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "fast_path".into(),
                        Json::Int(self.fast_path.load(Ordering::Relaxed) as i64),
                    ),
                    ("by_algorithm".into(), by_algorithm),
                    ("errors".into(), outcomes),
                ]),
            ),
            (
                "faults".into(),
                Json::Obj(vec![
                    (
                        "conn_reset".into(),
                        Json::Int(self.conn_reset.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "torn_frame".into(),
                        Json::Int(self.torn_frame.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "reply_dropped".into(),
                        Json::Int(self.reply_dropped.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "accept_errors".into(),
                        Json::Int(self.accept_errors.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "accept_shed".into(),
                        Json::Int(self.accept_shed.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            (
                "latency".into(),
                Json::Obj(vec![
                    ("overall".into(), self.latency.to_json()),
                    ("by_algorithm".into(), latency_by_algorithm),
                ]),
            ),
        ])
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a store counter snapshot as the stats endpoint's `store`
/// section.
pub fn store_json(stats: &gb_store::StoreStats) -> Json {
    Json::Obj(vec![
        ("appended".into(), Json::Int(stats.appended as i64)),
        ("recovered".into(), Json::Int(stats.recovered as i64)),
        (
            "corrupt_skipped".into(),
            Json::Int(stats.corrupt_skipped as i64),
        ),
        ("compacted".into(), Json::Int(stats.compacted as i64)),
        ("synced".into(), Json::Int(stats.synced as i64)),
        (
            "spill_dropped".into(),
            Json::Int(stats.spill_dropped as i64),
        ),
        ("write_errors".into(), Json::Int(stats.write_errors as i64)),
        ("bytes_live".into(), Json::Int(stats.bytes_live as i64)),
        (
            "bytes_on_disk".into(),
            Json::Int(stats.bytes_on_disk as i64),
        ),
        ("segments".into(), Json::Int(stats.segments as i64)),
        ("live_records".into(), Json::Int(stats.live_records as i64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let h = Histogram::new();
        // 90 fast samples (~8 µs), 10 slow (~8192 µs).
        for _ in 0..90 {
            h.record(Duration::from_micros(8));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(8192));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.50);
        let p99 = h.quantile_us(0.99);
        assert!(p50 <= 16, "p50 {p50}");
        assert!(p99 >= 8192, "p99 {p99}");
        assert!(h.max_us() >= 8192);
        assert!(h.mean_us() > 0.0);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn fault_counters_surface_in_snapshot() {
        let m = ServiceMetrics::new();
        m.record_conn_reset();
        m.record_conn_reset();
        m.record_torn_frame();
        m.record_reply_dropped();
        m.record_accept_error();
        m.record_accept_error();
        m.record_accept_error();
        m.record_accept_shed();
        assert_eq!(m.conn_reset_count(), 2);
        assert_eq!(m.torn_frame_count(), 1);
        assert_eq!(m.reply_dropped_count(), 1);
        assert_eq!(m.accept_error_count(), 3);
        assert_eq!(m.accept_shed_count(), 1);
        let faults = m.to_json().get("faults").cloned().expect("faults section");
        assert_eq!(faults.get("conn_reset").unwrap().as_u64(), Some(2));
        assert_eq!(faults.get("torn_frame").unwrap().as_u64(), Some(1));
        assert_eq!(faults.get("reply_dropped").unwrap().as_u64(), Some(1));
        assert_eq!(faults.get("accept_errors").unwrap().as_u64(), Some(3));
        assert_eq!(faults.get("accept_shed").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn metrics_counts_and_snapshot_are_consistent() {
        let m = ServiceMetrics::new();
        m.record_ok(Algorithm::Hf, false, Duration::from_micros(100));
        m.record_ok(Algorithm::Hf, true, Duration::from_micros(5));
        m.record_ok(Algorithm::Ba, false, Duration::from_micros(300));
        m.record_error(ErrorCode::Overloaded);
        m.record_control();
        assert_eq!(m.total_requests(), 4);
        assert_eq!(m.ok_count(Algorithm::Hf), 2);
        assert_eq!(m.error_count(ErrorCode::Overloaded), 1);
        let json = m.to_json();
        let requests = json.get("requests").unwrap();
        assert_eq!(requests.get("total").unwrap().as_u64(), Some(4));
        let hf = requests.get("by_algorithm").unwrap().get("hf").unwrap();
        assert_eq!(hf.get("ok").unwrap().as_u64(), Some(2));
        assert_eq!(hf.get("cached").unwrap().as_u64(), Some(1));
        let overall = json.get("latency").unwrap().get("overall").unwrap();
        assert_eq!(overall.get("count").unwrap().as_u64(), Some(3));
    }
}
