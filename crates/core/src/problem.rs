//! The abstract problem model: weights and bisections.
//!
//! Following Definition 1 of the paper, a class `P` of problems with weight
//! function `w : P → R+` has **α-bisectors** (`0 < α ≤ 1/2`) if every
//! `p ∈ P` can be efficiently divided into `p1, p2 ∈ P` with
//! `w(p1) + w(p2) = w(p)` and `w(p1), w(p2) ∈ [α·w(p), (1−α)·w(p)]`.
//!
//! [`Bisectable`] captures the operational part (weigh, bisect);
//! [`AlphaBisectable`] additionally exposes the class guarantee α so that
//! algorithms that need it (PHF's threshold, BA-HF's switch-over) and the
//! worst-case bounds can be evaluated.
//!
//! **Determinism contract.** `bisect` must be a *pure function of the
//! problem value*: bisecting equal values yields equal children. Every
//! problem class in this workspace honours this (randomised classes carry
//! an explicit seed), which is what makes "PHF produces the same partition
//! as HF" testable bit-for-bit.

use crate::error::{Error, Result};

/// A problem that can be weighed and split into two subproblems.
pub trait Bisectable: Sized {
    /// The weight (resource demand — CPU load, memory, …) of this problem.
    ///
    /// Must be positive and finite for bisectable problems.
    fn weight(&self) -> f64;

    /// Splits the problem into two subproblems whose weights sum to
    /// `self.weight()`.
    ///
    /// Implementations must be deterministic (see the module docs) and
    /// should only be called when [`can_bisect`](Bisectable::can_bisect)
    /// returns `true`.
    fn bisect(&self) -> (Self, Self);

    /// Whether this problem can still be bisected.
    ///
    /// The paper's model assumes indefinitely divisible problems; concrete
    /// classes (a single finite element, a one-cell grid, …) become atomic
    /// at some point. Algorithms treat atomic problems as final pieces,
    /// which may leave processors idle — the paper explicitly allows
    /// partitions into fewer than `N` subproblems.
    fn can_bisect(&self) -> bool {
        true
    }
}

/// A [`Bisectable`] problem from a class with a known α guarantee.
pub trait AlphaBisectable: Bisectable {
    /// The α of Definition 1: every bisection of every problem in the class
    /// produces children with weight in `[α·w, (1−α)·w]`.
    fn alpha(&self) -> f64;
}

/// Checks one bisection against the α-bisector contract.
///
/// `tol` is a relative tolerance absorbing floating-point rounding (the
/// weights of children are usually computed as products of the parent
/// weight with a fraction).
pub fn validate_bisection(parent: f64, left: f64, right: f64, alpha: f64, tol: f64) -> Result<()> {
    let sum_ok = (left + right - parent).abs() <= tol * parent.abs().max(1.0);
    let lo = alpha * parent * (1.0 - tol);
    let hi = (1.0 - alpha) * parent * (1.0 + tol);
    let range_ok = left >= lo && left <= hi && right >= lo && right <= hi;
    if sum_ok && range_ok {
        Ok(())
    } else {
        Err(Error::BisectionContract {
            parent,
            left,
            right,
            alpha,
        })
    }
}

/// A convenience view of a problem as a pure weight split.
///
/// Used by code that only needs weights (the simulated machine, the
/// renderer) without caring about the concrete problem type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedSplit {
    /// Weight of the lighter child divided by the parent weight.
    pub fraction: f64,
}

impl WeightedSplit {
    /// Computes the split fractions of a bisection `(parent → l, r)`.
    ///
    /// Returns the fraction of the *lighter* side, i.e. the realised
    /// bisection parameter `α̂ ∈ (0, 1/2]`.
    pub fn observed(parent: f64, left: f64, right: f64) -> Self {
        let frac = left.min(right) / parent;
        Self { fraction: frac }
    }
}

/// Measures the realised bisection quality `α̂` of a whole run.
///
/// Feeding every `(parent, left, right)` triple of a bisection tree into
/// this accumulator yields the empirical α of the instance: the minimum
/// over all bisections of `min(w1, w2)/w`. Concrete problem classes whose
/// α cannot be established analytically report this instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaObserver {
    min_fraction: f64,
    max_fraction: f64,
    count: u64,
}

impl Default for AlphaObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl AlphaObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self {
            min_fraction: f64::INFINITY,
            max_fraction: 0.0,
            count: 0,
        }
    }

    /// Records one bisection.
    pub fn record(&mut self, parent: f64, left: f64, right: f64) {
        let f = WeightedSplit::observed(parent, left, right).fraction;
        self.min_fraction = self.min_fraction.min(f);
        self.max_fraction = self.max_fraction.max(f);
        self.count += 1;
    }

    /// The empirical α (worst split fraction seen), or `None` if nothing
    /// was recorded.
    pub fn alpha(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min_fraction)
    }

    /// The best (most balanced) split fraction seen.
    pub fn best_fraction(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max_fraction)
    }

    /// Number of bisections recorded.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_exact_split() {
        assert!(validate_bisection(10.0, 4.0, 6.0, 0.4, 1e-12).is_ok());
    }

    #[test]
    fn validate_rejects_weight_loss() {
        assert!(validate_bisection(10.0, 4.0, 5.0, 0.3, 1e-12).is_err());
    }

    #[test]
    fn validate_rejects_alpha_violation() {
        // 1.0 < α·w = 2.0: too small a piece.
        assert!(validate_bisection(10.0, 1.0, 9.0, 0.2, 1e-12).is_err());
    }

    #[test]
    fn validate_tolerates_rounding() {
        let w = 1.0;
        let l = 0.3 * w;
        let r = w - l;
        assert!(validate_bisection(w, l + 1e-15, r, 0.3, 1e-9).is_ok());
    }

    #[test]
    fn observed_fraction_picks_lighter_side() {
        let s = WeightedSplit::observed(10.0, 7.0, 3.0);
        assert!((s.fraction - 0.3).abs() < 1e-12);
        let s = WeightedSplit::observed(10.0, 3.0, 7.0);
        assert!((s.fraction - 0.3).abs() < 1e-12);
    }

    #[test]
    fn alpha_observer_tracks_worst_split() {
        let mut obs = AlphaObserver::new();
        assert_eq!(obs.alpha(), None);
        obs.record(1.0, 0.5, 0.5);
        obs.record(1.0, 0.2, 0.8);
        obs.record(1.0, 0.45, 0.55);
        assert!((obs.alpha().unwrap() - 0.2).abs() < 1e-12);
        assert!((obs.best_fraction().unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(obs.count(), 3);
    }
}
