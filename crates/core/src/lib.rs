//! # gb-core — load balancing for problems with good bisectors
//!
//! This crate is the core of a reproduction of
//!
//! > S. Bischof, R. Ebner, T. Erlebach.
//! > *Parallel Load Balancing for Problems with Good Bisectors.*
//! > IPPS/SPDP 1999.
//!
//! A class of problems has **α-bisectors** (`0 < α ≤ 1/2`) if every problem
//! `p` of weight `w(p)` can be split into two subproblems `p1`, `p2` with
//! `w(p1) + w(p2) = w(p)` and both weights in `[α·w(p), (1−α)·w(p)]`.
//! Given `N` processors the goal is to split `p` by repeated bisections into
//! at most `N` subproblems minimising the maximum subproblem weight; quality
//! is reported as the ratio of that maximum to the ideal `w(p)/N`.
//!
//! The crate provides:
//!
//! * the problem model ([`Bisectable`], [`AlphaBisectable`]) and partition /
//!   ratio bookkeeping ([`Partition`]),
//! * arena-based [`BisectionTree`]s recording algorithm runs,
//! * the *sequential semantics* of the paper's algorithms:
//!   [`hf`](hf::hf) (Heaviest problem First), [`ba`](ba::ba)
//!   (Best Approximation of ideal weight) and [`bahf::ba_hf`]
//!   (the combined algorithm of §3.3),
//! * the worst-case performance guarantees of Theorems 2, 7 and 8
//!   ([`bounds`]),
//! * small self-contained utilities the rest of the workspace builds on:
//!   a deterministic counter-based RNG ([`rng`]), a deterministic max-heap
//!   ([`heap`]) and streaming statistics ([`stats`]).
//!
//! The *parallel* versions (PHF on a simulated machine, BA on a work-stealing
//! thread pool) live in the `gb-pram` and `gb-parlb` crates; the simulation
//! study of §4 lives in `gb-simstudy`.
//!
//! ## Quick example
//!
//! ```
//! use gb_core::problem::WeightedSplit;
//! use gb_core::synthetic_alpha::FixedAlpha;
//! use gb_core::hf::hf;
//!
//! // A toy problem of weight 100 whose bisections always split 0.4 / 0.6.
//! let p = FixedAlpha::new(100.0, 0.4);
//! let partition = hf(p, 8);
//! assert_eq!(partition.len(), 8);
//! // With α = 0.4 the HF guarantee is r_α = 1/(0.4 · 0.6) ≈ 4.17;
//! // the observed ratio is far better.
//! assert!(partition.ratio() < 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ba;
pub mod bahf;
pub mod blind;
pub mod bounds;
pub mod error;
pub mod fingerprint;
pub mod heap;
pub mod hf;
pub mod oracle;
pub mod partition;
pub mod problem;
pub mod rng;
pub mod stats;
pub mod synthetic_alpha;
pub mod tree;

pub use ba::{ba, ba_traced, ba_with_ranges, split_processors};
pub use bahf::{ba_hf, ba_hf_traced};
pub use bounds::{ba_upper_bound, bahf_upper_bound, hf_upper_bound, r_ba, r_bahf, r_hf};
pub use error::{Error, Result};
pub use hf::{hf, hf_traced};
pub use partition::Partition;
pub use problem::{AlphaBisectable, Bisectable};
pub use tree::{BisectionTree, NodeId};
