//! Streaming statistics used by the simulation study.
//!
//! The paper reports, over 1000 trials per configuration, the minimum,
//! sample mean, maximum and sample variance of the observed load-balance
//! ratio. [`Welford`] accumulates exactly those moments in one pass with
//! good numerical behaviour; [`Summary`] is the frozen result.

/// One-pass accumulator for count/mean/variance/min/max (Welford's method).
#[derive(Debug, Clone, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Freezes the accumulator into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            variance: self.variance(),
            min: self.min,
            max: self.max,
        }
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Frozen summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of a sample by linear interpolation.
///
/// Sorts a copy of the data; intended for modest, report-sized samples.
///
/// # Panics
/// Panics if the sample is empty, `q` is outside `[0, 1]`, or the data
/// contains NaN.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q = {q} outside [0, 1]");
    let mut v: Vec<f64> = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} vs {b}");
    }

    #[test]
    fn empty_accumulator() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert!(w.mean().is_nan());
        assert!(w.variance().is_nan());
    }

    #[test]
    fn single_value() {
        let mut w = Welford::new();
        w.push(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.min(), 3.5);
        assert_eq!(w.max(), 3.5);
        assert!(w.variance().is_nan());
    }

    #[test]
    fn known_mean_and_variance() {
        let mut w = Welford::new();
        w.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_close(w.mean(), 5.0, 1e-12);
        // Population variance is 4; unbiased sample variance is 32/7.
        assert_close(w.variance(), 32.0 / 7.0, 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let mut all = Welford::new();
        all.extend(data.iter().copied());

        let mut a = Welford::new();
        let mut b = Welford::new();
        a.extend(data[..313].iter().copied());
        b.extend(data[313..].iter().copied());
        a.merge(&b);

        assert_eq!(a.count(), all.count());
        assert_close(a.mean(), all.mean(), 1e-9);
        assert_close(a.variance(), all.variance(), 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.extend([1.0, 2.0, 3.0]);
        let before = a.clone();
        a.merge(&Welford::new());
        assert_eq!(a, before);

        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert_close(quantile(&data, 0.5), 2.5, 1e-12);
        assert_close(quantile(&data, 0.25), 1.75, 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn summary_round_trip() {
        let mut w = Welford::new();
        w.extend([1.0, 3.0]);
        let s = w.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
        assert_close(s.variance, 2.0, 1e-12);
        assert_close(s.std_dev(), 2f64.sqrt(), 1e-12);
    }
}
