//! Error type shared across the workspace's core layer.

use std::fmt;

/// Errors reported by the load-balancing algorithms and model validators.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A bisection parameter α outside the admissible interval `(0, 1/2]`.
    InvalidAlpha(f64),
    /// A requested processor count of zero.
    ZeroProcessors,
    /// A θ threshold parameter that is not strictly positive and finite.
    InvalidTheta(f64),
    /// A problem weight that is not strictly positive and finite.
    InvalidWeight(f64),
    /// A bisection violated the α-bisector contract.
    ///
    /// Carries the parent weight, the two child weights and the α that was
    /// claimed for the class.
    BisectionContract {
        /// Weight of the problem that was bisected.
        parent: f64,
        /// Weight of the first (by convention lighter) child.
        left: f64,
        /// Weight of the second child.
        right: f64,
        /// The α the class claims to guarantee.
        alpha: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidAlpha(a) => {
                write!(f, "bisection parameter alpha = {a} outside (0, 1/2]")
            }
            Error::ZeroProcessors => write!(f, "processor count must be at least 1"),
            Error::InvalidTheta(t) => write!(f, "theta = {t} must be positive and finite"),
            Error::InvalidWeight(w) => write!(f, "weight = {w} must be positive and finite"),
            Error::BisectionContract {
                parent,
                left,
                right,
                alpha,
            } => write!(
                f,
                "bisection of weight {parent} into ({left}, {right}) violates the \
                 alpha-bisector contract for alpha = {alpha}"
            ),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Validates that `alpha` lies in the admissible interval `(0, 1/2]`.
pub fn check_alpha(alpha: f64) -> Result<f64> {
    if alpha.is_finite() && alpha > 0.0 && alpha <= 0.5 {
        Ok(alpha)
    } else {
        Err(Error::InvalidAlpha(alpha))
    }
}

/// Validates that `theta` is a positive finite threshold parameter.
pub fn check_theta(theta: f64) -> Result<f64> {
    if theta.is_finite() && theta > 0.0 {
        Ok(theta)
    } else {
        Err(Error::InvalidTheta(theta))
    }
}

/// Validates that `w` is a positive finite weight.
pub fn check_weight(w: f64) -> Result<f64> {
    if w.is_finite() && w > 0.0 {
        Ok(w)
    } else {
        Err(Error::InvalidWeight(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_range() {
        assert!(check_alpha(0.25).is_ok());
        assert!(check_alpha(0.5).is_ok());
        assert!(check_alpha(0.0).is_err());
        assert!(check_alpha(0.500001).is_err());
        assert!(check_alpha(f64::NAN).is_err());
        assert!(check_alpha(-0.1).is_err());
    }

    #[test]
    fn theta_range() {
        assert!(check_theta(1.0).is_ok());
        assert!(check_theta(0.0).is_err());
        assert!(check_theta(f64::INFINITY).is_err());
    }

    #[test]
    fn weight_range() {
        assert!(check_weight(1e-300).is_ok());
        assert!(check_weight(0.0).is_err());
        assert!(check_weight(f64::NAN).is_err());
    }

    #[test]
    fn display_messages_mention_offender() {
        let s = Error::InvalidAlpha(0.7).to_string();
        assert!(s.contains("0.7"));
        let s = Error::BisectionContract {
            parent: 1.0,
            left: 0.01,
            right: 0.99,
            alpha: 0.1,
        }
        .to_string();
        assert!(s.contains("0.01") && s.contains("alpha = 0.1"));
    }
}
