//! Algorithm **HF** — Heaviest problem First (Figure 1 of the paper).
//!
//! ```text
//! algorithm HF(p, N):
//!     P := {p}
//!     while |P| < N do
//!         q := a problem in P with maximum weight
//!         bisect q into q1 and q2
//!         P := (P ∪ {q1, q2}) \ {q}
//!     return P
//! ```
//!
//! HF uses `N−1` bisections and, for a class with α-bisectors, guarantees
//! `max_i w(p_i) ≤ (w(p)/N) · r_α` (Theorem 2; see
//! [`crate::bounds::r_hf`]). It is the quality yardstick of the paper: the
//! parallel algorithm PHF (crate `gb-parlb`) reproduces *exactly* this
//! partition, and BA / BA-HF trade some balance quality for parallelism.
//!
//! The "maximum weight" selection is implemented with the deterministic
//! [`crate::heap::WeightHeap`]: ties are broken by insertion
//! order, so a run of HF is a pure function of the input problem.

use crate::heap::WeightHeap;
use crate::partition::Partition;
use crate::problem::Bisectable;
use crate::tree::{BisectionTree, NoRecord, NodeId, Recorder};

/// Runs HF, splitting `p` into at most `n` subproblems.
///
/// Returns fewer than `n` pieces only if atomic (unbisectable) problems
/// are encountered first.
///
/// ```
/// use gb_core::hf::hf;
/// use gb_core::synthetic_alpha::FixedAlpha;
/// use gb_core::bounds::r_hf;
///
/// // Every bisection splits 30/70.
/// let partition = hf(FixedAlpha::new(1.0, 0.3), 10);
/// assert_eq!(partition.len(), 10);
/// // The achieved ratio respects Theorem 2's guarantee r_α.
/// assert!(partition.ratio() <= r_hf(0.3));
/// ```
///
/// # Panics
/// Panics if `n == 0`.
pub fn hf<P: Bisectable>(p: P, n: usize) -> Partition<P> {
    let mut rec = NoRecord;
    hf_rec(p, n, &mut rec)
}

/// Runs HF and additionally returns the bisection tree of the run.
pub fn hf_traced<P: Bisectable>(p: P, n: usize) -> (Partition<P>, BisectionTree) {
    let mut tree = BisectionTree::with_pieces_capacity(n);
    let partition = hf_rec(p, n, &mut tree);
    (partition, tree)
}

/// HF with an arbitrary recorder.
pub fn hf_rec<P: Bisectable, R: Recorder>(p: P, n: usize, rec: &mut R) -> Partition<P> {
    assert!(n > 0, "HF needs at least one processor");
    let total = p.weight();
    let root = rec.root(total);
    let pieces = hf_pieces(vec![(p, root)], n, rec);
    Partition::new(pieces.into_iter().map(|(q, _)| q).collect(), total, n)
}

/// The HF loop, exposed at crate level so BA-HF can continue a run on an
/// existing bisection tree: starting from `start` pieces (with their tree
/// nodes), bisect the heaviest bisectable piece until there are
/// `target_pieces` pieces (or everything is atomic).
pub(crate) fn hf_pieces<P: Bisectable, R: Recorder>(
    start: Vec<(P, NodeId)>,
    target_pieces: usize,
    rec: &mut R,
) -> Vec<(P, NodeId)> {
    debug_assert!(!start.is_empty());
    let mut heap: WeightHeap<(P, NodeId)> = WeightHeap::with_capacity(target_pieces + 1);
    // `done` collects atomic pieces that dropped out of the heap.
    let mut done: Vec<(P, NodeId)> = Vec::new();
    for (q, id) in start {
        heap.push(q.weight(), (q, id));
    }
    while heap.len() + done.len() < target_pieces {
        let Some((_w, (q, id))) = heap.pop() else {
            break; // everything is atomic
        };
        if !q.can_bisect() {
            done.push((q, id));
            continue;
        }
        let (q1, q2) = q.bisect();
        let (id1, id2) = rec.record(id, q1.weight(), q2.weight());
        heap.push(q1.weight(), (q1, id1));
        heap.push(q2.weight(), (q2, id2));
    }
    done.extend(heap.into_sorted_vec().into_iter().map(|(_, qi)| qi));
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{hf_upper_bound, r_hf};
    use crate::synthetic_alpha::{AtomicAfter, CycleAlpha, FixedAlpha};
    use proptest::prelude::*;

    #[test]
    fn one_processor_returns_input() {
        let p = FixedAlpha::new(5.0, 0.3);
        let part = hf(p, 1);
        assert_eq!(part.len(), 1);
        assert_eq!(part.max_weight(), 5.0);
        assert_eq!(part.ratio(), 1.0);
    }

    #[test]
    fn produces_exactly_n_pieces() {
        for n in 1..=64 {
            let part = hf(FixedAlpha::new(1.0, 0.37), n);
            assert_eq!(part.len(), n, "n = {n}");
            assert!(part.check_conservation(1e-9), "n = {n}");
        }
    }

    #[test]
    fn half_split_powers_of_two_are_perfect() {
        // α = 1/2 splits evenly; for N = 2^k the partition is exact.
        for k in 0..8 {
            let n = 1usize << k;
            let part = hf(FixedAlpha::new(1.0, 0.5), n);
            assert!((part.ratio() - 1.0).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn bisects_heaviest_first() {
        // α = 0.4: after the first bisection the pieces are 0.4 and 0.6;
        // HF must split 0.6 next, giving {0.4, 0.24, 0.36}.
        let part = hf(FixedAlpha::new(1.0, 0.4), 3);
        let mut w = part.sorted_weights();
        w.iter_mut().for_each(|x| *x = (*x * 1e9).round() / 1e9);
        assert_eq!(w, vec![0.24, 0.36, 0.4]);
    }

    #[test]
    fn traced_tree_matches_partition() {
        let (part, tree) = hf_traced(FixedAlpha::new(2.0, 0.3), 17);
        assert_eq!(tree.leaf_count(), 17);
        assert_eq!(tree.bisection_count(), 16); // N − 1 bisections
        let mut tw = tree.leaf_weights();
        tw.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(tw, part.sorted_weights());
        assert!(tree.verify_weight_conservation(1e-12).is_ok());
        assert!(tree.verify_alpha(0.3, 1e-9).is_ok());
    }

    #[test]
    fn atomic_problems_stop_early() {
        // Weight 1, α = 1/2, atomic below 0.3 ⇒ pieces of weight 0.25 are
        // atomic: at most 4 pieces no matter how many processors.
        let p = AtomicAfter::new(1.0, 0.5, 0.3);
        let part = hf(p, 64);
        assert_eq!(part.len(), 4);
        assert!(part.check_conservation(1e-12));
    }

    #[test]
    fn ratio_respects_theorem_2_for_fixed_alpha() {
        for &alpha in &[0.05, 0.1, 0.2, 1.0 / 3.0, 0.4, 0.5] {
            for &n in &[2usize, 3, 7, 16, 33, 128, 1000] {
                let part = hf(FixedAlpha::new(1.0, alpha), n);
                let bound = hf_upper_bound(alpha, n);
                assert!(
                    part.ratio() <= bound + 1e-9,
                    "alpha={alpha} n={n}: ratio {} > bound {bound}",
                    part.ratio()
                );
            }
        }
    }

    #[test]
    fn cycle_alpha_also_within_bound() {
        let p = CycleAlpha::new(1.0, &[0.5, 0.2, 0.35]);
        let alpha = 0.2;
        for &n in &[4usize, 9, 64, 257] {
            let part = hf(p.clone(), n);
            assert!(part.ratio() <= r_hf(alpha) + 1e-9, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        hf(FixedAlpha::new(1.0, 0.5), 0);
    }

    proptest! {
        #[test]
        fn prop_hf_conserves_weight_and_counts(
            alpha in 0.01f64..=0.5,
            n in 1usize..200,
            weight in 0.1f64..1e6,
        ) {
            let (part, tree) = hf_traced(FixedAlpha::new(weight, alpha), n);
            prop_assert_eq!(part.len(), n);
            prop_assert_eq!(tree.bisection_count(), n - 1);
            prop_assert!(part.check_conservation(1e-9));
            prop_assert!(tree.verify_alpha(alpha, 1e-9).is_ok());
        }

        #[test]
        fn prop_hf_ratio_below_bound(
            alpha in 0.02f64..=0.5,
            n in 1usize..300,
        ) {
            let part = hf(FixedAlpha::new(1.0, alpha), n);
            prop_assert!(part.ratio() <= hf_upper_bound(alpha, n) + 1e-9);
        }

        #[test]
        fn prop_hf_never_bisects_lighter_than_a_final_piece(
            alpha in 0.05f64..=0.5,
            n in 2usize..64,
        ) {
            // Defining HF invariant: whenever q was bisected it was the
            // current maximum, and weights only shrink downward, so every
            // final leaf weighs no more than ANY bisected node:
            //     max(leaf weights) ≤ min(internal weights).
            let p = FixedAlpha::new(1.0, alpha);
            let (_, tree) = hf_traced(p, n);
            let min_internal = tree
                .iter()
                .filter(|(_, node)| !node.is_leaf())
                .map(|(_, node)| node.weight)
                .fold(f64::INFINITY, f64::min);
            let max_leaf = tree
                .iter()
                .filter(|(_, node)| node.is_leaf())
                .map(|(_, node)| node.weight)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(max_leaf <= min_internal + 1e-12);
        }
    }
}
