//! A deterministic binary max-heap keyed by `f64` weights.
//!
//! Algorithm HF repeatedly extracts the *heaviest* subproblem. The standard
//! library's `BinaryHeap` breaks ties in an unspecified (though
//! deterministic) order and requires an `Ord` key, which `f64` is not. This
//! heap:
//!
//! * orders by weight descending,
//! * breaks exact weight ties by **insertion sequence number** (earlier
//!   insertion wins), making every HF run fully reproducible,
//! * rejects NaN weights at the door instead of corrupting the heap.
//!
//! The implementation is a textbook array heap with `sift_up`/`sift_down`
//! written out explicitly so its invariants can be property-tested.

/// An entry of the heap: key, tiebreak and payload.
#[derive(Debug, Clone)]
struct Entry<T> {
    weight: f64,
    seq: u64,
    value: T,
}

impl<T> Entry<T> {
    /// `true` if `self` has priority over (is "greater than") `other`.
    #[inline]
    fn beats(&self, other: &Self) -> bool {
        match self.weight.partial_cmp(&other.weight) {
            Some(std::cmp::Ordering::Greater) => true,
            Some(std::cmp::Ordering::Less) => false,
            // Equal weights: earlier insertion wins.
            _ => self.seq < other.seq,
        }
    }
}

/// A max-heap of `(f64 weight, T)` pairs with deterministic tie-breaking.
#[derive(Debug, Clone)]
pub struct WeightHeap<T> {
    items: Vec<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for WeightHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WeightHeap<T> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self {
            items: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty heap with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            items: Vec::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the heap holds no entries.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Inserts `value` with priority `weight`.
    ///
    /// # Panics
    /// Panics if `weight` is NaN.
    pub fn push(&mut self, weight: f64, value: T) {
        assert!(!weight.is_nan(), "NaN weight pushed into WeightHeap");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.items.push(Entry { weight, seq, value });
        self.sift_up(self.items.len() - 1);
    }

    /// The maximum weight currently stored, if any.
    pub fn peek_weight(&self) -> Option<f64> {
        self.items.first().map(|e| e.weight)
    }

    /// Borrows the payload with maximum weight, if any.
    pub fn peek(&self) -> Option<(f64, &T)> {
        self.items.first().map(|e| (e.weight, &e.value))
    }

    /// Removes and returns the entry with maximum weight.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let top = self.items.pop().expect("non-empty");
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        Some((top.weight, top.value))
    }

    /// Drains the heap into a vector sorted by descending priority.
    pub fn into_sorted_vec(mut self) -> Vec<(f64, T)> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(pair) = self.pop() {
            out.push(pair);
        }
        out
    }

    /// Iterates over `(weight, &value)` pairs in unspecified (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &T)> {
        self.items.iter().map(|e| (e.weight, &e.value))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[i].beats(&self.items[parent]) {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.items.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < n && self.items[l].beats(&self.items[best]) {
                best = l;
            }
            if r < n && self.items[r].beats(&self.items[best]) {
                best = r;
            }
            if best == i {
                return;
            }
            self.items.swap(i, best);
            i = best;
        }
    }

    /// Verifies the heap invariant; used by tests.
    #[doc(hidden)]
    pub fn check_invariant(&self) -> bool {
        (1..self.items.len()).all(|i| !self.items[i].beats(&self.items[(i - 1) / 2]))
    }
}

impl<T> FromIterator<(f64, T)> for WeightHeap<T> {
    fn from_iter<I: IntoIterator<Item = (f64, T)>>(iter: I) -> Self {
        let mut heap = WeightHeap::new();
        for (w, v) in iter {
            heap.push(w, v);
        }
        heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;
    use proptest::prelude::*;

    #[test]
    fn basic_ordering() {
        let mut h = WeightHeap::new();
        h.push(1.0, "a");
        h.push(3.0, "b");
        h.push(2.0, "c");
        assert_eq!(h.pop(), Some((3.0, "b")));
        assert_eq!(h.pop(), Some((2.0, "c")));
        assert_eq!(h.pop(), Some((1.0, "a")));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn ties_resolved_by_insertion_order() {
        let mut h = WeightHeap::new();
        for name in ["first", "second", "third"] {
            h.push(5.0, name);
        }
        assert_eq!(h.pop().unwrap().1, "first");
        assert_eq!(h.pop().unwrap().1, "second");
        assert_eq!(h.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_matches_pop() {
        let mut h: WeightHeap<u32> = [(2.0, 20), (9.0, 90), (4.0, 40)].into_iter().collect();
        assert_eq!(h.peek_weight(), Some(9.0));
        assert_eq!(h.peek().map(|(w, v)| (w, *v)), Some((9.0, 90)));
        assert_eq!(h.pop(), Some((9.0, 90)));
        assert_eq!(h.peek_weight(), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let mut h = WeightHeap::new();
        h.push(f64::NAN, ());
    }

    #[test]
    fn into_sorted_vec_is_descending() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut h = WeightHeap::new();
        for i in 0..500 {
            h.push(rng.next_f64(), i);
        }
        let v = h.into_sorted_vec();
        assert!(v.windows(2).all(|w| w[0].0 >= w[1].0));
        assert_eq!(v.len(), 500);
    }

    #[test]
    fn interleaved_push_pop_keeps_invariant() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let mut h = WeightHeap::new();
        for round in 0..200 {
            for _ in 0..(round % 5 + 1) {
                h.push(rng.next_f64(), round);
            }
            if round % 3 == 0 {
                h.pop();
            }
            assert!(h.check_invariant());
        }
    }

    proptest! {
        #[test]
        fn prop_pop_order_matches_stable_sort(weights in prop::collection::vec(0u32..50, 0..200)) {
            // Use coarse integer-derived weights so ties are common and the
            // tie-break rule is genuinely exercised.
            let mut h = WeightHeap::new();
            for (i, w) in weights.iter().enumerate() {
                h.push(*w as f64, i);
            }
            let got: Vec<(f64, usize)> = h.into_sorted_vec();

            let mut expect: Vec<(f64, usize)> =
                weights.iter().enumerate().map(|(i, w)| (*w as f64, i)).collect();
            // Stable sort by descending weight preserves insertion order on
            // ties, which is exactly the heap's documented contract.
            expect.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn prop_invariant_after_bulk_build(weights in prop::collection::vec(-1e9f64..1e9, 0..300)) {
            let h: WeightHeap<usize> =
                weights.iter().copied().zip(0..).collect();
            prop_assert!(h.check_invariant());
            prop_assert_eq!(h.len(), weights.len());
        }
    }
}
