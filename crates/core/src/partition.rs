//! Partitions and load-balance quality metrics.
//!
//! A load-balancing algorithm turns one problem of weight `w(p)` into at
//! most `N` subproblems. [`Partition`] owns the resulting pieces plus the
//! bookkeeping needed to evaluate the paper's quality measure, the
//! **ratio** `max_i w(p_i) / (w(p)/N)` against the ideal perfectly balanced
//! weight `w(p)/N` (a ratio of 1 is perfect balance; Theorems 2, 7 and 8
//! bound it from above for HF, BA and BA-HF respectively).

use crate::problem::Bisectable;

/// The result of a load-balancing run: pieces plus quality bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition<P> {
    pieces: Vec<P>,
    total_weight: f64,
    requested: usize,
}

impl<P: Bisectable> Partition<P> {
    /// Builds a partition from pieces.
    ///
    /// `total_weight` is the weight of the original problem and `requested`
    /// the processor count `N` the algorithm was asked to fill. The number
    /// of pieces may be smaller than `requested` when atomic problems stop
    /// bisection early; it can never be larger.
    ///
    /// # Panics
    /// Panics if there are no pieces, or more pieces than `requested`.
    pub fn new(pieces: Vec<P>, total_weight: f64, requested: usize) -> Self {
        assert!(!pieces.is_empty(), "a partition needs at least one piece");
        assert!(
            pieces.len() <= requested,
            "{} pieces exceed the requested {requested} processors",
            pieces.len()
        );
        Self {
            pieces,
            total_weight,
            requested,
        }
    }

    /// Number of pieces actually produced.
    pub fn len(&self) -> usize {
        self.pieces.len()
    }

    /// `false` — partitions always contain at least one piece; provided for
    /// API symmetry.
    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    /// The processor count `N` the run was asked to fill.
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// Borrows the pieces.
    pub fn pieces(&self) -> &[P] {
        &self.pieces
    }

    /// Consumes the partition, yielding the pieces.
    pub fn into_pieces(self) -> Vec<P> {
        self.pieces
    }

    /// The weights of the pieces, in production order.
    pub fn weights(&self) -> Vec<f64> {
        self.pieces.iter().map(|p| p.weight()).collect()
    }

    /// The weights of the pieces, sorted ascending. Two runs computed "the
    /// same partition" exactly when these vectors are equal.
    pub fn sorted_weights(&self) -> Vec<f64> {
        let mut w = self.weights();
        w.sort_by(|a, b| a.partial_cmp(b).expect("NaN weight"));
        w
    }

    /// Weight of the heaviest piece — the quantity all algorithms minimise.
    pub fn max_weight(&self) -> f64 {
        self.pieces
            .iter()
            .map(|p| p.weight())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Weight of the lightest piece.
    pub fn min_weight(&self) -> f64 {
        self.pieces
            .iter()
            .map(|p| p.weight())
            .fold(f64::INFINITY, f64::min)
    }

    /// Weight of the original problem.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The ideal perfectly balanced piece weight `w(p)/N`.
    pub fn ideal_weight(&self) -> f64 {
        self.total_weight / self.requested as f64
    }

    /// The paper's quality measure: `max_i w(p_i) / (w(p)/N)`; 1 is perfect.
    pub fn ratio(&self) -> f64 {
        self.max_weight() / self.ideal_weight()
    }

    /// Ratio of heaviest to lightest piece (a secondary imbalance metric).
    pub fn spread(&self) -> f64 {
        self.max_weight() / self.min_weight()
    }

    /// Checks that piece weights sum to the original weight within the
    /// given relative tolerance (weight conservation across bisections).
    pub fn check_conservation(&self, rel_tol: f64) -> bool {
        let sum: f64 = self.pieces.iter().map(|p| p.weight()).sum();
        (sum - self.total_weight).abs() <= rel_tol * self.total_weight.abs().max(1.0)
    }

    /// `true` if the two partitions consist of identical weight multisets
    /// (bit-exact, after sorting).
    pub fn same_weights_as<Q: Bisectable>(&self, other: &Partition<Q>) -> bool {
        self.sorted_weights() == other.sorted_weights()
    }

    /// `true` if the two partitions' sorted weights agree within the given
    /// relative tolerance entry by entry.
    pub fn approx_same_weights_as<Q: Bisectable>(
        &self,
        other: &Partition<Q>,
        rel_tol: f64,
    ) -> bool {
        let a = self.sorted_weights();
        let b = other.sorted_weights();
        a.len() == b.len()
            && a.iter()
                .zip(&b)
                .all(|(x, y)| (x - y).abs() <= rel_tol * x.abs().max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic_alpha::FixedAlpha;

    fn pieces(ws: &[f64]) -> Vec<FixedAlpha> {
        ws.iter().map(|&w| FixedAlpha::new(w, 0.5)).collect()
    }

    #[test]
    fn basic_metrics() {
        let p = Partition::new(pieces(&[1.0, 3.0, 2.0, 2.0]), 8.0, 4);
        assert_eq!(p.len(), 4);
        assert_eq!(p.max_weight(), 3.0);
        assert_eq!(p.min_weight(), 1.0);
        assert_eq!(p.ideal_weight(), 2.0);
        assert!((p.ratio() - 1.5).abs() < 1e-12);
        assert!((p.spread() - 3.0).abs() < 1e-12);
        assert!(p.check_conservation(1e-12));
    }

    #[test]
    fn fewer_pieces_than_requested_raise_ratio() {
        // 2 pieces on 4 processors: ideal is total/4, so the ratio reflects
        // the idle processors.
        let p = Partition::new(pieces(&[4.0, 4.0]), 8.0, 4);
        assert!((p.ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sorted_weights_and_equality() {
        let a = Partition::new(pieces(&[2.0, 1.0, 3.0]), 6.0, 3);
        let b = Partition::new(pieces(&[3.0, 2.0, 1.0]), 6.0, 3);
        assert!(a.same_weights_as(&b));
        let c = Partition::new(pieces(&[3.0, 2.0, 1.0 + 1e-13]), 6.0, 3);
        assert!(!a.same_weights_as(&c));
        assert!(a.approx_same_weights_as(&c, 1e-9));
    }

    #[test]
    fn conservation_detects_loss() {
        let p = Partition::new(pieces(&[1.0, 1.0]), 3.0, 2);
        assert!(!p.check_conservation(1e-9));
    }

    #[test]
    #[should_panic(expected = "at least one piece")]
    fn empty_partition_panics() {
        let _ = Partition::<FixedAlpha>::new(vec![], 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_pieces_panics() {
        let _ = Partition::new(pieces(&[1.0, 1.0]), 2.0, 1);
    }
}
