//! Algorithm **BA** — Best Approximation of ideal weight (Figure 3).
//!
//! ```text
//! algorithm BA(p, N):
//!     if N = 1 then return {p}
//!     bisect p into p1 and p2                       // α̂ := w(p1)/w(p)
//!     N1 := the integer neighbour of α̂·N minimising max(w(p1)/N1, w(p2)/N2)
//!     N2 := N − N1
//!     return BA(p1, N1) ∪ BA(p2, N2)                // in parallel
//! ```
//!
//! BA is *inherently parallel*: the two recursive calls are independent,
//! need **no global communication**, and free-processor management is a
//! trivial range computation (§3.4) — a problem holding the processor range
//! `[i, j]` keeps `[i, i+N1−1]` for `p1` and sends `p2` to processor
//! `i + N1` with range `[i+N1, j]`. Unlike HF/PHF it does not need to know
//! the class parameter α.
//!
//! The processor split rule is the reconstructed Lemma-4 rule (see
//! `DESIGN.md` §2): with `α̂ = w(p1)/w(p)` and `d = α̂N − ⌊α̂N⌋`, the floor
//! choice is optimal iff `d ≤ α̂`. [`split_processors`] implements it and
//! the tests verify both its optimality (against brute force) and the
//! Lemma 4 guarantee `max(w(p1)/N1, w(p2)/N2) ≤ w(p)/(N−1)`.

use crate::partition::Partition;
use crate::problem::Bisectable;
use crate::tree::{BisectionTree, NoRecord, NodeId, Recorder};

/// Splits `n ≥ 2` processors between two subproblems of weights `w1`, `w2`
/// so that `max(w1/n1, w2/n2)` is minimised; returns `(n1, n2)` with
/// `n1 + n2 = n` and `n1, n2 ≥ 1`.
///
/// Implements the paper's best-approximation rule: with
/// `α̂ = w1/(w1+w2)` and `d = α̂·n − ⌊α̂·n⌋`, pick `n1 = ⌊α̂·n⌋` iff
/// `d ≤ α̂`, else `n1 = ⌈α̂·n⌉`. For `n ≥ 2` and positive weights the rule
/// automatically yields `n1 ∈ [1, n−1]`; the final clamp merely guards
/// against floating-point pathologies.
///
/// ```
/// use gb_core::ba::split_processors;
///
/// // 30% / 70% of the weight on 10 processors: a 3 / 7 split is exact.
/// assert_eq!(split_processors(0.3, 0.7, 10), (3, 7));
/// // Even a sliver of weight gets one processor.
/// assert_eq!(split_processors(0.001, 0.999, 2), (1, 1));
/// ```
///
/// # Panics
/// Panics if `n < 2` or either weight is not positive and finite.
pub fn split_processors(w1: f64, w2: f64, n: usize) -> (usize, usize) {
    assert!(n >= 2, "cannot split {n} < 2 processors");
    assert!(
        w1.is_finite() && w1 > 0.0 && w2.is_finite() && w2 > 0.0,
        "weights must be positive and finite (got {w1}, {w2})"
    );
    let alpha_hat = w1 / (w1 + w2);
    let ideal = alpha_hat * n as f64;
    let floor = ideal.floor();
    let d = ideal - floor;
    let pick_floor = d <= alpha_hat;
    let n1 = if pick_floor { floor } else { floor + 1.0 } as usize;
    let n1 = n1.clamp(1, n - 1);
    (n1, n - n1)
}

/// Runs BA, splitting `p` into at most `n` subproblems.
///
/// ```
/// use gb_core::ba::ba;
/// use gb_core::synthetic_alpha::FixedAlpha;
///
/// // BA needs no knowledge of the class parameter α.
/// let partition = ba(FixedAlpha::new(8.0, 0.25), 8);
/// assert_eq!(partition.len(), 8);
/// assert!(partition.check_conservation(1e-12));
/// ```
///
/// # Panics
/// Panics if `n == 0`.
pub fn ba<P: Bisectable>(p: P, n: usize) -> Partition<P> {
    let mut rec = NoRecord;
    ba_rec(p, n, &mut rec)
}

/// Runs BA and additionally returns the bisection tree of the run.
pub fn ba_traced<P: Bisectable>(p: P, n: usize) -> (Partition<P>, BisectionTree) {
    let mut tree = BisectionTree::with_pieces_capacity(n);
    let partition = ba_rec(p, n, &mut tree);
    (partition, tree)
}

/// BA with an arbitrary recorder.
pub fn ba_rec<P: Bisectable, R: Recorder>(p: P, n: usize, rec: &mut R) -> Partition<P> {
    assert!(n > 0, "BA needs at least one processor");
    let total = p.weight();
    let root = rec.root(total);
    let pieces = ba_ranged_pieces(p, n, root, 0, rec);
    Partition::new(pieces.into_iter().map(|rp| rp.problem).collect(), total, n)
}

/// A subproblem together with the contiguous processor range BA assigned
/// to it — the paper's communication-free free-processor management.
#[derive(Debug, Clone, PartialEq)]
pub struct RangedPiece<P> {
    /// The subproblem.
    pub problem: P,
    /// First processor (0-based) of the range assigned to this piece.
    pub first_proc: usize,
    /// Number of processors assigned (1 unless the piece turned atomic
    /// while still holding a larger range).
    pub procs: usize,
    /// The bisection-tree leaf of this piece ([`NodeId::DUMMY`] untraced).
    pub node: NodeId,
}

impl<P> RangedPiece<P> {
    /// The half-open processor range `[first_proc, first_proc + procs)`.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.first_proc..self.first_proc + self.procs
    }
}

/// Runs BA and returns each piece with its processor range; the piece of
/// range `[i, j]` resides on processor `i` (the paper's invariant).
pub fn ba_with_ranges<P: Bisectable>(p: P, n: usize) -> Vec<RangedPiece<P>> {
    assert!(n > 0, "BA needs at least one processor");
    let mut rec = NoRecord;
    let root = rec.root(p.weight());
    ba_ranged_pieces(p, n, root, 0, &mut rec)
}

/// Iterative BA work loop (explicit stack: BA recursion depth is
/// `O(log N / α)` in the worst case, but an explicit stack makes the
/// function immune to pathological inputs).
fn ba_ranged_pieces<P: Bisectable, R: Recorder>(
    p: P,
    n: usize,
    root: NodeId,
    base: usize,
    rec: &mut R,
) -> Vec<RangedPiece<P>> {
    let mut out = Vec::with_capacity(n);
    let mut stack: Vec<(P, usize, usize, NodeId)> = vec![(p, n, base, root)];
    while let Some((q, m, first, id)) = stack.pop() {
        if m == 1 || !q.can_bisect() {
            out.push(RangedPiece {
                problem: q,
                first_proc: first,
                procs: m,
                node: id,
            });
            continue;
        }
        let (q1, q2) = q.bisect();
        let (n1, n2) = split_processors(q1.weight(), q2.weight(), m);
        let (id1, id2) = rec.record(id, q1.weight(), q2.weight());
        // q1 stays on the first processor of the range; q2 is sent to the
        // processor just past q1's range.
        stack.push((q2, n2, first + n1, id2));
        stack.push((q1, n1, first, id1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::ba_upper_bound;
    use crate::synthetic_alpha::{AtomicAfter, CycleAlpha, FixedAlpha};
    use proptest::prelude::*;

    /// Brute-force optimal split for cross-checking the closed-form rule.
    fn brute_force_split(w1: f64, w2: f64, n: usize) -> f64 {
        (1..n)
            .map(|n1| (w1 / n1 as f64).max(w2 / (n - n1) as f64))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn split_examples() {
        // Equal weights, even n: perfect halves.
        assert_eq!(split_processors(1.0, 1.0, 10), (5, 5));
        // 30/70 of 10 processors → 3/7 exactly.
        assert_eq!(split_processors(3.0, 7.0, 10), (3, 7));
        // Tiny fraction still gets one processor.
        assert_eq!(split_processors(0.001, 0.999, 2), (1, 1));
        assert_eq!(split_processors(0.999, 0.001, 2), (1, 1));
    }

    #[test]
    fn split_is_optimal_vs_brute_force() {
        let weights = [0.01, 0.1, 0.25, 0.33, 0.49, 0.5];
        for &a in &weights {
            let w1 = a;
            let w2 = 1.0 - a;
            for n in 2..=60 {
                let (n1, n2) = split_processors(w1, w2, n);
                assert_eq!(n1 + n2, n);
                assert!(n1 >= 1 && n2 >= 1);
                let got = (w1 / n1 as f64).max(w2 / n2 as f64);
                let best = brute_force_split(w1, w2, n);
                assert!(
                    got <= best + 1e-12,
                    "w1={w1} n={n}: rule gives {got}, optimum {best}"
                );
            }
        }
    }

    #[test]
    fn split_satisfies_lemma_4() {
        // Lemma 4: max(w1/n1, w2/n2) ≤ w(p)/(N−1).
        for i in 1..100 {
            let w1 = i as f64 / 200.0; // α̂ ∈ (0, 0.5]
            let w2 = 1.0 - w1;
            for n in 2..=64 {
                let (n1, n2) = split_processors(w1, w2, n);
                let lhs = (w1 / n1 as f64).max(w2 / n2 as f64);
                assert!(
                    lhs <= 1.0 / (n - 1) as f64 + 1e-12,
                    "w1={w1} n={n}: {lhs} > 1/(n-1)"
                );
            }
        }
    }

    #[test]
    fn ba_single_processor() {
        let part = ba(FixedAlpha::new(4.0, 0.4), 1);
        assert_eq!(part.len(), 1);
        assert_eq!(part.ratio(), 1.0);
    }

    #[test]
    fn ba_produces_n_pieces_and_conserves_weight() {
        for n in 1..=80 {
            let part = ba(FixedAlpha::new(1.0, 0.31), n);
            assert_eq!(part.len(), n, "n = {n}");
            assert!(part.check_conservation(1e-9));
        }
    }

    #[test]
    fn ba_traced_counts() {
        let (part, tree) = ba_traced(FixedAlpha::new(1.0, 0.42), 23);
        assert_eq!(part.len(), 23);
        assert_eq!(tree.bisection_count(), 22);
        assert!(tree.verify_alpha(0.42, 1e-9).is_ok());
    }

    #[test]
    fn ba_ranges_partition_processors() {
        let pieces = ba_with_ranges(FixedAlpha::new(1.0, 0.27), 37);
        // Ranges must tile [0, 37) without gaps or overlaps.
        let mut sorted = pieces.clone();
        sorted.sort_by_key(|p| p.first_proc);
        let mut next = 0;
        for piece in &sorted {
            assert_eq!(piece.first_proc, next, "gap or overlap at {next}");
            assert!(piece.procs >= 1);
            next += piece.procs;
        }
        assert_eq!(next, 37);
        // Fully divisible problems: each piece uses exactly one processor.
        assert!(sorted.iter().all(|p| p.procs == 1));
    }

    #[test]
    fn ba_atomic_piece_keeps_its_whole_range() {
        let p = AtomicAfter::new(1.0, 0.5, 0.3);
        let pieces = ba_with_ranges(p, 16);
        // Pieces of weight 0.25 are atomic; 4 pieces of 4 processors each.
        assert_eq!(pieces.len(), 4);
        assert!(pieces.iter().all(|p| p.procs == 4));
    }

    #[test]
    fn ba_ratio_within_theorem_7() {
        for &alpha in &[0.05, 0.1, 0.2, 1.0 / 3.0, 0.5] {
            for &n in &[2usize, 5, 16, 100, 512, 4096] {
                let part = ba(FixedAlpha::new(1.0, alpha), n);
                let bound = ba_upper_bound(alpha, n);
                assert!(
                    part.ratio() <= bound + 1e-9,
                    "alpha={alpha} n={n}: ratio {} > bound {bound}",
                    part.ratio()
                );
            }
        }
    }

    #[test]
    fn ba_needs_no_alpha_knowledge() {
        // BA on a class whose α it was never told: still valid and bounded.
        let p = CycleAlpha::new(1.0, &[0.45, 0.18, 0.5]);
        let part = ba(p, 40);
        assert_eq!(part.len(), 40);
        assert!(part.ratio() <= ba_upper_bound(0.18, 40) + 1e-9);
    }

    proptest! {
        #[test]
        fn prop_split_rule_matches_brute_force(
            frac in 0.001f64..=0.999,
            n in 2usize..200,
        ) {
            let w1 = frac;
            let w2 = 1.0 - frac;
            let (n1, n2) = split_processors(w1, w2, n);
            prop_assert_eq!(n1 + n2, n);
            prop_assert!(n1 >= 1 && n2 >= 1);
            let got = (w1 / n1 as f64).max(w2 / n2 as f64);
            prop_assert!(got <= brute_force_split(w1, w2, n) + 1e-12);
            // Lemma 4.
            prop_assert!(got <= 1.0 / (n - 1) as f64 + 1e-12);
        }

        #[test]
        fn prop_ba_piece_count_and_conservation(
            alpha in 0.01f64..=0.5,
            n in 1usize..300,
        ) {
            let part = ba(FixedAlpha::new(1.0, alpha), n);
            prop_assert_eq!(part.len(), n);
            prop_assert!(part.check_conservation(1e-9));
            prop_assert!(part.ratio() <= ba_upper_bound(alpha, n) + 1e-9);
        }

        #[test]
        fn prop_ba_ranges_tile(
            alpha in 0.05f64..=0.5,
            n in 1usize..200,
        ) {
            let mut pieces = ba_with_ranges(FixedAlpha::new(1.0, alpha), n);
            pieces.sort_by_key(|p| p.first_proc);
            let mut next = 0;
            for piece in &pieces {
                prop_assert_eq!(piece.first_proc, next);
                next += piece.procs;
            }
            prop_assert_eq!(next, n);
        }
    }
}
