//! Deterministic, dependency-free pseudo-random number generation.
//!
//! The simulation study (and, more importantly, the *determinism contract*
//! of the problem classes — see `DESIGN.md` §5) requires that the two
//! children of a problem node are a pure function of the node. We therefore
//! use counter/seed-based generators whose state is a couple of `u64`s that
//! can be embedded directly in problem values:
//!
//! * [`SplitMix64`] — the classic 64-bit mixer; ideal for deriving child
//!   seeds from a parent seed (`split`), and for seeding larger generators.
//! * [`Xoshiro256StarStar`] — a fast, high-quality generator used by the
//!   experiment harness for trial-level randomness.
//!
//! Both are tiny, well-known algorithms re-implemented here so that the
//! bit-exact reproducibility of every experiment does not depend on the
//! version of an external crate.

/// SplitMix64: a 64-bit state mixer (Steele, Lea, Flood 2014).
///
/// Produces a high-quality 64-bit stream from sequential increments of a
/// counter. Its real role in this workspace is *seed derivation*: given a
/// node seed, the seeds of the two bisection children are
/// `mix(seed, 1)` and `mix(seed, 2)` — pure functions of the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output and advances the state.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Returns the next output as a `f64` uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        u64_to_unit_f64(self.next_u64())
    }

    /// Derives an independent child seed; deterministic in `(seed, lane)`.
    #[inline]
    pub fn derive(seed: u64, lane: u64) -> u64 {
        mix64(
            seed.wrapping_add(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(lane.wrapping_mul(0xBF58_476D_1CE4_E5B9)),
        )
    }
}

/// The 64-bit finalizer at the heart of SplitMix64.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Converts a `u64` to a `f64` uniform in `[0, 1)` using the top 53 bits.
#[inline]
pub fn u64_to_unit_f64(x: u64) -> f64 {
    // 2^-53; the mantissa of an f64 has 53 significand bits.
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    ((x >> 11) as f64) * SCALE
}

/// xoshiro256** 1.0 (Blackman & Vigna 2018).
///
/// A small-state, fast generator with excellent statistical quality; used
/// for trial-level randomness in the simulation harness. Seeded through
/// SplitMix64 as its authors recommend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a single `u64` seed via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the single invalid state; SplitMix64 cannot
        // produce four consecutive zeros, but be defensive anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a `f64` uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        u64_to_unit_f64(self.next_u64())
    }

    /// Returns a `f64` uniform in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is not finite.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a `usize` uniform in `[0, n)` (unbiased via rejection).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn range_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "range_usize(0)");
        let n = n as u64;
        // Lemire-style rejection sampling.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Forks a statistically independent generator (jump-free variant:
    /// derive the fork's seed from the next output, then advance).
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain
        // reference implementation (Vigna).
        let mut sm = SplitMix64::new(1234567);
        let expect = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for e in expect {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn derive_differs_by_lane_and_seed() {
        let a = SplitMix64::derive(7, 1);
        let b = SplitMix64::derive(7, 2);
        let c = SplitMix64::derive(8, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Pure function: same inputs, same output.
        assert_eq!(a, SplitMix64::derive(7, 1));
    }

    #[test]
    fn unit_f64_in_range() {
        let mut x = Xoshiro256StarStar::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = x.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut x = Xoshiro256StarStar::seed_from_u64(10);
        for _ in 0..10_000 {
            let v = x.range_f64(0.1, 0.5);
            assert!((0.1..0.5).contains(&v));
        }
    }

    #[test]
    fn range_f64_mean_is_plausible() {
        let mut x = Xoshiro256StarStar::seed_from_u64(11);
        let n = 100_000;
        let mean = (0..n).map(|_| x.range_f64(0.0, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn range_usize_covers_all_values() {
        let mut x = Xoshiro256StarStar::seed_from_u64(12);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[x.range_usize(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_produces_distinct_streams() {
        let mut a = Xoshiro256StarStar::seed_from_u64(5);
        let mut b = a.fork();
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn xoshiro_seeding_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(77);
        let mut b = Xoshiro256StarStar::seed_from_u64(77);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
