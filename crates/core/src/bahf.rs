//! Algorithm **BA-HF** — the combined algorithm of §3.3 (Figure 4).
//!
//! ```text
//! algorithm BA-HF(p, N):
//!     if N ≥ θ/α + 1 then
//!         bisect p into p1 and p2; split N as in BA
//!         return BA-HF(p1, N1) ∪ BA-HF(p2, N2)
//!     else
//!         return HF(p, N)        // or PHF(p, N) in the parallel setting
//! ```
//!
//! While the processor count of a subproblem is large (`N ≥ θ/α + 1`)
//! BA-HF behaves like BA — inherently parallel, cheap free-processor
//! management. Below the threshold it switches to HF, whose partitions are
//! better balanced. The threshold parameter `θ > 0` trades parallel
//! structure against balance quality: Theorem 8 bounds the ratio by
//! `e^{(1−α)/θ} · r_α`, so choosing `θ ≥ 1/ln(1+ε)` puts BA-HF within a
//! factor `1+ε` of HF's guarantee (at the price of a longer sequential
//! tail). Unlike BA, BA-HF must *know* α to evaluate its threshold.
//!
//! §4 of the paper studies θ empirically: going from θ = 1 to θ = 2
//! improved the average ratio by ≈10%, θ = 3 by another ≈5%
//! (reproduced by `gb-simstudy::theta`).

use crate::error::{check_alpha, check_theta};
use crate::hf::hf_pieces;
use crate::partition::Partition;
use crate::problem::{AlphaBisectable, Bisectable};
use crate::tree::{BisectionTree, NoRecord, NodeId, Recorder};

/// The processor-count threshold below which BA-HF switches to HF:
/// subproblems with fewer than `θ/α + 1` processors are handled by HF.
///
/// # Panics
/// Panics on invalid `alpha` or `theta` (see [`crate::error`]).
pub fn switch_threshold(alpha: f64, theta: f64) -> f64 {
    check_alpha(alpha).expect("invalid alpha");
    check_theta(theta).expect("invalid theta");
    theta / alpha + 1.0
}

/// Runs BA-HF with explicit class parameter `alpha` and threshold `theta`.
///
/// ```
/// use gb_core::bahf::ba_hf;
/// use gb_core::hf::hf;
/// use gb_core::ba::ba;
/// use gb_core::synthetic_alpha::FixedAlpha;
///
/// let p = FixedAlpha::new(1.0, 0.3);
/// // A huge θ makes BA-HF behave exactly like HF …
/// let like_hf = ba_hf(p, 64, 0.3, 1e9);
/// assert!(like_hf.same_weights_as(&hf(p, 64)));
/// // … and a tiny θ exactly like BA.
/// let like_ba = ba_hf(p, 64, 0.3, 1e-9);
/// assert!(like_ba.same_weights_as(&ba(p, 64)));
/// ```
///
/// # Panics
/// Panics if `n == 0`, `alpha ∉ (0, 1/2]` or `theta ≤ 0`.
pub fn ba_hf<P: Bisectable>(p: P, n: usize, alpha: f64, theta: f64) -> Partition<P> {
    let mut rec = NoRecord;
    ba_hf_rec(p, n, alpha, theta, &mut rec)
}

/// Runs BA-HF on a problem that knows its own α.
pub fn ba_hf_auto<P: AlphaBisectable>(p: P, n: usize, theta: f64) -> Partition<P> {
    let alpha = p.alpha();
    ba_hf(p, n, alpha, theta)
}

/// Runs BA-HF and additionally returns the bisection tree of the run.
pub fn ba_hf_traced<P: Bisectable>(
    p: P,
    n: usize,
    alpha: f64,
    theta: f64,
) -> (Partition<P>, BisectionTree) {
    let mut tree = BisectionTree::with_pieces_capacity(n);
    let partition = ba_hf_rec(p, n, alpha, theta, &mut tree);
    (partition, tree)
}

/// BA-HF with an arbitrary recorder.
pub fn ba_hf_rec<P: Bisectable, R: Recorder>(
    p: P,
    n: usize,
    alpha: f64,
    theta: f64,
    rec: &mut R,
) -> Partition<P> {
    assert!(n > 0, "BA-HF needs at least one processor");
    let threshold = switch_threshold(alpha, theta);
    let total = p.weight();
    let root = rec.root(total);

    // BA phase: expand subproblems whose processor count is at least the
    // threshold; everything below goes to the HF phase.
    let mut hf_jobs: Vec<(P, usize, NodeId)> = Vec::new();
    let mut stack: Vec<(P, usize, NodeId)> = vec![(p, n, root)];
    while let Some((q, m, id)) = stack.pop() {
        if (m as f64) < threshold || m == 1 || !q.can_bisect() {
            hf_jobs.push((q, m, id));
            continue;
        }
        let (q1, q2) = q.bisect();
        let (n1, n2) = crate::ba::split_processors(q1.weight(), q2.weight(), m);
        let (id1, id2) = rec.record(id, q1.weight(), q2.weight());
        stack.push((q2, n2, id2));
        stack.push((q1, n1, id1));
    }

    // HF phase: each BA leaf is partitioned among its own processors with
    // plain HF (the sequential semantics; the parallel setting may use PHF
    // here — see `gb-parlb`).
    let mut pieces: Vec<P> = Vec::with_capacity(n);
    for (q, m, id) in hf_jobs {
        let sub = hf_pieces(vec![(q, id)], m, rec);
        pieces.extend(sub.into_iter().map(|(piece, _)| piece));
    }
    Partition::new(pieces, total, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ba::ba;
    use crate::bounds::bahf_upper_bound;
    use crate::hf::hf;
    use crate::synthetic_alpha::{AtomicAfter, FixedAlpha};
    use proptest::prelude::*;

    #[test]
    fn threshold_formula() {
        assert!((switch_threshold(0.5, 1.0) - 3.0).abs() < 1e-12);
        assert!((switch_threshold(0.1, 2.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid alpha")]
    fn threshold_rejects_bad_alpha() {
        switch_threshold(0.7, 1.0);
    }

    #[test]
    fn small_n_is_pure_hf() {
        // With N < θ/α + 1 the whole run is HF.
        let alpha = 0.3;
        let theta = 2.0;
        let n = 7; // θ/α + 1 = 7.67 > 7
        let p = FixedAlpha::new(1.0, alpha);
        let combined = ba_hf(p, n, alpha, theta);
        let plain = hf(p, n);
        assert!(combined.same_weights_as(&plain));
    }

    #[test]
    fn tiny_theta_is_pure_ba_on_divisible_problems() {
        // θ so small that the threshold is below 2: BA all the way down.
        let alpha = 0.4;
        let theta = 1e-9;
        let p = FixedAlpha::new(1.0, alpha);
        let combined = ba_hf(p, 64, alpha, theta);
        let plain = ba(p, 64);
        assert!(combined.same_weights_as(&plain));
    }

    #[test]
    fn produces_n_pieces() {
        for n in 1..=96 {
            let part = ba_hf(FixedAlpha::new(1.0, 0.22), n, 0.22, 1.0);
            assert_eq!(part.len(), n, "n = {n}");
            assert!(part.check_conservation(1e-9));
        }
    }

    #[test]
    fn quality_sits_between_hf_and_ba_on_average() {
        // Not a theorem for a single instance, but for the fixed-α class the
        // ordering HF ≤ BA-HF ≤ BA holds at moderate sizes; spot-check a
        // couple of configurations as a smoke test of the combination.
        let alpha = 0.29;
        let p = FixedAlpha::new(1.0, alpha);
        for &n in &[64usize, 256] {
            let r_hf = hf(p, n).ratio();
            let r_bahf = ba_hf(p, n, alpha, 1.0).ratio();
            let r_ba = ba(p, n).ratio();
            assert!(
                r_hf <= r_bahf + 1e-9 && r_bahf <= r_ba + 1e-9,
                "n={n}: hf={r_hf} bahf={r_bahf} ba={r_ba}"
            );
        }
    }

    #[test]
    fn traced_tree_is_consistent() {
        let (part, tree) = ba_hf_traced(FixedAlpha::new(1.0, 0.17), 50, 0.17, 1.5);
        assert_eq!(tree.leaf_count(), 50);
        assert_eq!(tree.bisection_count(), 49);
        let mut tw = tree.leaf_weights();
        tw.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(tw, part.sorted_weights());
    }

    #[test]
    fn atomic_problems_respected() {
        let p = AtomicAfter::new(1.0, 0.5, 0.2);
        let part = ba_hf(p, 32, 0.5, 1.0);
        assert_eq!(part.len(), 8); // atomic at weight 0.125 ≤ 0.2
        assert!(part.check_conservation(1e-12));
    }

    proptest! {
        #[test]
        fn prop_bahf_within_theorem_8(
            alpha in 0.02f64..=0.5,
            theta in 0.25f64..4.0,
            n in 1usize..300,
        ) {
            let part = ba_hf(FixedAlpha::new(1.0, alpha), n, alpha, theta);
            prop_assert_eq!(part.len(), n);
            let bound = bahf_upper_bound(alpha, theta, n);
            prop_assert!(
                part.ratio() <= bound + 1e-9,
                "ratio {} > bound {} (alpha={}, theta={}, n={})",
                part.ratio(), bound, alpha, theta, n
            );
        }

        #[test]
        fn prop_bahf_conserves_weight(
            alpha in 0.02f64..=0.5,
            theta in 0.25f64..4.0,
            n in 1usize..200,
        ) {
            let part = ba_hf(FixedAlpha::new(3.7, alpha), n, alpha, theta);
            prop_assert!(part.check_conservation(1e-9));
        }
    }
}
