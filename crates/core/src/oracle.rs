//! An exhaustive optimality oracle for small instances.
//!
//! On a *deterministic* problem (bisection a pure function of the value),
//! every bisection-based algorithm chooses an **ancestor-closed** set of
//! `N−1` nodes of the same infinite bisection tree to bisect; the achieved
//! maximum is the heaviest resulting leaf. [`optimal_max_weight`] searches
//! *all* such sets (exponential — intended for cross-checking at small
//! `N`) and returns the true optimum.
//!
//! A simple exchange argument shows HF attains this optimum: node weights
//! strictly decrease downward (fractions are < 1), so the `N−1` globally
//! heaviest nodes form an ancestor-closed set, and any ancestor-closed
//! set of `N−1` bisections leaves some piece at least as heavy as the
//! `N`-th heaviest node — which is exactly HF's maximum. The oracle tests
//! pin this argument down mechanically, guarding both the HF
//! implementation and the determinism contract.

use crate::problem::Bisectable;

/// The minimum achievable maximum piece weight over *all* ways of
/// performing at most `n − 1` bisections on `p`.
///
/// Runs in time exponential in `n`; intended for `n ≤ 10`.
///
/// # Panics
/// Panics if `n == 0` or `n > 16` (guard against accidental blow-up).
pub fn optimal_max_weight<P: Bisectable + Clone>(p: P, n: usize) -> f64 {
    assert!(n > 0, "need at least one processor");
    assert!(n <= 16, "oracle is exponential; use n <= 16");
    let mut best = f64::INFINITY;
    let mut pieces = vec![p];
    search(&mut pieces, n, &mut best);
    best
}

fn max_weight<P: Bisectable>(pieces: &[P]) -> f64 {
    pieces
        .iter()
        .map(|q| q.weight())
        .fold(f64::NEG_INFINITY, f64::max)
}

fn search<P: Bisectable + Clone>(pieces: &mut Vec<P>, n: usize, best: &mut f64) {
    let current = max_weight(pieces);
    if pieces.len() == n {
        if current < *best {
            *best = current;
        }
        return;
    }
    // Plain exhaustive branching: try bisecting every piece. (Bisecting
    // never increases the maximum, so stopping early with fewer than `n`
    // pieces is never strictly better and need not be branched on — except
    // when everything is atomic, handled below.)
    for i in 0..pieces.len() {
        if !pieces[i].can_bisect() {
            continue;
        }
        let q = pieces[i].clone();
        let (a, b) = q.bisect();
        let removed = pieces.swap_remove(i);
        pieces.push(a);
        pieces.push(b);
        search(pieces, n, best);
        pieces.pop();
        pieces.pop();
        pieces.push(removed);
        let last = pieces.len() - 1;
        pieces.swap(i, last);
    }
    // If nothing was bisectable, record what we have.
    if pieces.iter().all(|q| !q.can_bisect()) && current < *best {
        *best = current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ba::ba;
    use crate::hf::hf;
    use crate::rng::SplitMix64;
    use crate::synthetic_alpha::{AtomicAfter, FixedAlpha};

    /// Local copy of the seeded stochastic model (gb-core cannot depend on
    /// gb-problems).
    #[derive(Debug, Clone, Copy)]
    struct RandomSplit {
        w: f64,
        seed: u64,
    }

    impl Bisectable for RandomSplit {
        fn weight(&self) -> f64 {
            self.w
        }

        fn bisect(&self) -> (Self, Self) {
            let u = crate::rng::u64_to_unit_f64(SplitMix64::derive(self.seed, 0));
            let frac = 0.1 + 0.4 * u;
            (
                Self {
                    w: frac * self.w,
                    seed: SplitMix64::derive(self.seed, 1),
                },
                Self {
                    w: (1.0 - frac) * self.w,
                    seed: SplitMix64::derive(self.seed, 2),
                },
            )
        }
    }

    #[test]
    fn hf_attains_the_optimum_fixed_alpha() {
        for &alpha in &[0.2, 1.0 / 3.0, 0.5] {
            for n in 1..=8 {
                let p = FixedAlpha::new(1.0, alpha);
                let opt = optimal_max_weight(p, n);
                let got = hf(p, n).max_weight();
                assert!(
                    (got - opt).abs() <= 1e-12,
                    "alpha={alpha} n={n}: HF {got} vs optimum {opt}"
                );
            }
        }
    }

    #[test]
    fn hf_attains_the_optimum_random_instances() {
        for seed in 0..25 {
            let p = RandomSplit { w: 1.0, seed };
            for n in 2..=7 {
                let opt = optimal_max_weight(p, n);
                let got = hf(p, n).max_weight();
                assert!(
                    (got - opt).abs() <= 1e-12,
                    "seed={seed} n={n}: HF {got} vs optimum {opt}"
                );
            }
        }
    }

    #[test]
    fn ba_never_beats_the_optimum() {
        for seed in 0..15 {
            let p = RandomSplit { w: 1.0, seed };
            for n in 2..=7 {
                let opt = optimal_max_weight(p, n);
                let got = ba(p, n).max_weight();
                assert!(got >= opt - 1e-12, "seed={seed} n={n}");
            }
        }
    }

    #[test]
    fn oracle_handles_atomic_problems() {
        // Atomic below 0.3: only 4 pieces are reachable; the oracle must
        // still return the best achievable (0.25), not loop forever.
        let p = AtomicAfter::new(1.0, 0.5, 0.3);
        let opt = optimal_max_weight(p, 8);
        assert!((opt - 0.25).abs() < 1e-12, "opt = {opt}");
        assert_eq!(hf(p, 8).max_weight(), opt);
    }

    #[test]
    fn single_processor_returns_input_weight() {
        let p = FixedAlpha::new(3.5, 0.4);
        assert_eq!(optimal_max_weight(p, 1), 3.5);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn oversized_n_is_rejected() {
        optimal_max_weight(FixedAlpha::new(1.0, 0.5), 17);
    }
}
