//! Small self-contained problem classes for tests, docs and worst-case
//! exploration.
//!
//! The full stochastic model of the paper's §4 (`α̂ ~ U[l, u]` i.i.d. per
//! bisection) lives in the `gb-problems` crate; the classes here are the
//! deterministic skeletons used by unit tests, doctests and the adversarial
//! bound-tightness experiments:
//!
//! * [`FixedAlpha`] — every bisection splits exactly `α / (1−α)`; the
//!   classic worst-case shape for heaviest-first analysis.
//! * [`CycleAlpha`] — bisections cycle deterministically through a list of
//!   split fractions (depth-dependent adversaries).
//! * [`AtomicAfter`] — wraps [`FixedAlpha`] but refuses to bisect below a
//!   weight floor, exercising the `can_bisect` paths of all algorithms.

use crate::problem::{AlphaBisectable, Bisectable};

/// A problem whose bisections always split `α` / `1−α`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedAlpha {
    weight: f64,
    alpha: f64,
}

impl FixedAlpha {
    /// Creates a problem of the given weight in the class with parameter
    /// `alpha ∈ (0, 1/2]`.
    ///
    /// # Panics
    /// Panics on invalid weight or α.
    pub fn new(weight: f64, alpha: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "invalid weight {weight}"
        );
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 0.5,
            "invalid alpha {alpha}"
        );
        Self { weight, alpha }
    }
}

impl Bisectable for FixedAlpha {
    fn weight(&self) -> f64 {
        self.weight
    }

    fn bisect(&self) -> (Self, Self) {
        (
            Self {
                weight: self.alpha * self.weight,
                alpha: self.alpha,
            },
            Self {
                weight: (1.0 - self.alpha) * self.weight,
                alpha: self.alpha,
            },
        )
    }
}

impl AlphaBisectable for FixedAlpha {
    fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// A problem whose split fraction depends deterministically on the depth:
/// bisections at depth `d` use `fractions[d % fractions.len()]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleAlpha {
    weight: f64,
    depth: usize,
    fractions: std::sync::Arc<[f64]>,
}

impl CycleAlpha {
    /// Creates the root problem.
    ///
    /// # Panics
    /// Panics if `fractions` is empty or any fraction is outside `(0, 1/2]`.
    pub fn new(weight: f64, fractions: &[f64]) -> Self {
        assert!(!fractions.is_empty(), "need at least one fraction");
        for &f in fractions {
            assert!(
                f.is_finite() && f > 0.0 && f <= 0.5,
                "fraction {f} outside (0, 1/2]"
            );
        }
        assert!(weight.is_finite() && weight > 0.0);
        Self {
            weight,
            depth: 0,
            fractions: fractions.into(),
        }
    }

    /// The class guarantee: the smallest fraction in the cycle.
    pub fn min_fraction(&self) -> f64 {
        self.fractions.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

impl Bisectable for CycleAlpha {
    fn weight(&self) -> f64 {
        self.weight
    }

    fn bisect(&self) -> (Self, Self) {
        let f = self.fractions[self.depth % self.fractions.len()];
        let mk = |w: f64| Self {
            weight: w,
            depth: self.depth + 1,
            fractions: self.fractions.clone(),
        };
        (mk(f * self.weight), mk((1.0 - f) * self.weight))
    }
}

impl AlphaBisectable for CycleAlpha {
    fn alpha(&self) -> f64 {
        self.min_fraction()
    }
}

/// A [`FixedAlpha`]-style problem that becomes atomic below a weight floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomicAfter {
    inner: FixedAlpha,
    floor: f64,
}

impl AtomicAfter {
    /// Creates a problem of weight `weight` splitting at `alpha` that can
    /// no longer be bisected once its weight is at most `floor`.
    pub fn new(weight: f64, alpha: f64, floor: f64) -> Self {
        assert!(floor >= 0.0 && floor.is_finite());
        Self {
            inner: FixedAlpha::new(weight, alpha),
            floor,
        }
    }
}

impl Bisectable for AtomicAfter {
    fn weight(&self) -> f64 {
        self.inner.weight()
    }

    fn bisect(&self) -> (Self, Self) {
        debug_assert!(self.can_bisect(), "bisect called on atomic problem");
        let (a, b) = self.inner.bisect();
        (
            Self {
                inner: a,
                floor: self.floor,
            },
            Self {
                inner: b,
                floor: self.floor,
            },
        )
    }

    fn can_bisect(&self) -> bool {
        self.inner.weight() > self.floor
    }
}

impl AlphaBisectable for AtomicAfter {
    fn alpha(&self) -> f64 {
        self.inner.alpha()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::validate_bisection;

    #[test]
    fn fixed_alpha_splits_exactly() {
        let p = FixedAlpha::new(8.0, 0.25);
        let (a, b) = p.bisect();
        assert_eq!(a.weight(), 2.0);
        assert_eq!(b.weight(), 6.0);
        assert!(validate_bisection(8.0, a.weight(), b.weight(), 0.25, 1e-12).is_ok());
    }

    #[test]
    fn fixed_alpha_is_deterministic() {
        let p = FixedAlpha::new(3.0, 0.4);
        assert_eq!(p.bisect(), p.bisect());
    }

    #[test]
    #[should_panic(expected = "invalid alpha")]
    fn fixed_alpha_rejects_bad_alpha() {
        FixedAlpha::new(1.0, 0.75);
    }

    #[test]
    fn cycle_alpha_cycles_through_fractions() {
        let p = CycleAlpha::new(1.0, &[0.5, 0.25]);
        let (a, _) = p.bisect(); // depth 0 uses 0.5
        assert!((a.weight() - 0.5).abs() < 1e-12);
        let (aa, ab) = a.bisect(); // depth 1 uses 0.25
        assert!((aa.weight() - 0.125).abs() < 1e-12);
        assert!((ab.weight() - 0.375).abs() < 1e-12);
        assert!((p.alpha() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn atomic_after_stops_bisecting() {
        let p = AtomicAfter::new(1.0, 0.5, 0.3);
        assert!(p.can_bisect());
        let (a, _) = p.bisect();
        assert!((a.weight() - 0.5).abs() < 1e-12);
        let (aa, _) = a.bisect();
        assert!(!aa.can_bisect(), "weight 0.25 <= floor 0.3 must be atomic");
    }
}
