//! Arena-based bisection trees.
//!
//! The paper represents a run of a bisection-based load-balancing algorithm
//! by its **bisection tree** `T_p`: the root is the input problem; whenever
//! the algorithm bisects `q` into `q1`, `q2`, the two children are added
//! under `q`. At the end the tree has (at most) `N` leaves — the computed
//! subproblems — and every bisected problem is an internal node with exactly
//! two children.
//!
//! [`BisectionTree`] stores node weights, parent/child links and depths in
//! a flat arena; it is the common currency between the sequential
//! algorithms, the simulated parallel machine and the analysis helpers
//! (depth statistics, α verification, weight conservation).

use crate::error::{Error, Result};

/// Identifier of a node inside a [`BisectionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(u32);

impl NodeId {
    /// A sentinel id used by the no-op recorder; never a valid index.
    pub const DUMMY: NodeId = NodeId(u32::MAX);

    /// The arena index of this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node of a bisection tree.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Node {
    /// Weight of the (sub)problem this node represents.
    pub weight: f64,
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
    /// The two children created by bisecting this node, if it was bisected.
    pub children: Option<(NodeId, NodeId)>,
    /// Distance from the root.
    pub depth: u32,
}

impl Node {
    /// `true` if this node was never bisected.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// Sink for bisection events; lets algorithms run traced or untraced
/// through the same code path.
pub trait Recorder {
    /// Registers the root problem, returning its id.
    fn root(&mut self, weight: f64) -> NodeId;
    /// Registers the bisection of `parent` into weights `(w_left, w_right)`.
    fn record(&mut self, parent: NodeId, w_left: f64, w_right: f64) -> (NodeId, NodeId);
}

/// A recorder that discards everything (zero-cost untraced runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRecord;

impl Recorder for NoRecord {
    #[inline]
    fn root(&mut self, _weight: f64) -> NodeId {
        NodeId::DUMMY
    }

    #[inline]
    fn record(&mut self, _parent: NodeId, _w1: f64, _w2: f64) -> (NodeId, NodeId) {
        (NodeId::DUMMY, NodeId::DUMMY)
    }
}

/// The bisection tree of an algorithm run.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BisectionTree {
    nodes: Vec<Node>,
}

impl BisectionTree {
    /// Creates an empty tree (populated through the [`Recorder`] interface).
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Creates an empty tree with room for the `2N−1` nodes of a full run.
    pub fn with_pieces_capacity(n: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(2 * n.saturating_sub(1).max(1)),
        }
    }

    /// The root node id.
    ///
    /// # Panics
    /// Panics if the tree is empty.
    pub fn root_id(&self) -> NodeId {
        assert!(!self.nodes.is_empty(), "empty bisection tree");
        NodeId(0)
    }

    /// Borrows a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no root was registered yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of leaves (= subproblems of the computed partition).
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Number of internal nodes (= bisections performed).
    pub fn bisection_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_leaf()).count()
    }

    /// Ids of all leaves, in arena order.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_leaf())
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// Weights of all leaves, in arena order.
    pub fn leaf_weights(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| n.weight)
            .collect()
    }

    /// Maximum depth over all leaves (0 for a root-only tree).
    pub fn max_leaf_depth(&self) -> u32 {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| n.depth)
            .max()
            .unwrap_or(0)
    }

    /// Minimum depth over all leaves.
    pub fn min_leaf_depth(&self) -> u32 {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| n.depth)
            .min()
            .unwrap_or(0)
    }

    /// The path from `id` up to the root (inclusive on both ends).
    pub fn path_to_root(&self, id: NodeId) -> Vec<NodeId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.nodes[cur.index()].parent {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Iterates over `(id, &node)` pairs in arena order (parents precede
    /// children).
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Verifies that every internal node's weight equals the sum of its
    /// children's weights within relative tolerance `rel_tol`.
    pub fn verify_weight_conservation(&self, rel_tol: f64) -> Result<()> {
        for node in &self.nodes {
            if let Some((l, r)) = node.children {
                let wl = self.nodes[l.index()].weight;
                let wr = self.nodes[r.index()].weight;
                if (wl + wr - node.weight).abs() > rel_tol * node.weight.abs().max(1.0) {
                    return Err(Error::BisectionContract {
                        parent: node.weight,
                        left: wl,
                        right: wr,
                        alpha: f64::NAN,
                    });
                }
            }
        }
        Ok(())
    }

    /// Verifies the α-bisector property of every recorded bisection.
    pub fn verify_alpha(&self, alpha: f64, rel_tol: f64) -> Result<()> {
        for node in &self.nodes {
            if let Some((l, r)) = node.children {
                let wl = self.nodes[l.index()].weight;
                let wr = self.nodes[r.index()].weight;
                crate::problem::validate_bisection(node.weight, wl, wr, alpha, rel_tol)?;
            }
        }
        Ok(())
    }

    /// The worst (smallest) realised split fraction over all bisections,
    /// or `None` if the tree has no internal node.
    pub fn observed_alpha(&self) -> Option<f64> {
        let mut obs = crate::problem::AlphaObserver::new();
        for node in &self.nodes {
            if let Some((l, r)) = node.children {
                obs.record(
                    node.weight,
                    self.nodes[l.index()].weight,
                    self.nodes[r.index()].weight,
                );
            }
        }
        obs.alpha()
    }

    /// Renders the tree as indented ASCII (weights to three decimals),
    /// truncated at `max_depth`. Intended for examples and debugging.
    pub fn render_ascii(&self, max_depth: u32) -> String {
        let mut out = String::new();
        if self.nodes.is_empty() {
            return out;
        }
        let mut stack = vec![self.root_id()];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if node.depth > max_depth {
                continue;
            }
            for _ in 0..node.depth {
                out.push_str("  ");
            }
            let marker = if node.is_leaf() { "leaf" } else { "split" };
            out.push_str(&format!("{marker} w={:.3}\n", node.weight));
            if let Some((l, r)) = node.children {
                stack.push(r);
                stack.push(l);
            }
        }
        out
    }
}

impl Recorder for BisectionTree {
    fn root(&mut self, weight: f64) -> NodeId {
        assert!(
            self.nodes.is_empty(),
            "root registered twice on the same tree"
        );
        self.nodes.push(Node {
            weight,
            parent: None,
            children: None,
            depth: 0,
        });
        NodeId(0)
    }

    fn record(&mut self, parent: NodeId, w_left: f64, w_right: f64) -> (NodeId, NodeId) {
        let depth = self.nodes[parent.index()].depth + 1;
        assert!(
            self.nodes[parent.index()].children.is_none(),
            "node bisected twice"
        );
        let l = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            weight: w_left,
            parent: Some(parent),
            children: None,
            depth,
        });
        let r = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            weight: w_right,
            parent: Some(parent),
            children: None,
            depth,
        });
        self.nodes[parent.index()].children = Some((l, r));
        (l, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> BisectionTree {
        // 1.0 → (0.4, 0.6); 0.6 → (0.3, 0.3)
        let mut t = BisectionTree::new();
        let root = t.root(1.0);
        let (_a, b) = t.record(root, 0.4, 0.6);
        t.record(b, 0.3, 0.3);
        t
    }

    #[test]
    fn counts_and_depths() {
        let t = sample_tree();
        assert_eq!(t.len(), 5);
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.bisection_count(), 2);
        assert_eq!(t.max_leaf_depth(), 2);
        assert_eq!(t.min_leaf_depth(), 1);
    }

    #[test]
    fn leaf_weights_sum_to_root() {
        let t = sample_tree();
        let total: f64 = t.leaf_weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weight_conservation_detects_loss() {
        let mut t = BisectionTree::new();
        let root = t.root(1.0);
        t.record(root, 0.4, 0.55); // loses 0.05
        assert!(t.verify_weight_conservation(1e-9).is_err());
        assert!(sample_tree().verify_weight_conservation(1e-12).is_ok());
    }

    #[test]
    fn alpha_verification() {
        let t = sample_tree();
        assert!(t.verify_alpha(0.4, 1e-9).is_ok());
        assert!(t.verify_alpha(0.45, 1e-9).is_err());
        assert_eq!(t.observed_alpha(), Some(0.4));
    }

    #[test]
    fn path_to_root_walks_parents() {
        let t = sample_tree();
        // Node 4 is the right child of node 2 (arena order: root, 0.4, 0.6, 0.3, 0.3).
        let path = t.path_to_root(NodeId(4));
        assert_eq!(path, vec![NodeId(4), NodeId(2), NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "bisected twice")]
    fn double_bisection_panics() {
        let mut t = sample_tree();
        let root = t.root_id();
        t.record(root, 0.5, 0.5);
    }

    #[test]
    fn no_record_is_inert() {
        let mut r = NoRecord;
        let id = r.root(1.0);
        assert_eq!(id, NodeId::DUMMY);
        assert_eq!(r.record(id, 0.5, 0.5), (NodeId::DUMMY, NodeId::DUMMY));
    }

    #[test]
    fn render_ascii_shows_all_levels() {
        let t = sample_tree();
        let s = t.render_ascii(8);
        assert!(s.contains("split w=1.000"));
        assert!(s.contains("leaf w=0.400"));
        assert_eq!(s.lines().count(), 5);
        // Truncation at depth 0 keeps only the root line.
        assert_eq!(t.render_ascii(0).lines().count(), 1);
    }

    #[test]
    fn empty_tree_is_empty() {
        let t = BisectionTree::new();
        assert!(t.is_empty());
        assert_eq!(t.leaf_count(), 0);
        assert_eq!(t.max_leaf_depth(), 0);
    }
}
