//! Worst-case performance guarantees (Theorems 2, 7 and 8).
//!
//! All bounds are on the **ratio** `max_i w(p_i) / (w(p)/N)`; a perfectly
//! balanced partition has ratio 1.
//!
//! ## Provenance and OCR caveats
//!
//! The available text of the paper is an OCR capture that garbled most
//! formulas. The formulas below were *reconstructed* from the derivation
//! steps that survived intact (see `DESIGN.md` §2 for the full audit
//! trail); the key consistency anchors are
//!
//! * the PHF phase-2 termination argument, which requires exactly
//!   `r_α (1−α)^I ≤ 1 ⟺ (1−α)^{I+⌈1/α⌉−2} ≤ α` — pinning
//!   [`r_hf`] to `1/(α(1−α)^{⌈1/α⌉−2})`,
//! * Lemma 4 (re-derived and property-tested in [`crate::ba`](mod@crate::ba)),
//! * the Theorem 7 proof skeleton `(1) × (3) × (2)` with the factor `e`
//!   from Lemma 6 at `θ = 1−α`,
//! * the Theorem 8 corollary "choose `θ ≥ 1/ln(1+ε)` to be within `1+ε`
//!   of HF's guarantee", pinning [`r_bahf`] to `e^{(1−α)/θ} · r_α`.
//!
//! Every bound is verified against actual algorithm runs by property tests
//! (in this crate and in `gb-problems`), so a reconstruction error would
//! surface as a test failure, not as silent misinformation.

use crate::error::{check_alpha, check_theta};

/// `⌈x⌉` as `i32`, robust against values that are integers up to
/// floating-point noise (e.g. `1/(1/3) = 3.0000000000000004`).
fn ceil_robust(x: f64) -> i32 {
    let eps = 1e-9 * x.abs().max(1.0);
    (x - eps).ceil() as i32
}

/// `⌊x⌋` as `i32`, robust against floating-point noise.
#[cfg_attr(not(test), allow(dead_code))]
fn floor_robust(x: f64) -> i32 {
    let eps = 1e-9 * x.abs().max(1.0);
    (x + eps).floor() as i32
}

/// Theorem 2: the HF performance guarantee
/// `r_α = 1 / (α (1−α)^{⌈1/α⌉ − 2})`.
///
/// `r_{1/2} = 2`; `r_α → e/α` as `α → 0`.
///
/// ```
/// use gb_core::bounds::r_hf;
/// assert!((r_hf(0.5) - 2.0).abs() < 1e-12);
/// assert!((r_hf(1.0 / 3.0) - 4.5).abs() < 1e-9);
/// ```
///
/// # Panics
/// Panics if `alpha ∉ (0, 1/2]`.
pub fn r_hf(alpha: f64) -> f64 {
    check_alpha(alpha).expect("invalid alpha");
    let exponent = ceil_robust(1.0 / alpha) - 2;
    debug_assert!(exponent >= 0);
    1.0 / (alpha * (1.0 - alpha).powi(exponent))
}

/// Theorem 7: the BA performance guarantee
/// `e / (α (1−α)^{⌈1/(2α)⌉ − 1})` (reconstruction; see module docs).
///
/// # Panics
/// Panics if `alpha ∉ (0, 1/2]`.
pub fn r_ba(alpha: f64) -> f64 {
    check_alpha(alpha).expect("invalid alpha");
    let exponent = ceil_robust(1.0 / (2.0 * alpha)) - 1;
    debug_assert!(exponent >= 0);
    std::f64::consts::E / (alpha * (1.0 - alpha).powi(exponent))
}

/// Theorem 8: the BA-HF performance guarantee
/// `e^{(1−α)/θ} · r_α` (reconstruction; see module docs).
///
/// Choosing `θ ≥ 1/ln(1+ε)` makes this at most `(1+ε) · r_α`.
///
/// # Panics
/// Panics if `alpha ∉ (0, 1/2]` or `theta ≤ 0`.
pub fn r_bahf(alpha: f64, theta: f64) -> f64 {
    check_alpha(alpha).expect("invalid alpha");
    check_theta(theta).expect("invalid theta");
    ((1.0 - alpha) / theta).exp() * r_hf(alpha)
}

/// Lemma 5 (reconstruction): for `N ≤ 1/α`, BA's ratio is at most
/// `N (1−α)^{⌊N/2⌋}` (equivalently `max_i w(p_i) ≤ w(p)(1−α)^{⌊N/2⌋}`).
///
/// # Panics
/// Panics if `alpha ∉ (0, 1/2]` or `n == 0`.
pub fn lemma5_ratio_bound(alpha: f64, n: usize) -> f64 {
    check_alpha(alpha).expect("invalid alpha");
    assert!(n > 0);
    n as f64 * (1.0 - alpha).powi((n / 2) as i32)
}

/// The trivial caps valid for any algorithm that bisects at least once on
/// `n ≥ 2` processors: the heaviest piece is at most `(1−α)·w(p)`, and the
/// ratio can never exceed `n` (one piece holding everything).
fn trivial_cap(alpha: f64, n: usize) -> f64 {
    if n >= 2 {
        n as f64 * (1.0 - alpha)
    } else {
        1.0
    }
}

/// Tightest available worst-case ratio bound for HF on `n` processors.
///
/// Combines Theorem 2 with the `α ≥ 1/3 ⇒ 2` special case (Theorem 6 of
/// the companion paper \[1\], quoted in the text's remark after Theorem 2)
/// and the trivial caps. This is what the "worst-case ub" rows of Table 1
/// report for HF.
pub fn hf_upper_bound(alpha: f64, n: usize) -> f64 {
    check_alpha(alpha).expect("invalid alpha");
    assert!(n > 0);
    if n == 1 {
        return 1.0;
    }
    let mut bound = r_hf(alpha).min(trivial_cap(alpha, n));
    if alpha >= 1.0 / 3.0 - 1e-12 {
        bound = bound.min(2.0);
    }
    bound
}

/// Tightest available worst-case ratio bound for BA on `n` processors
/// (Theorem 7, Lemma 5 for `n ≤ 1/α`, trivial caps) — the Table 1 "ub"
/// rows for BA.
pub fn ba_upper_bound(alpha: f64, n: usize) -> f64 {
    check_alpha(alpha).expect("invalid alpha");
    assert!(n > 0);
    if n == 1 {
        return 1.0;
    }
    let mut bound = r_ba(alpha).min(trivial_cap(alpha, n));
    if (n as f64) <= 1.0 / alpha + 1e-9 {
        bound = bound.min(lemma5_ratio_bound(alpha, n));
    }
    bound
}

/// Tightest available worst-case ratio bound for BA-HF on `n` processors
/// (Theorem 8, pure-HF regime below the switch threshold, trivial caps) —
/// the Table 1 "ub" rows for BA-HF.
pub fn bahf_upper_bound(alpha: f64, theta: f64, n: usize) -> f64 {
    check_alpha(alpha).expect("invalid alpha");
    check_theta(theta).expect("invalid theta");
    assert!(n > 0);
    if n == 1 {
        return 1.0;
    }
    let mut bound = r_bahf(alpha, theta).min(trivial_cap(alpha, n));
    if (n as f64) < theta / alpha + 1.0 {
        // Below the threshold BA-HF *is* HF.
        bound = bound.min(hf_upper_bound(alpha, n));
    }
    bound
}

/// PHF phase-1 threshold: subproblems heavier than `w(p) · r_α / N` are
/// certainly bisected by HF and may be bisected eagerly in parallel.
pub fn phf_phase1_threshold(total_weight: f64, alpha: f64, n: usize) -> f64 {
    assert!(n > 0);
    total_weight * r_hf(alpha) / n as f64
}

/// Upper bound on the number of phase-2 iterations of PHF: each iteration
/// shrinks the maximum weight by `(1−α)`, starting at most at
/// `w(p)·r_α/N` and never dropping below `w(p)/N`, so
/// `I ≤ ⌈ln r_α / ln(1/(1−α))⌉` — a constant for fixed α.
pub fn phf_phase2_max_iterations(alpha: f64) -> usize {
    check_alpha(alpha).expect("invalid alpha");
    let i = r_hf(alpha).ln() / (1.0 / (1.0 - alpha)).ln();
    ceil_robust(i).max(0) as usize
}

/// The number of extra clean-up rounds needed by the §3.4 phase-1 scheme:
/// after the BA′ cascade no remaining subproblem is heavier than
/// `(w(p)/N) · r_ba(α)`, and each round shrinks the maximum by `(1−α)`
/// until it is at most `(w(p)/N) · r_hf(α)`.
pub fn phf_phase1_cleanup_rounds(alpha: f64) -> usize {
    check_alpha(alpha).expect("invalid alpha");
    let gap = (r_ba(alpha) / r_hf(alpha)).ln() / (1.0 / (1.0 - alpha)).ln();
    ceil_robust(gap).max(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} vs {b}");
    }

    #[test]
    fn r_hf_reference_values() {
        // α = 1/2: ⌈2⌉−2 = 0 ⇒ r = 1/α = 2.
        assert_close(r_hf(0.5), 2.0, 1e-12);
        // α = 1/3: exponent 1 ⇒ r = 1/((1/3)(2/3)) = 4.5.
        assert_close(r_hf(1.0 / 3.0), 4.5, 1e-9);
        // α = 1/4: exponent 2 ⇒ r = 4 / (3/4)^2 = 64/9.
        assert_close(r_hf(0.25), 64.0 / 9.0, 1e-9);
    }

    #[test]
    fn r_hf_approaches_e_over_alpha() {
        // (1−α)^{-(1/α−2)} → e as α → 0.
        for &alpha in &[0.01, 0.001] {
            let ratio = r_hf(alpha) * alpha / std::f64::consts::E;
            assert!((ratio - 1.0).abs() < 0.05, "alpha = {alpha}: {ratio}");
        }
    }

    #[test]
    fn r_hf_monotone_decreasing_in_alpha() {
        let mut prev = f64::INFINITY;
        for i in 1..=100 {
            let alpha = i as f64 / 200.0;
            let r = r_hf(alpha);
            assert!(
                r <= prev + 1e-9,
                "r_hf not monotone at alpha = {alpha}: {r} > {prev}"
            );
            prev = r;
        }
    }

    #[test]
    fn r_ba_dominates_r_hf() {
        // The paper: "Our bound on the performance guarantee of Algorithm BA
        // is not as good as the one for Algorithm HF."
        for i in 1..=100 {
            let alpha = i as f64 / 200.0;
            assert!(
                r_ba(alpha) >= r_hf(alpha),
                "alpha = {alpha}: r_ba {} < r_hf {}",
                r_ba(alpha),
                r_hf(alpha)
            );
        }
    }

    #[test]
    fn r_bahf_converges_to_r_hf_for_large_theta() {
        let alpha = 0.2;
        assert!(r_bahf(alpha, 1.0) > r_hf(alpha));
        let big = r_bahf(alpha, 1e6);
        assert_close(big, r_hf(alpha), 1e-3);
        // Monotone decreasing in θ.
        assert!(r_bahf(alpha, 1.0) > r_bahf(alpha, 2.0));
        assert!(r_bahf(alpha, 2.0) > r_bahf(alpha, 3.0));
    }

    #[test]
    fn epsilon_corollary_of_theorem_8() {
        // θ ≥ 1/ln(1+ε) ⇒ r_bahf ≤ (1+ε)·r_hf.
        for &eps in &[0.01f64, 0.1, 0.5, 1.0] {
            let theta = 1.0 / (1.0 + eps).ln();
            for &alpha in &[0.05, 0.2, 0.5] {
                assert!(
                    r_bahf(alpha, theta) <= (1.0 + eps) * r_hf(alpha) + 1e-9,
                    "eps={eps} alpha={alpha}"
                );
            }
        }
    }

    #[test]
    fn upper_bounds_are_one_for_single_processor() {
        assert_eq!(hf_upper_bound(0.3, 1), 1.0);
        assert_eq!(ba_upper_bound(0.3, 1), 1.0);
        assert_eq!(bahf_upper_bound(0.3, 1.0, 1), 1.0);
    }

    #[test]
    fn hf_bound_uses_special_case_for_large_alpha() {
        // α ≥ 1/3: the companion-paper bound of 2 beats r_α = 4.5.
        assert_close(hf_upper_bound(1.0 / 3.0, 100), 2.0, 1e-12);
        assert_close(hf_upper_bound(0.4, 100), 2.0, 1e-12);
        // Small n: the trivial cap n(1−α) can be tighter still.
        assert_close(hf_upper_bound(0.4, 2), 1.2, 1e-12);
    }

    #[test]
    fn ba_bound_uses_lemma_5_for_small_n() {
        let alpha = 0.01;
        let n = 32; // n ≤ 1/α = 100
        let lemma5 = lemma5_ratio_bound(alpha, n);
        assert!(ba_upper_bound(alpha, n) <= lemma5 + 1e-12);
        assert!(ba_upper_bound(alpha, n) < r_ba(alpha));
    }

    #[test]
    fn bahf_bound_reduces_to_hf_below_threshold() {
        let alpha = 0.1;
        let theta = 2.0; // threshold = 21
        assert_close(
            bahf_upper_bound(alpha, theta, 16),
            hf_upper_bound(alpha, 16),
            1e-12,
        );
    }

    #[test]
    fn phase2_iterations_reference() {
        // α = 1/2: r = 2, shrink factor 2 ⇒ exactly 1 iteration.
        assert_eq!(phf_phase2_max_iterations(0.5), 1);
        // Small α: roughly (1/α)·ln(1/α) + ⌈1/α⌉ — finite and modest.
        let i = phf_phase2_max_iterations(0.05);
        assert!((10..200).contains(&i), "i = {i}");
    }

    #[test]
    fn phase1_threshold_scales_with_weight_and_n() {
        let t = phf_phase1_threshold(100.0, 0.5, 10);
        assert_close(t, 100.0 * 2.0 / 10.0, 1e-12);
        assert_close(phf_phase1_threshold(200.0, 0.5, 10), 2.0 * t, 1e-12);
    }

    #[test]
    fn cleanup_rounds_are_small_constants() {
        for &alpha in &[0.05, 0.1, 0.25, 0.5] {
            let rounds = phf_phase1_cleanup_rounds(alpha);
            assert!(rounds <= 64, "alpha = {alpha}: {rounds}");
        }
    }

    #[test]
    fn ceil_floor_robust_handle_noise() {
        assert_eq!(ceil_robust(3.0000000000000004), 3);
        assert_eq!(ceil_robust(3.1), 4);
        assert_eq!(floor_robust(2.9999999999999996), 3);
        assert_eq!(floor_robust(2.9), 2);
    }

    #[test]
    #[should_panic(expected = "invalid alpha")]
    fn r_hf_rejects_alpha_above_half() {
        r_hf(0.6);
    }
}
