//! Weight-oblivious ("blind") variants: what knowing the weights buys.
//!
//! Definition 1 assumes "the weight of a problem can be calculated (or
//! approximated) easily once it is generated"; the paper contrasts this
//! with Kumar et al. \[10\], whose very similar *α-splitting* model assumes
//! the weight is **unknown** to the load balancing algorithm. These
//! variants make the comparison concrete: they use the same bisectors but
//! never look at a weight.
//!
//! * [`blind_hf`] — bisect pieces in breadth-first (generation) order:
//!   without weights, "the heaviest piece" is unknowable, and BFS order
//!   is the natural fair schedule. Produces the perfectly balanced
//!   partition when bisectors are exact halves, but its worst case decays
//!   to `Θ(N·(1−α)^{log₂ N})` because a heavy piece may be bisected only
//!   once per generation.
//! * [`blind_ba`] — BA with the processor split fixed to `⌈N/2⌉ / ⌊N/2⌋`:
//!   without weights the proportional best-approximation rule is
//!   unavailable.
//!
//! Both remain correct load balancers (weights conserved, ≤ N pieces);
//! the `ablation` bench quantifies the quality gap against the
//! weight-aware algorithms.

use std::collections::VecDeque;

use crate::partition::Partition;
use crate::problem::Bisectable;

/// Weight-oblivious HF: bisects pieces in generation (BFS) order until
/// `n` pieces exist.
///
/// # Panics
/// Panics if `n == 0`.
pub fn blind_hf<P: Bisectable>(p: P, n: usize) -> Partition<P> {
    assert!(n > 0, "blind HF needs at least one processor");
    let total = p.weight();
    let mut queue: VecDeque<P> = VecDeque::with_capacity(n);
    let mut done: Vec<P> = Vec::new();
    queue.push_back(p);
    while queue.len() + done.len() < n {
        let Some(q) = queue.pop_front() else {
            break;
        };
        if !q.can_bisect() {
            done.push(q);
            continue;
        }
        let (a, b) = q.bisect();
        queue.push_back(a);
        queue.push_back(b);
    }
    done.extend(queue);
    Partition::new(done, total, n)
}

/// Weight-oblivious BA: splits `n` processors as evenly as possible at
/// every bisection, ignoring the subproblem weights.
///
/// # Panics
/// Panics if `n == 0`.
pub fn blind_ba<P: Bisectable>(p: P, n: usize) -> Partition<P> {
    assert!(n > 0, "blind BA needs at least one processor");
    let total = p.weight();
    let mut pieces: Vec<P> = Vec::with_capacity(n);
    let mut stack: Vec<(P, usize)> = vec![(p, n)];
    while let Some((q, m)) = stack.pop() {
        if m == 1 || !q.can_bisect() {
            pieces.push(q);
            continue;
        }
        let (a, b) = q.bisect();
        let n1 = m.div_ceil(2);
        stack.push((b, m - n1));
        stack.push((a, n1));
    }
    Partition::new(pieces, total, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ba::ba;
    use crate::hf::hf;
    use crate::rng::{u64_to_unit_f64, SplitMix64};
    use crate::synthetic_alpha::{AtomicAfter, FixedAlpha};

    #[derive(Debug, Clone, Copy)]
    struct RandomSplit {
        w: f64,
        seed: u64,
    }

    impl Bisectable for RandomSplit {
        fn weight(&self) -> f64 {
            self.w
        }

        fn bisect(&self) -> (Self, Self) {
            let u = u64_to_unit_f64(SplitMix64::derive(self.seed, 0));
            let frac = 0.1 + 0.4 * u;
            (
                Self {
                    w: frac * self.w,
                    seed: SplitMix64::derive(self.seed, 1),
                },
                Self {
                    w: (1.0 - frac) * self.w,
                    seed: SplitMix64::derive(self.seed, 2),
                },
            )
        }
    }

    #[test]
    fn blind_variants_produce_valid_partitions() {
        for seed in 0..5 {
            let p = RandomSplit { w: 1.0, seed };
            for &n in &[1usize, 2, 31, 128] {
                for part in [blind_hf(p, n), blind_ba(p, n)] {
                    assert_eq!(part.len(), n);
                    assert!(part.check_conservation(1e-9));
                    assert!(part.ratio() >= 1.0 - 1e-9);
                }
            }
        }
    }

    #[test]
    fn perfect_halves_make_blindness_free() {
        // With exact 1/2-bisectors and N a power of two, weight knowledge
        // is worthless: all variants coincide.
        let p = FixedAlpha::new(1.0, 0.5);
        let n = 64;
        assert!(blind_hf(p, n).same_weights_as(&hf(p, n)));
        assert!(blind_ba(p, n).same_weights_as(&ba(p, n)));
    }

    #[test]
    fn weights_pay_off_on_skewed_instances() {
        // On skewed instances the weight-aware algorithms win clearly.
        let mut blind_worse = 0;
        let trials = 30;
        for seed in 0..trials {
            let p = RandomSplit { w: 1.0, seed };
            let n = 256;
            let aware = hf(p, n).ratio();
            let blind = blind_hf(p, n).ratio();
            assert!(aware <= blind + 1e-9, "HF is instance-optimal");
            if blind > 1.25 * aware {
                blind_worse += 1;
            }
        }
        assert!(
            blind_worse > trials / 2,
            "blindness should usually cost >25% ({blind_worse}/{trials})"
        );
    }

    #[test]
    fn blind_ba_worse_than_ba_on_average() {
        let n = 256;
        let avg = |f: &dyn Fn(RandomSplit) -> f64| {
            (0..40)
                .map(|seed| f(RandomSplit { w: 1.0, seed }))
                .sum::<f64>()
                / 40.0
        };
        let aware = avg(&|p| ba(p, n).ratio());
        let blind = avg(&|p| blind_ba(p, n).ratio());
        assert!(
            blind > aware,
            "expected blind BA ({blind}) to trail weight-aware BA ({aware})"
        );
    }

    #[test]
    fn atomic_problems_handled() {
        let p = AtomicAfter::new(1.0, 0.5, 0.3);
        assert_eq!(blind_hf(p, 32).len(), 4);
        assert_eq!(blind_ba(p, 32).len(), 4);
    }
}
