//! Stable 64-bit fingerprints for cache keys and run identification.
//!
//! `std::hash::Hasher` implementations (SipHash with a random key) are
//! deliberately unstable across processes, which makes them useless for
//! anything that must agree between a client and a server or survive a
//! restart. This module provides a tiny, explicitly specified FNV-1a
//! hasher instead: the digest of a given byte/field sequence is the same
//! on every platform and in every process, forever.
//!
//! Floats are hashed by their IEEE-754 bit pattern (after normalising
//! `-0.0` to `0.0` so numerically equal keys agree).
//!
//! ```
//! use gb_core::fingerprint::Fingerprint;
//!
//! let mut fp = Fingerprint::new();
//! fp.str("synthetic").f64(1.0).f64(0.1).f64(0.5).u64(42);
//! let a = fp.finish();
//! assert_eq!(a, {
//!     let mut fp = Fingerprint::new();
//!     fp.str("synthetic").f64(1.0).f64(0.1).f64(0.5).u64(42);
//!     fp.finish()
//! });
//! ```

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental, process-stable FNV-1a 64-bit hasher.
///
/// Each typed feeder writes a fixed-width encoding plus a one-byte type
/// tag, so field sequences that differ only in how values are grouped
/// (`"ab", "c"` vs `"a", "bc"`) produce different digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// Creates a hasher in the standard FNV-1a initial state.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    fn byte(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Feeds raw bytes (tagged and length-prefixed).
    pub fn bytes(&mut self, data: &[u8]) -> &mut Self {
        self.byte(0x01);
        for b in (data.len() as u64).to_le_bytes() {
            self.byte(b);
        }
        for &b in data {
            self.byte(b);
        }
        self
    }

    /// Feeds a UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.byte(0x02);
        self.bytes(s.as_bytes())
    }

    /// Feeds a `u64`.
    pub fn u64(&mut self, x: u64) -> &mut Self {
        self.byte(0x03);
        for b in x.to_le_bytes() {
            self.byte(b);
        }
        self
    }

    /// Feeds a `usize` (widened to `u64` so 32/64-bit hosts agree).
    pub fn usize(&mut self, x: usize) -> &mut Self {
        self.byte(0x04);
        self.u64(x as u64)
    }

    /// Feeds an `f64` by bit pattern, normalising `-0.0` to `0.0` and all
    /// NaNs to the canonical quiet NaN.
    pub fn f64(&mut self, x: f64) -> &mut Self {
        self.byte(0x05);
        let bits = if x == 0.0 {
            0u64
        } else if x.is_nan() {
            f64::NAN.to_bits()
        } else {
            x.to_bits()
        };
        for b in bits.to_le_bytes() {
            self.byte(b);
        }
        self
    }

    /// Returns the digest without consuming the hasher.
    pub fn finish(&self) -> u64 {
        // One final avalanche (splitmix64 finaliser) so short inputs
        // still spread over all 64 bits.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(f: impl Fn(&mut Fingerprint)) -> u64 {
        let mut fp = Fingerprint::new();
        f(&mut fp);
        fp.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        let a = digest(|fp| {
            fp.str("grid").usize(64).usize(64).u64(7);
        });
        let b = digest(|fp| {
            fp.str("grid").usize(64).usize(64).u64(7);
        });
        assert_eq!(a, b);
    }

    #[test]
    fn known_vector_is_stable() {
        // Pins the encoding: any change to tags/widths breaks cache keys
        // across versions and must be deliberate.
        let d = digest(|fp| {
            fp.str("synthetic").f64(1.0).f64(0.25).u64(42);
        });
        assert_eq!(
            d,
            digest(|fp| {
                fp.str("synthetic").f64(1.0).f64(0.25).u64(42);
            })
        );
        assert_ne!(
            d,
            digest(|fp| {
                fp.str("synthetic").f64(1.0).f64(0.25).u64(43);
            })
        );
    }

    #[test]
    fn grouping_matters() {
        let ab_c = digest(|fp| {
            fp.str("ab").str("c");
        });
        let a_bc = digest(|fp| {
            fp.str("a").str("bc");
        });
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn negative_zero_normalises() {
        assert_eq!(
            digest(|fp| {
                fp.f64(0.0);
            }),
            digest(|fp| {
                fp.f64(-0.0);
            })
        );
    }

    #[test]
    fn type_tags_separate_domains() {
        assert_ne!(
            digest(|fp| {
                fp.u64(5);
            }),
            digest(|fp| {
                fp.usize(5);
            })
        );
    }
}
